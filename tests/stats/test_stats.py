"""Unit tests for the statistics analyzers."""

import pytest

from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.routing import build_shortest_path_tables
from repro.noc.topology import mesh
from repro.stats.congestion import CongestionCounter, network_congestion_rate
from repro.stats.latency import LatencyAnalyzer
from repro.stats.throughput import ThroughputMeter


def packet(injection=0, burst=None, length=2):
    return Packet(
        src=0, dst=1, length=length, injection_cycle=injection,
        burst_id=burst,
    )


class TestLatencyAnalyzer:
    def test_basic_aggregates(self):
        lat = LatencyAnalyzer()
        lat.record(packet(injection=0), 10)
        lat.record(packet(injection=5), 35)
        assert lat.count == 2
        assert lat.mean_latency == pytest.approx(20.0)
        assert lat.min_latency == 10
        assert lat.max_latency == 30

    def test_negative_latency_rejected(self):
        lat = LatencyAnalyzer()
        with pytest.raises(ValueError):
            lat.record(packet(injection=10), 5)

    def test_returns_latency(self):
        lat = LatencyAnalyzer()
        assert lat.record(packet(injection=3), 10) == 7

    def test_quantile_via_histogram(self):
        lat = LatencyAnalyzer(histogram_bins=16, histogram_bin_width=1)
        for l in range(10):
            lat.record(packet(injection=0), l)
        assert 4 <= lat.quantile(0.5) <= 6

    def test_burst_aggregation(self):
        lat = LatencyAnalyzer()
        lat.record(packet(injection=0, burst=0), 10)
        lat.record(packet(injection=0, burst=0), 20)
        lat.record(packet(injection=0, burst=1), 40)
        per_burst = lat.mean_latency_per_burst()
        assert per_burst[0] == pytest.approx(15.0)
        assert per_burst[1] == pytest.approx(40.0)
        assert lat.mean_burst_size() == pytest.approx(1.5)

    def test_merge(self):
        a, b = LatencyAnalyzer(), LatencyAnalyzer()
        a.record(packet(injection=0, burst=0), 10)
        b.record(packet(injection=0, burst=0), 30)
        b.record(packet(injection=0, burst=2), 50)
        a.merge(b)
        assert a.count == 3
        assert a.min_latency == 10
        assert a.max_latency == 50
        assert a.mean_latency_per_burst()[0] == pytest.approx(20.0)

    def test_merge_into_empty(self):
        a, b = LatencyAnalyzer(), LatencyAnalyzer()
        b.record(packet(injection=0), 5)
        a.merge(b)
        assert a.min_latency == 5

    def test_reset(self):
        lat = LatencyAnalyzer()
        lat.record(packet(), 5)
        lat.reset()
        assert lat.count == 0
        assert lat.mean_latency == 0.0
        assert lat.bursts_seen == 0

    def test_empty_defaults(self):
        lat = LatencyAnalyzer()
        assert lat.mean_latency == 0.0
        assert lat.mean_burst_size() == 0.0


class TestCongestionCounter:
    def _flits(self, stalls):
        p = Packet(src=0, dst=1, length=len(stalls))
        flits = p.flit_list()
        for f, s in zip(flits, stalls):
            f.stall_cycles = s
        return p, flits

    def test_accumulation(self):
        con = CongestionCounter()
        p, flits = self._flits([2, 0, 1])
        assert con.record(p, flits) == 3
        assert con.total_stall_cycles == 3
        assert con.mean_stall_per_packet == pytest.approx(3.0)
        assert con.mean_stall_per_flit == pytest.approx(1.0)

    def test_congested_fraction(self):
        con = CongestionCounter()
        con.record(*self._flits([0, 0]))
        con.record(*self._flits([1, 0]))
        assert con.congested_fraction == pytest.approx(0.5)

    def test_max_packet_stall(self):
        con = CongestionCounter()
        con.record(*self._flits([1]))
        con.record(*self._flits([7]))
        assert con.max_packet_stall == 7

    def test_merge(self):
        a, b = CongestionCounter(), CongestionCounter()
        a.record(*self._flits([1]))
        b.record(*self._flits([5, 5]))
        a.merge(b)
        assert a.packets == 2
        assert a.total_stall_cycles == 11
        assert a.max_packet_stall == 10

    def test_reset_and_empty(self):
        con = CongestionCounter()
        assert con.mean_stall_per_packet == 0.0
        con.record(*self._flits([1]))
        con.reset()
        assert con.packets == 0


class TestNetworkCongestionRate:
    def test_zero_on_idle_network(self):
        topo = mesh(2, 2)
        net = Network(topo, build_shortest_path_tables(topo))
        assert network_congestion_rate(net) == 0.0

    def test_zero_without_contention(self):
        topo = mesh(2, 2)
        net = Network(topo, build_shortest_path_tables(topo))
        net.offer(Packet(src=0, dst=3, length=4))
        net.drain()
        assert network_congestion_rate(net) == 0.0

    def test_positive_under_contention(self):
        topo = mesh(2, 2)
        net = Network(topo, build_shortest_path_tables(topo))
        # Two flows forced through the same ejection port.
        for k in range(20):
            net.offer(Packet(src=0, dst=3, length=4, injection_cycle=0))
            net.offer(Packet(src=1, dst=3, length=4, injection_cycle=0))
        net.drain()
        rate = network_congestion_rate(net)
        assert 0.0 < rate < 1.0


class TestThroughputMeter:
    def test_window_accounting(self):
        meter = ThroughputMeter()
        meter.open_window(0, {1: 0, 2: 10})
        meter.close_window(100, {1: 50, 2: 30})
        assert meter.window_cycles == 100
        assert meter.node_throughput(1) == pytest.approx(0.5)
        assert meter.node_throughput(2) == pytest.approx(0.2)
        assert meter.aggregate_throughput() == pytest.approx(0.7)

    def test_close_before_open_rejected(self):
        with pytest.raises(RuntimeError):
            ThroughputMeter().close_window(10, {})

    def test_zero_length_window_rejected(self):
        meter = ThroughputMeter()
        meter.open_window(5, {})
        with pytest.raises(ValueError):
            meter.close_window(5, {})

    def test_unopened_returns_zero(self):
        meter = ThroughputMeter()
        assert meter.node_throughput(0) == 0.0
        assert meter.aggregate_throughput() == 0.0
