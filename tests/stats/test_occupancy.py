"""Unit tests for the buffer-occupancy report."""

import pytest

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.noc.network import Network
from repro.noc.routing import build_shortest_path_tables
from repro.noc.topology import mesh
from repro.stats.occupancy import OccupancyReport


def sampled_paper_platform(**kwargs):
    config = paper_platform_config(max_packets=500, **kwargs)
    config.sample_buffers = True
    platform = build_platform(config)
    EmulationEngine(platform).run()
    return platform


class TestConstruction:
    def test_requires_sampling(self):
        topo = mesh(2, 2)
        net = Network(topo, build_shortest_path_tables(topo))
        with pytest.raises(ValueError, match="sample_buffers"):
            OccupancyReport(net)

    def test_one_stat_per_input_buffer(self):
        platform = sampled_paper_platform()
        report = OccupancyReport(platform.network)
        expected = sum(
            sw.config.n_inputs for sw in platform.network.switches
        )
        assert len(report.stats) == expected

    def test_empty_network_report(self):
        topo = mesh(2, 2)
        net = Network(
            topo, build_shortest_path_tables(topo), sample_buffers=True
        )
        net.run(10)
        report = OccupancyReport(net)
        assert report.peak_depth_used() == 0
        assert report.mean_pressure() == 0.0


class TestAnalysis:
    def test_hot_switch_buffers_are_hottest(self):
        platform = sampled_paper_platform()
        report = OccupancyReport(platform.network)
        # The 90% links terminate at switches 4 and 1: their input
        # buffers see the most pressure.
        hottest = report.hottest(2)
        assert {s.switch for s in hottest} <= {1, 4}

    def test_peak_bounded_by_capacity(self):
        platform = sampled_paper_platform()
        report = OccupancyReport(platform.network)
        for stat in report.stats:
            assert 0 <= stat.peak <= stat.capacity
            assert 0.0 <= stat.mean <= stat.capacity
            assert 0.0 <= stat.full_fraction <= 1.0

    def test_suggested_depth(self):
        platform = sampled_paper_platform()
        report = OccupancyReport(platform.network)
        assert (
            report.suggested_depth(slack=1)
            == report.peak_depth_used() + 1
        )
        assert report.suggested_depth(slack=0) == report.peak_depth_used()

    def test_pressure_increases_with_congestion(self):
        overlap = sampled_paper_platform(routing_case="overlap")
        disjoint = sampled_paper_platform(routing_case="disjoint")
        hot = OccupancyReport(overlap.network).mean_pressure()
        cold = OccupancyReport(disjoint.network).mean_pressure()
        assert hot > cold


class TestRendering:
    def test_render_contains_sections(self):
        platform = sampled_paper_platform()
        text = OccupancyReport(platform.network).render(top=3)
        assert "peak depth used" in text
        assert "hottest buffers" in text
        assert text.count("sw") >= 3
