"""Unit tests for the run-time model and speed report (Table 2 shapes)."""

import pytest

from repro.stats.runtime import (
    PAPER_SPEEDS,
    RunTimeModel,
    SpeedReport,
    format_duration,
)


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (3.2, "3.2 sec"),
            (200, "3'20''"),
            (0, "0.0 sec"),
            (59.9, "59.9 sec"),
            (3600, "1h00'"),
        ],
    )
    def test_known_values(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_paper_emulation_16mpackets(self):
        # Paper: 16 Mpackets at 50 Mcycles/s = 3.2 sec (10 cyc/packet).
        model = RunTimeModel(50e6, cycles_per_packet=10)
        assert model.format_for_packets(16e6) == "3.2 sec"

    def test_paper_emulation_1000mpackets(self):
        model = RunTimeModel(50e6, cycles_per_packet=10)
        assert model.format_for_packets(1000e6) == "3'20''"

    def test_days_format(self):
        assert format_duration(5 * 86400 + 19 * 3600) == "5 days 19h"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestRunTimeModel:
    def test_linear_in_cycles(self):
        model = RunTimeModel(1000)
        assert model.seconds_for_cycles(500) == pytest.approx(0.5)

    def test_packet_conversion(self):
        model = RunTimeModel(100, cycles_per_packet=4)
        assert model.seconds_for_packets(50) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RunTimeModel(0)
        with pytest.raises(ValueError):
            RunTimeModel(10, cycles_per_packet=0)


class TestSpeedReport:
    def make_report(self):
        report = SpeedReport(cycles_per_packet=10)
        report.add_paper_modes()
        return report

    def test_paper_rows_present(self):
        rows = self.make_report().rows()
        names = [r["mode"] for r in rows]
        assert "Our Emulation" in names
        assert "SystemC (MPARM)" in names
        assert "Verilog (ModelSim)" in names

    def test_paper_table_times(self):
        rows = {r["mode"]: r for r in self.make_report().rows()}
        # The paper's exact cells for 16 Mpackets.
        assert rows["Our Emulation"]["16Mpackets"] == "3.2 sec"
        assert rows["SystemC (MPARM)"]["16Mpackets"] == "2h13'"
        assert rows["Verilog (ModelSim)"]["16Mpackets"] == "13h53'"

    def test_paper_table_large_workload(self):
        rows = {r["mode"]: r for r in self.make_report().rows()}
        assert rows["Our Emulation"]["1000Mpackets"] == "3'20''"
        # Paper cells: "5 days 19h" and "36 days 4h" — our formatter
        # floors sub-hour remainders instead of rounding, hence 18h.
        assert rows["SystemC (MPARM)"]["1000Mpackets"] == "5 days 18h"
        assert rows["Verilog (ModelSim)"]["1000Mpackets"] == "36 days 4h"

    def test_speedup_four_orders_of_magnitude(self):
        report = self.make_report()
        assert report.speedup(
            "Our Emulation", "Verilog (ModelSim)"
        ) == pytest.approx(15625.0)
        assert report.speedup(
            "Our Emulation", "SystemC (MPARM)"
        ) == pytest.approx(2500.0)

    def test_unknown_mode_in_speedup(self):
        with pytest.raises(KeyError):
            self.make_report().speedup("Our Emulation", "quantum")

    def test_measured_flag_rendered(self):
        report = SpeedReport(10)
        report.add_mode("mine", 123.0, measured=True)
        assert "[measured]" in report.render()

    def test_render_contains_columns(self):
        text = self.make_report().render()
        assert "Time for 16 Mpackets" in text
        assert "Time for 1000 Mpackets" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeedReport(0)
        with pytest.raises(ValueError):
            SpeedReport(1).add_mode("x", 0)

    def test_paper_speed_constants(self):
        assert PAPER_SPEEDS["Our Emulation"] == 50e6
        assert PAPER_SPEEDS["SystemC (MPARM)"] == 20e3
        assert PAPER_SPEEDS["Verilog (ModelSim)"] == 3.2e3
