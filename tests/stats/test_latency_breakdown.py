"""Tests for the queueing-vs-network latency decomposition."""

import pytest

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.noc.flit import Packet
from repro.receptors.tracedriven import TraceDrivenReceptor
from repro.stats.latency import LatencyAnalyzer


class TestAnalyzerDecomposition:
    def test_components_sum_to_total(self):
        lat = LatencyAnalyzer()
        p = Packet(src=0, dst=1, length=2, injection_cycle=0,
                   wire_entry_cycle=6)
        lat.record(p, 20)
        assert lat.mean_queueing_latency == pytest.approx(6.0)
        assert lat.mean_network_latency == pytest.approx(14.0)
        assert lat.queueing_fraction == pytest.approx(0.3)

    def test_unstamped_packets_skipped(self):
        lat = LatencyAnalyzer()
        lat.record(Packet(src=0, dst=1, length=1, injection_cycle=0), 9)
        assert lat.decomposed_count == 0
        assert lat.queueing_fraction == 0.0
        assert lat.count == 1  # still counted for total latency

    def test_merge_carries_decomposition(self):
        a, b = LatencyAnalyzer(), LatencyAnalyzer()
        p = Packet(src=0, dst=1, length=1, injection_cycle=0,
                   wire_entry_cycle=3)
        b.record(p, 10)
        a.merge(b)
        assert a.decomposed_count == 1
        assert a.total_queueing == 3

    def test_reset_clears(self):
        lat = LatencyAnalyzer()
        p = Packet(src=0, dst=1, length=1, injection_cycle=0,
                   wire_entry_cycle=2)
        lat.record(p, 5)
        lat.reset()
        assert lat.decomposed_count == 0
        assert lat.total_network == 0


class TestEndToEndDecomposition:
    def run_platform(self, ppb):
        platform = build_platform(
            paper_platform_config(
                traffic="trace",
                max_packets=None,
                traffic_params={
                    "n_bursts": max(2, 256 // ppb),
                    "packets_per_burst": ppb,
                },
            )
        )
        EmulationEngine(platform).run()
        analyzers = [
            r.latency
            for r in platform.receptors
            if isinstance(r, TraceDrivenReceptor)
        ]
        merged = LatencyAnalyzer()
        for a in analyzers:
            merged.merge(a)
        return merged

    def test_every_packet_decomposed(self):
        merged = self.run_platform(ppb=4)
        assert merged.decomposed_count == merged.count

    def test_components_account_for_mean(self):
        merged = self.run_platform(ppb=4)
        assert (
            merged.mean_queueing_latency + merged.mean_network_latency
            == pytest.approx(merged.mean_latency)
        )

    def test_congestion_shifts_latency_into_queueing(self):
        """The Slide 22 mechanism, observed directly: longer bursts
        push the latency growth into the source queue, not the NoC."""
        short = self.run_platform(ppb=1)
        long = self.run_platform(ppb=64)
        assert long.queueing_fraction > short.queueing_fraction
        # Network time stays bounded by the path + serialisation,
        # growing far less than total latency does.
        assert long.mean_network_latency < long.mean_latency * 0.7
