"""Unit tests for the activity-based power model."""

import pytest

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.fpga.power import (
    DYNAMIC_MW_PER_SLICE,
    STATIC_MW_PER_SLICE,
    PowerReport,
    PowerRow,
    estimate_power,
)


def run_platform(load=0.45, packets=500, depth=4):
    platform = build_platform(
        paper_platform_config(
            load=load, max_packets=packets, buffer_depth=depth
        )
    )
    EmulationEngine(platform).run()
    return platform


class TestRows:
    def test_row_total(self):
        row = PowerRow("x", 100, 0.5, static_mw=1.2, dynamic_mw=9.5)
        assert row.total_mw == pytest.approx(10.7)

    def test_report_totals_sum_rows(self):
        platform = run_platform()
        report = estimate_power(platform)
        assert report.total_mw == pytest.approx(
            sum(r.total_mw for r in report.rows)
        )
        assert report.static_mw > 0
        assert report.dynamic_mw > 0

    def test_every_component_present(self):
        platform = run_platform()
        report = estimate_power(platform)
        names = {r.name for r in report.rows}
        assert {"switch0", "switch5", "tg0", "tr4", "control"} <= names

    def test_row_lookup(self):
        report = estimate_power(run_platform())
        assert report.row_for("control").slices == 18
        with pytest.raises(KeyError):
            report.row_for("warp_core")


class TestPhysics:
    def test_idle_platform_is_static_only(self):
        platform = build_platform(
            paper_platform_config(max_packets=100)
        )
        for generator in platform.generators:
            generator.disable()
        platform.run(100)  # clock runs, nothing moves
        report = estimate_power(platform)
        moving = [
            r
            for r in report.rows
            if r.dynamic_mw > 0 and r.name != "control"
        ]
        assert not moving
        assert report.static_mw > 0

    def test_busy_beats_idle(self):
        busy = estimate_power(run_platform(load=0.45))
        lazy = estimate_power(run_platform(load=0.15))
        assert busy.dynamic_mw > lazy.dynamic_mw

    def test_static_power_scales_with_slices(self):
        shallow = estimate_power(run_platform(depth=2))
        deep = estimate_power(run_platform(depth=8))
        assert deep.static_mw > shallow.static_mw

    def test_activities_are_fractions(self):
        report = estimate_power(run_platform())
        for row in report.rows:
            assert 0.0 <= row.activity <= 1.0

    def test_hot_switches_burn_more(self):
        report = estimate_power(run_platform())
        # Switch 1 and 4 carry the 90% links: more dynamic power than
        # the corner switches of the same or larger size.
        hot = report.row_for("switch1").dynamic_mw
        corner = report.row_for("switch0").dynamic_mw
        assert hot > corner

    def test_constants_sane(self):
        assert 0 < STATIC_MW_PER_SLICE < DYNAMIC_MW_PER_SLICE


class TestRendering:
    def test_render_layout(self):
        report = estimate_power(run_platform())
        text = report.render()
        assert "Power estimate" in text
        assert "dynamic mW" in text
        assert "total" in text
        assert "50 MHz" in text
