"""Unit tests for the FPGA part database, cost model and timing model.

The central assertions here ARE the Table 1 reproduction: per-device
slice counts and percentages, the whole-platform total, and the 50 MHz
clock — all within the tolerances stated in EXPERIMENTS.md.
"""

import pytest

from repro.core.config import paper_platform_config
from repro.fpga.costs import (
    CONTROL_SLICES,
    TG_STOCHASTIC_SLICES,
    TG_TRACE_SLICES,
    TR_STOCHASTIC_SLICES,
    TR_TRACE_SLICES,
    control_cost,
    platform_cost,
    switch_cost,
    tg_cost,
    tr_cost,
)
from repro.fpga.device import (
    FpgaPart,
    VIRTEX2PRO_PARTS,
    part_by_name,
    smallest_fitting_part,
)
from repro.fpga.synthesis import synthesize
from repro.fpga.timing import (
    achievable_clock_hz,
    critical_path_ns,
    platform_clock_hz,
)


class TestPartDatabase:
    def test_family_is_ordered(self):
        sizes = [p.slices for p in VIRTEX2PRO_PARTS]
        assert sizes == sorted(sizes)

    def test_part_by_name(self):
        assert part_by_name("XC2VP20").slices == 9280
        with pytest.raises(KeyError):
            part_by_name("XC7A100T")

    def test_paper_percentages_imply_xc2vp20(self):
        # Every Table 1 percentage is consistent with 9280 slices.
        part = part_by_name("XC2VP20")
        assert 719 / part.slices == pytest.approx(0.078, abs=0.001)
        assert 652 / part.slices == pytest.approx(0.070, abs=0.001)
        assert 371 / part.slices == pytest.approx(0.040, abs=0.001)
        assert 690 / part.slices == pytest.approx(0.074, abs=0.001)
        assert 18 / part.slices == pytest.approx(0.002, abs=0.0005)
        assert 7387 / part.slices == pytest.approx(0.80, abs=0.005)

    def test_utilisation_and_fit(self):
        part = FpgaPart("toy", 100, 4, True)
        assert part.utilisation(80) == pytest.approx(0.8)
        assert part.fits(100, 4)
        assert not part.fits(101)
        assert not part.fits(10, 5)

    def test_smallest_fitting_part(self):
        assert smallest_fitting_part(1_000).name == "XC2VP4"
        assert smallest_fitting_part(9_000).name == "XC2VP20"
        assert smallest_fitting_part(999_999) is None

    def test_ppc_requirement(self):
        # XC2VP2 has no PowerPC: rejected unless explicitly allowed.
        assert smallest_fitting_part(100).name == "XC2VP4"
        assert (
            smallest_fitting_part(100, require_ppc=False).name
            == "XC2VP2"
        )


class TestDeviceCosts:
    def test_table1_calibration_constants(self):
        assert tg_cost("uniform").slices == 719
        assert tg_cost("trace").slices == 652
        assert tr_cost("stochastic").slices == 371
        assert tr_cost("tracedriven").slices == 690
        assert control_cost().slices == 18

    def test_all_stochastic_models_share_hardware(self):
        for model in ("uniform", "burst", "poisson", "onoff"):
            assert tg_cost(model).slices == TG_STOCHASTIC_SLICES

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            tg_cost("psychic")
        with pytest.raises(ValueError):
            tr_cost("psychic")

    def test_deeper_tg_queue_costs_more(self):
        assert (
            tg_cost("uniform", queue_limit=256).slices
            > tg_cost("uniform", queue_limit=64).slices
        )

    def test_trace_memory_charged_to_bram(self):
        small = tg_cost("trace", trace_records=100)
        large = tg_cost("trace", trace_records=100_000)
        assert small.bram_blocks >= 1
        assert large.bram_blocks > small.bram_blocks
        assert large.slices == small.slices  # memory is BRAM, not slices

    def test_bigger_histograms_cost_more(self):
        assert (
            tr_cost("stochastic", histogram_counters=128).slices
            > TR_STOCHASTIC_SLICES
        )
        assert (
            tr_cost("tracedriven", latency_bins=128).slices
            > TR_TRACE_SLICES
        )


class TestSwitchCost:
    def test_monotone_in_all_parameters(self):
        base = switch_cost(4, 4, 4).slices
        assert switch_cost(5, 4, 4).slices > base
        assert switch_cost(4, 5, 4).slices > base
        assert switch_cost(4, 4, 8).slices > base

    def test_validation(self):
        with pytest.raises(ValueError):
            switch_cost(0, 4, 4)

    def test_paper_switch_fabric_residual(self):
        # 4 corner switches (4x4) + 2 middle switches (3x3) at depth 4
        # must land on the Table 1 residual: 7387-4*719-4*371-18=3009.
        total = 4 * switch_cost(4, 4, 4).slices + 2 * switch_cost(
            3, 3, 4
        ).slices
        assert total == pytest.approx(3009, abs=30)


class TestPlatformCost:
    def test_paper_platform_total(self):
        cfg = paper_platform_config(receptor_kind="stochastic")
        estimate = platform_cost(cfg)
        # Paper: 7387 slices. Accept <1% deviation.
        assert estimate.slices == pytest.approx(7387, rel=0.01)

    def test_utilisation_near_80_percent(self):
        cfg = paper_platform_config(receptor_kind="stochastic")
        report = synthesize(cfg)
        assert report.part.name == "XC2VP20"
        assert report.utilisation == pytest.approx(0.80, abs=0.01)
        assert report.fits


class TestSynthesisReport:
    def test_rows_per_device_type(self):
        cfg = paper_platform_config(receptor_kind="stochastic")
        report = synthesize(cfg)
        names = [name for name, _, _ in report.rows]
        assert "TG stochastic" in names
        assert "TR stochastic" in names
        assert "Control module" in names
        assert "Switch fabric" in names

    def test_per_type_rows_match_table1(self):
        cfg = paper_platform_config(receptor_kind="stochastic")
        report = synthesize(cfg)
        _, tg_slices, tg_pct = report.row_for("TG stochastic")
        assert tg_slices == 4 * 719
        # Per-instance percentage: 7.8% each in the paper.
        assert tg_pct / 4 == pytest.approx(7.8, abs=0.1)
        _, _, control_pct = report.row_for("Control module")
        assert control_pct == pytest.approx(0.2, abs=0.05)

    def test_trace_platform_uses_trace_rows(self):
        cfg = paper_platform_config(
            traffic="trace",
            max_packets=None,
            receptor_kind="tracedriven",
        )
        report = synthesize(cfg)
        names = [name for name, _, _ in report.rows]
        assert "TG trace driven" in names
        assert "TR trace driven" in names
        assert report.total_bram > 0

    def test_auto_part_scales_with_design(self):
        big = paper_platform_config(receptor_kind="stochastic")
        big.topology = "mesh:6:6"
        big.routing = "shortest"
        report = synthesize(big, auto_part=True)
        assert report.part.slices > 9280  # needs more than XC2VP20
        assert report.fits

    def test_overflow_reported(self):
        cfg = paper_platform_config(receptor_kind="stochastic")
        cfg.topology = "mesh:8:8"
        cfg.routing = "shortest"
        report = synthesize(cfg)  # pinned to XC2VP20: cannot fit
        assert not report.fits
        assert "DOES NOT FIT" in report.render()

    def test_render_layout(self):
        report = synthesize(
            paper_platform_config(receptor_kind="stochastic")
        )
        text = report.render()
        assert "Number of slices" in text
        assert "FPGA percentage" in text
        assert "whole platform" in text
        assert "50 MHz" in text

    def test_missing_row_raises(self):
        report = synthesize(
            paper_platform_config(receptor_kind="stochastic")
        )
        with pytest.raises(KeyError):
            report.row_for("Quantum module")


class TestTiming:
    def test_paper_platform_hits_50mhz(self):
        cfg = paper_platform_config()
        assert platform_clock_hz(cfg) == pytest.approx(50e6)

    def test_critical_path_monotone(self):
        base = critical_path_ns(4, 4, 9)
        assert critical_path_ns(8, 4, 9) > base
        assert critical_path_ns(4, 16, 9) > base
        assert critical_path_ns(4, 4, 64) > base

    def test_bigger_switches_slow_the_clock(self):
        fast = achievable_clock_hz(4, 4, 9)
        slow = achievable_clock_hz(16, 32, 9)
        assert slow < fast

    def test_grid_quantisation(self):
        clock = achievable_clock_hz(4, 4, 9)
        assert clock / 1e6 in (25, 33, 40, 50, 66, 75, 100)

    def test_below_grid_falls_back_to_raw_fmax(self):
        clock = achievable_clock_hz(4, 4, 9, grid_mhz=(400,))
        assert clock < 400e6

    def test_validation(self):
        with pytest.raises(ValueError):
            critical_path_ns(0, 4, 9)
