"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import paper_platform_config
from repro.core.platform import build_platform
from repro.noc.flit import Packet
from repro.noc.routing import build_shortest_path_tables, paper_routing
from repro.noc.topology import mesh, paper_topology


@pytest.fixture
def paper_topo():
    """The 6-switch paper topology."""
    return paper_topology()


@pytest.fixture
def paper_overlap_routing(paper_topo):
    return paper_routing(paper_topo, "overlap")


@pytest.fixture
def small_mesh():
    """A 2x2 mesh with one node per switch."""
    return mesh(2, 2)


@pytest.fixture
def small_mesh_routing(small_mesh):
    return build_shortest_path_tables(small_mesh)


@pytest.fixture
def small_paper_platform():
    """A paper platform with a small packet budget (fast to run)."""
    return build_platform(
        paper_platform_config(traffic="uniform", max_packets=100)
    )


def make_packet(
    src: int = 0, dst: int = 1, length: int = 4, cycle: int = 0
) -> Packet:
    """Test helper: one packet with sane defaults."""
    return Packet(src=src, dst=dst, length=length, injection_cycle=cycle)
