"""End-to-end integration: full flow runs, conservation, figure shapes.

These tests assert the qualitative *shapes* of the paper's figures
(burst congests more than uniform; congestion grows with burst length
and flits/packet; latency saturates), which EXPERIMENTS.md reports
quantitatively.
"""

import pytest

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.flow import EmulationFlow
from repro.core.platform import build_platform


def run(traffic="uniform", packets=800, **kwargs):
    platform = build_platform(
        paper_platform_config(
            traffic=traffic, max_packets=packets, **kwargs
        )
    )
    result = EmulationEngine(platform).run()
    return platform, result


class TestConservation:
    @pytest.mark.parametrize("traffic", ["uniform", "burst", "poisson"])
    def test_every_packet_arrives_exactly_once(self, traffic):
        platform, result = run(traffic=traffic, packets=300)
        assert result.completed
        assert platform.packets_sent == platform.packets_received
        sent_flits = sum(g.flits_sent for g in platform.generators)
        recv_flits = sum(
            r.flits_received for r in platform.receptors
        )
        assert sent_flits == recv_flits

    def test_receptors_only_see_their_flow(self):
        platform, _ = run(packets=200)
        from repro.noc.topology import paper_flow_pairs

        per_node = {
            r.node: r.packets_received for r in platform.receptors
        }
        for _, dst in paper_flow_pairs():
            assert per_node[dst] == 200


class TestFigureShapes:
    def test_f2_burst_congests_more_than_uniform(self):
        """Slide 20: 'Burst traffic creates more congestion on the NoC
        than uniform traffic' at the same offered load."""
        uniform, _ = run(traffic="uniform", packets=1200)
        burst, _ = run(traffic="burst", packets=1200)
        assert burst.congestion_rate() > uniform.congestion_rate()

    def test_f2_runtime_grows_linearly_with_packets(self):
        """Slide 20: run-time vs number of sent packets is ~linear."""
        cycles = []
        for n in (400, 800, 1600):
            _, result = run(packets=n)
            cycles.append(result.cycles)
        ratio1 = cycles[1] / cycles[0]
        ratio2 = cycles[2] / cycles[1]
        assert ratio1 == pytest.approx(2.0, rel=0.15)
        assert ratio2 == pytest.approx(2.0, rel=0.15)

    def test_f3_congestion_grows_with_packets_per_burst(self):
        """Slide 21 x-axis: packets per burst."""
        rates = []
        for ppb in (1, 8, 32):
            platform, _ = run(
                traffic="trace",
                packets=None,
                traffic_params={
                    "n_bursts": max(4, 256 // ppb),
                    "packets_per_burst": ppb,
                },
            )
            rates.append(platform.congestion_rate())
        assert rates[0] < rates[1] < rates[2]

    def test_f3_congestion_grows_with_flits_per_packet(self):
        """Slide 21 series: flits per packet."""
        rates = []
        for flits in (2, 16):
            platform, _ = run(
                traffic="trace",
                packets=None,
                length=flits,
                traffic_params={
                    "n_bursts": 64,
                    "packets_per_burst": 8,
                    "flits_per_packet": flits,
                    "gap": round(8 * flits * 0.55 / 0.45),
                },
            )
            rates.append(platform.congestion_rate())
        assert rates[0] < rates[1]

    def test_f4_latency_grows_then_saturates(self):
        """Slide 22: average latency rises with packets/burst and
        reaches a maximum bounded by the finite TG queues."""
        latencies = []
        for ppb in (1, 16, 64, 128):
            platform, _ = run(
                traffic="trace",
                packets=None,
                traffic_params={
                    "n_bursts": max(2, 512 // ppb),
                    "packets_per_burst": ppb,
                },
            )
            latencies.append(platform.mean_latency())
        assert latencies[0] < latencies[1] < latencies[2]
        # Saturation: the last doubling gains far less than the first.
        first_gain = latencies[1] / latencies[0]
        last_gain = latencies[3] / latencies[2]
        assert last_gain < first_gain


class TestTorusSaturation:
    def test_saturated_torus_completes_without_deadlock(self):
        """Regression for the routing="auto" torus default: under BFS
        shortest paths a saturated torus either failed the build-time
        channel-dependency check or wormhole-deadlocked mid-run; the
        up*/down* default must complete and drain at full load."""
        from repro.core.config import generic_platform_config

        platform = build_platform(
            generic_platform_config(
                topology="torus:4:4",
                load=0.9,
                max_packets=40,
                seed=3,
            )
        )
        result = EmulationEngine(platform).run(
            stagnation_cycles=20_000
        )
        assert result.completed
        assert platform.packets_sent == platform.packets_received
        assert platform.packets_received == 16 * 40


class TestFullFlowEndToEnd:
    def test_flow_sweep_with_report_artifacts(self):
        flow = EmulationFlow()
        reports = flow.run_sweep(
            [
                paper_platform_config(max_packets=100, seed=s)
                for s in (1, 2)
            ]
        )
        assert flow.synthesis_runs == 1
        for report in reports:
            assert report.result.completed
            assert "emulation report" in report.report_text
            assert report.synthesis.clock_hz == pytest.approx(50e6)
