"""Failure injection: route around a failed link without re-synthesis.

The flow's central property — software-only reconfiguration — also
covers board faults: when an inter-switch link dies, the
initialisation step rebuilds the routing tables with the failed link
excluded and re-runs on the *same* synthesised hardware.  These tests
inject a failure on one of the paper's hot middle links and verify the
repair end to end.
"""

import pytest

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.flow import EmulationFlow
from repro.core.platform import build_platform
from repro.noc.deadlock import is_deadlock_free
from repro.noc.routing import (
    RoutingError,
    build_multipath_tables,
    build_shortest_path_tables,
)
from repro.noc.topology import mesh, paper_flow_pairs, paper_topology

FAILED = frozenset({(1, 4)})  # one hot middle link is dead


class TestFaultAwareTables:
    def test_tables_avoid_the_failed_link(self):
        topo = paper_topology()
        routing = build_shortest_path_tables(topo, avoid_links=FAILED)
        port_14 = topo.output_port_to_switch(1, 4)
        for dst in range(topo.n_nodes):
            assert routing.tables.get(1, {}).get(dst) != port_14

    def test_all_flows_still_routable(self):
        topo = paper_topology()
        routing = build_shortest_path_tables(topo, avoid_links=FAILED)
        for src, dst in paper_flow_pairs():
            assert routing.ports_for(topo.switch_of_node(src), dst)

    def test_multipath_avoids_too(self):
        topo = paper_topology()
        routing = build_multipath_tables(topo, avoid_links=FAILED)
        port_14 = topo.output_port_to_switch(1, 4)
        for dst in range(topo.n_nodes):
            assert port_14 not in routing.tables.get(1, {}).get(dst, [])

    def test_repaired_tables_stay_deadlock_free(self):
        topo = paper_topology()
        routing = build_shortest_path_tables(topo, avoid_links=FAILED)
        assert is_deadlock_free(topo, routing)

    def test_partition_detected(self):
        # Cutting both directions of every link into switch 4 of a
        # 1x2 mesh partitions the network: unreachable pairs get no
        # table entry, and the router raises on use.
        topo = mesh(2, 1)
        cut = frozenset({(0, 1), (1, 0)})
        routing = build_shortest_path_tables(topo, avoid_links=cut)
        assert not routing.ports_for(0, 1)


class TestRepairEndToEnd:
    def test_traffic_survives_a_hot_link_failure(self):
        topo = paper_topology()
        repaired = build_shortest_path_tables(topo, avoid_links=FAILED)
        config = paper_platform_config(max_packets=400)
        config.topology = topo
        config.routing = repaired
        platform = build_platform(config)
        result = EmulationEngine(platform).run()
        assert result.completed
        assert result.packets_received == 4 * 400
        # The dead link carried nothing.
        assert platform.network.link_between(1, 4).flits_carried == 0

    def test_repair_is_software_only_in_the_flow(self):
        """Same hardware signature before and after the repair: the
        flow reuses the cached synthesis."""
        flow = EmulationFlow()
        topo = paper_topology()
        healthy = paper_platform_config(max_packets=100)
        healthy.topology = topo
        healthy.routing = build_shortest_path_tables(topo)
        first = flow.run(healthy)
        assert first.resynthesized

        repaired = paper_platform_config(max_packets=100)
        repaired.topology = topo
        repaired.routing = build_shortest_path_tables(
            topo, avoid_links=FAILED
        )
        second = flow.run(repaired)
        assert not second.resynthesized  # tables are software
        assert second.result.completed

    def test_repair_costs_latency(self):
        """Routing around the failure lengthens some paths: the
        repaired network is correct but slower — the trade the
        platform quantifies before anyone touches hardware."""
        topo = paper_topology()

        def latency_with(routing):
            config = paper_platform_config(max_packets=400)
            config.topology = paper_topology()
            config.routing = routing
            platform = build_platform(config)
            EmulationEngine(platform).run()
            return platform.mean_latency()

        healthy = latency_with(
            build_shortest_path_tables(paper_topology())
        )
        repaired = latency_with(
            build_shortest_path_tables(
                paper_topology(), avoid_links=FAILED
            )
        )
        assert repaired >= healthy
