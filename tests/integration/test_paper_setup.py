"""F1 — the paper's experimental setup (Slide 19).

Validates the operating point the evaluation figures are measured at:
each TG at 45% of the maximum bandwidth, two routing possibilities per
flow, and — in the overlapping route case — exactly two inter-switch
links loaded at ~90%.
"""

import pytest

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.noc.topology import paper_hot_links


def run_paper(routing_case, packets=1500, traffic="uniform"):
    platform = build_platform(
        paper_platform_config(
            traffic=traffic,
            max_packets=packets,
            routing_case=routing_case,
        )
    )
    EmulationEngine(platform).run()
    return platform


class TestOperatingPoint:
    @pytest.fixture(scope="class")
    def overlap(self):
        return run_paper("overlap")

    @pytest.fixture(scope="class")
    def disjoint(self):
        return run_paper("disjoint")

    def test_feeder_links_at_45_percent(self, overlap):
        loads = overlap.network.link_loads()
        # Every non-hot inter-switch link on a flow path carries one
        # 45% flow (measured within 3 points of the paper's 45%).
        feeders = [(0, 1), (2, 1), (3, 4), (5, 4)]
        for pair in feeders:
            assert loads[pair] == pytest.approx(0.45, abs=0.03), pair

    def test_two_hot_links_at_90_percent(self, overlap):
        loads = overlap.network.link_loads()
        for pair in paper_hot_links():
            assert loads[pair] == pytest.approx(0.90, abs=0.04), pair

    def test_hot_links_are_the_maximum(self, overlap):
        loads = overlap.network.link_loads()
        hottest = sorted(loads, key=loads.get, reverse=True)[:2]
        assert set(hottest) == set(paper_hot_links())

    def test_disjoint_case_has_no_hot_links(self, disjoint):
        loads = disjoint.network.link_loads()
        assert max(loads.values()) == pytest.approx(0.45, abs=0.03)

    def test_overlap_congests_disjoint_does_not(
        self, overlap, disjoint
    ):
        assert overlap.congestion_rate() > disjoint.congestion_rate()
        assert disjoint.congestion_rate() == pytest.approx(0.0, abs=0.01)

    def test_latency_higher_in_overlap_case(self, overlap, disjoint):
        assert overlap.mean_latency() > disjoint.mean_latency()

    def test_all_traffic_delivered_in_both_cases(
        self, overlap, disjoint
    ):
        for platform in (overlap, disjoint):
            assert platform.packets_received == 4 * 1500


class TestSplitCase:
    def test_split_halves_hot_link_load(self):
        split = run_paper("split")
        loads = split.network.link_loads()
        for pair in paper_hot_links():
            # Each packet picks one of the two cases: the middle links
            # carry roughly half of the overlap-case load.
            assert loads[pair] == pytest.approx(0.45, abs=0.08), pair

    def test_split_delivers_everything(self):
        split = run_paper("split", packets=800)
        assert split.packets_received == 4 * 800
