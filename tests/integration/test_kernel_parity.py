"""Event-driven kernel parity: `Network.step` vs `Network.step_reference`.

The event-driven kernel (active sets + armed links + idle fast-forward
+ incremental counters) must be *bit-identical* to the original
scan-everything dataflow, which survives as ``step_reference``.  These
tests co-simulate both paths on every traffic family / switching mode /
routing case the integration suite exercises and compare cycle counts,
per-packet latency statistics, congestion statistics and every
component-level counter.
"""

import itertools

import pytest

import repro.noc.flit as flit_mod
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.receptors.tracedriven import TraceDrivenReceptor


def fresh_platform(make_config):
    """Build a platform with the global packet-id counter rewound.

    Packet ids seed the multipath routing hash, so both co-simulated
    platforms must allocate identical pid sequences; that also means
    the two runs must execute sequentially, not interleaved.
    """
    flit_mod._packet_ids = itertools.count()
    return build_platform(make_config())


def snapshot(platform):
    """Every observable statistic of a platform, for exact comparison."""
    net = platform.network
    snap = {
        "cycle": net.cycle,
        "packets_sent": platform.packets_sent,
        "packets_received": platform.packets_received,
        "in_flight": net.in_flight_flits,
        "mean_latency": platform.mean_latency(),
        "max_latency": platform.max_latency(),
        "congestion_rate": platform.congestion_rate(),
        "blocked": net.total_blocked_flit_cycles,
        "link_loads": net.link_loads(),
        "switches": [
            (
                sw.flits_forwarded,
                sw.blocked_flit_cycles,
                sw.credit_stall_cycles,
                sw.buffered_flits,
            )
            for sw in net.switches
        ],
        "links": [
            (link.flits_carried, link.busy_cycles, link.occupancy)
            for link in net.links
        ],
        "nis": [
            (
                ni.offered_packets,
                ni.injected_flits,
                ni.injected_packets,
                ni.stall_cycles,
                ni.pending_flits,
            )
            for ni in net.nis
        ],
        "rx": [
            (rx.received_flits, rx.received_packets, rx.partial_packets)
            for rx in net.rx
        ],
        "receptors": [
            (r.packets_received, r.flits_received, r.first_cycle, r.last_cycle)
            for r in platform.receptors
        ],
        "generators": [
            (g.packets_sent, g.flits_sent, g.backpressure_cycles)
            for g in platform.generators
        ],
    }
    for receptor in platform.receptors:
        if isinstance(receptor, TraceDrivenReceptor):
            lat = receptor.latency
            snap[f"latency{receptor.node}"] = (
                lat.count,
                lat.total_latency,
                lat.min_latency,
                lat.max_latency,
                lat.total_queueing,
                lat.total_network,
            )
            snap[f"hist{receptor.node}"] = tuple(lat.histogram.counts)
    return snap


def cosimulate(make_config, cycles):
    """Run the same config through both step paths; return snapshots."""
    event = fresh_platform(make_config)
    for _ in range(cycles):
        event.step()
    reference = fresh_platform(make_config)
    for _ in range(cycles):
        reference.step_reference()
    # The incremental in-flight counter must agree with a full scan on
    # both paths at every comparison point.
    for platform in (event, reference):
        net = platform.network
        assert net.in_flight_flits == net.scan_in_flight_flits()
    return snapshot(event), snapshot(reference)


SCENARIOS = [
    dict(traffic="uniform", max_packets=300),
    dict(traffic="uniform", max_packets=300, load=0.9),
    dict(traffic="burst", max_packets=300),
    dict(traffic="poisson", max_packets=300, load=0.05),
    dict(traffic="onoff", max_packets=300, load=0.1),
    dict(
        traffic="trace",
        max_packets=None,
        traffic_params={"n_bursts": 24, "packets_per_burst": 6},
    ),
    dict(traffic="uniform", max_packets=300, routing_case="disjoint"),
    dict(traffic="uniform", max_packets=300, routing_case="split"),
    # Saturation-parking coverage: shallow buffers at 90% load block
    # whole switches every few cycles (full-block/unblock churn), and
    # 90% load alone starves NIs on about half their inject attempts.
    dict(
        traffic="uniform", max_packets=300, load=0.9, buffer_depth=1
    ),
    dict(
        traffic="uniform", max_packets=300, load=0.9, buffer_depth=2
    ),
]


@pytest.mark.parametrize(
    "kwargs", SCENARIOS, ids=lambda k: f"{k.get('traffic')}-"
    f"{k.get('routing_case', 'overlap')}-{k.get('load', 'def')}"
)
def test_event_kernel_matches_reference(kwargs):
    event, reference = cosimulate(
        lambda: paper_platform_config(**kwargs), cycles=6000
    )
    assert event == reference


def test_parity_under_store_and_forward():
    def config():
        cfg = paper_platform_config(traffic="burst", max_packets=200, length=4)
        cfg.switching = "store_and_forward"
        return cfg

    event, reference = cosimulate(config, cycles=5000)
    assert event == reference


def test_parity_with_buffer_sampling():
    """sample_buffers touches every switch every cycle on both paths."""

    def config():
        cfg = paper_platform_config(traffic="uniform", max_packets=150)
        cfg.sample_buffers = True
        return cfg

    event = fresh_platform(config)
    for _ in range(4000):
        event.step()
    reference = fresh_platform(config)
    for _ in range(4000):
        reference.step_reference()
    occ_e = [
        (buf.mean_occupancy, buf.full_fraction)
        for sw in event.network.switches
        for buf in sw.inputs
    ]
    occ_r = [
        (buf.mean_occupancy, buf.full_fraction)
        for sw in reference.network.switches
        for buf in sw.inputs
    ]
    assert occ_e == occ_r
    assert snapshot(event) == snapshot(reference)


def test_mixing_paths_mid_run_is_consistent():
    """Alternating step/step_reference on one network stays coherent."""
    config = lambda: paper_platform_config(traffic="uniform", max_packets=200)
    platform = fresh_platform(config)
    for k in range(5000):
        if (k // 64) % 2:
            platform.step_reference()
        else:
            platform.step()
    oracle = fresh_platform(config)
    for _ in range(5000):
        oracle.step_reference()
    assert snapshot(platform) == snapshot(oracle)


class TestParkingParity:
    """Blocked-component parking must be invisible in every result."""

    def test_parking_actually_engages_at_saturation(self):
        """Non-vacuity: at 90% load the event path really does park
        inputs (including whole switches), NIs and backpressured
        generators mid-run — and crucially *partial* parking occurs:
        a switch streams some inputs while others sleep."""
        platform = fresh_platform(
            lambda: paper_platform_config(
                traffic="uniform", load=0.9, max_packets=600
            )
        )
        saw_input = saw_whole_sw = saw_partial = saw_ni = saw_gen = False
        for _ in range(4000):
            platform.step()
            for sw in platform.network.switches:
                parked = sw.parked_inputs
                if not parked:
                    continue
                saw_input = True
                if sw._scan:
                    # Movable and parked inputs coexisting: the
                    # per-input regime PR 5 adds over whole-component
                    # parking.
                    saw_partial = True
                elif sw.buffered_flits:
                    saw_whole_sw = True
            saw_ni = saw_ni or any(
                ni._parked for ni in platform.network.nis
            )
            saw_gen = saw_gen or any(
                g._bp_since is not None for g in platform.generators
            )
        assert saw_input and saw_partial and saw_ni and saw_gen
        assert saw_whole_sw  # fully blocked switches still leave the set

    @pytest.mark.parametrize("reset_cycle", [500, 1777, 3000])
    def test_reset_while_parked_matches_reference(self, reset_cycle):
        """A statistics reset mid-run lands on parked components (the
        90%-load case keeps some parked at any time); the settled
        counters afterwards must match the scan-everything path doing
        the same reset."""

        def config():
            return paper_platform_config(
                traffic="uniform", load=0.9, max_packets=400
            )

        snaps = []
        for reference in (False, True):
            platform = fresh_platform(config)
            step = (
                platform.step_reference if reference else platform.step
            )
            for k in range(6000):
                if k == reset_cycle:
                    platform.reset_statistics()
                step()
            snaps.append(snapshot(platform))
        assert snaps[0] == snaps[1]

    def test_full_block_unblock_cycles_match_reference(self):
        """depth-1 buffers at 90% load force constant whole-switch
        block/unblock churn through the parking paths."""
        event, reference = cosimulate(
            lambda: paper_platform_config(
                traffic="uniform",
                load=0.9,
                max_packets=250,
                buffer_depth=1,
            ),
            cycles=5000,
        )
        assert event == reference

    def test_backpressure_parking_matches_per_cycle_ticking(self):
        """Generator backpressure settlement must equal the seed-style
        per-cycle ticking: the same platform stepped with generator
        parking disabled (no clock) produces identical statistics."""

        def config():
            cfg = paper_platform_config(
                traffic="uniform", load=0.9, max_packets=300
            )
            for tg in cfg.tgs:
                tg.queue_limit = 24  # tight queue: heavy backpressure
            return cfg

        parked = fresh_platform(config)
        for _ in range(5000):
            parked.step()
        ticking = fresh_platform(config)
        for generator in ticking.generators:
            generator._clock = None  # disables backpressure parking
        for _ in range(5000):
            ticking.step()
        assert any(
            g.backpressure_cycles > 0 for g in parked.generators
        )
        assert snapshot(parked) == snapshot(ticking)

    def window_records(self, make_config, reference, cycles, window,
                       schedule=None):
        """Both kernels drive WindowedMetrics exactly as the engine
        does: advance at the top of the cycle, fault tick after."""
        from repro.telemetry import WindowedMetrics

        platform = fresh_platform(make_config)
        injector = None
        if schedule is not None:
            from repro.faults import FaultInjector

            injector = FaultInjector(schedule, platform)
            injector.begin(platform.cycle)
        telemetry = WindowedMetrics(platform, window)
        net = platform.network
        step = platform.step_reference if reference else platform.step
        tel_next = telemetry.begin(net.cycle)
        for _ in range(cycles):
            now = net.cycle
            if now >= tel_next:
                tel_next = telemetry.advance(now)
            if injector is not None:
                injector.tick(now)
            step()
        telemetry.finish(net.cycle)
        return telemetry.records

    def test_window_deltas_while_parked_match_reference(self):
        """The settle-on-read discipline the windows difference over
        must hold mid-parking: boundary snapshots taken while inputs,
        NIs and generators sleep equal the scan-everything kernel's."""

        def config():
            return paper_platform_config(
                traffic="uniform", load=0.9, max_packets=400
            )

        event = self.window_records(config, False, 5000, window=257)
        reference = self.window_records(config, True, 5000, window=257)
        assert event == reference
        assert any(w.parked_inputs > 0 for w in event)  # non-vacuous

    def test_window_deltas_across_fault_match_reference(self):
        """A fault applied mid-window (aborts, credit refunds, drops)
        must land in the same window with the same deltas on both
        kernels."""
        from repro.faults import FaultSchedule, link_down

        schedule = FaultSchedule.of(
            link_down(600, 1, 4), link_down(600, 4, 1)
        )

        def config():
            return paper_platform_config(
                traffic="uniform", load=0.9, max_packets=400
            )

        event = self.window_records(
            config, False, 5000, window=257, schedule=schedule
        )
        reference = self.window_records(
            config, True, 5000, window=257, schedule=schedule
        )
        assert event == reference
        assert any(w.fault_dropped_flits > 0 for w in event)

    def test_window_deltas_across_ff_jump_match_reference(self):
        """An engine run (fast-forward on, jumps landing on window
        boundaries) must emit the same series as a per-cycle
        reference-kernel loop over the same idle-heavy scenario."""
        from repro.telemetry import WindowedMetrics

        def config():
            return paper_platform_config(
                traffic="trace",
                max_packets=None,
                traffic_params={
                    "n_bursts": 6,
                    "packets_per_burst": 4,
                    "gap": 2500,
                },
            )

        platform = fresh_platform(config)
        telemetry = WindowedMetrics(platform, 300)
        result = EmulationEngine(platform, telemetry=telemetry).run()
        manual = self.window_records(
            config, True, result.cycles, window=300
        )
        assert list(result.windows) == manual
        # Non-vacuous: the gaps really produced skipped windows.
        assert any(
            w.injected_flits == 0 and w.forwarded_flits == 0
            for w in result.windows
        )


class TestFastForwardParity:
    """Idle fast-forward must be invisible in every result."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(traffic="poisson", load=0.02, max_packets=150),
            dict(traffic="onoff", load=0.05, max_packets=150),
            dict(traffic="burst", load=0.1, max_packets=150),
            dict(
                traffic="trace",
                max_packets=None,
                traffic_params={
                    "n_bursts": 12,
                    "packets_per_burst": 4,
                    "gap": 900,
                },
            ),
        ],
        ids=["poisson", "onoff", "burst", "trace"],
    )
    def test_engine_results_identical_with_and_without_ff(self, kwargs):
        with_ff = EmulationEngine(
            build_platform(paper_platform_config(**kwargs))
        ).run(fast_forward=True)
        without = EmulationEngine(
            build_platform(paper_platform_config(**kwargs))
        ).run(fast_forward=False)
        assert with_ff.cycles == without.cycles
        assert with_ff.packets_sent == without.packets_sent
        assert with_ff.packets_received == without.packets_received
        assert with_ff.completed and without.completed

    def test_ff_actually_skips_idle_cycles(self):
        platform = build_platform(
            paper_platform_config(
                traffic="onoff", load=0.02, max_packets=100
            )
        )
        stepped = 0
        network = platform.network
        original = network.step

        def counting_step():
            nonlocal stepped
            stepped += 1
            return original()

        network.step = counting_step
        result = EmulationEngine(platform).run()
        assert result.completed
        # The vast idle majority of emulated time was never stepped.
        assert stepped < result.cycles / 2

    def test_ff_delivers_credits_due_at_the_jump_cycle(self):
        """Regression: `_flush_credits_until` used to start at offset
        1, skipping credits due exactly at the current (unprocessed)
        cycle — reachable with link delay >= 2, where a pop at c-1
        schedules a credit for c+1 while the fabric goes quiescent at
        c+1.  Every credit counter must match the fast_forward=False
        run after each burst."""
        from repro.core.config import (
            PlatformConfig,
            TGSpec,
            TRSpec,
        )
        from repro.noc.topology import mesh

        def config():
            return PlatformConfig(
                topology=mesh(2, 2, link_delay=2),
                routing="shortest",
                tgs=[
                    TGSpec(
                        node=0,
                        model="onoff",
                        params={
                            "length": 4,
                            "dst": 3,
                            "packets_per_burst": 2,
                            "load": 0.02,
                        },
                        max_packets=40,
                        seed=7,
                    )
                ],
                trs=[TRSpec(node=3)],
                check_deadlock=False,
            )

        def credit_state(platform):
            return [
                [
                    sw.output_credits(p)
                    for p in range(sw.config.n_outputs)
                ]
                for sw in platform.network.switches
            ] + [ni._credits for ni in platform.network.nis]

        with_ff = EmulationEngine(build_platform(config())).run(
            fast_forward=True
        )
        without = EmulationEngine(build_platform(config())).run(
            fast_forward=False
        )
        assert with_ff.cycles == without.cycles
        assert with_ff.packets_received == without.packets_received
        # Rebuild and co-simulate step-by-step around the jumps so the
        # credit counters are compared at matching cycles.
        ff_platform = build_platform(config())
        plain = build_platform(config())
        engine = EmulationEngine(ff_platform)
        engine.run(max_cycles=4000)
        while plain.cycle < ff_platform.cycle:
            plain.step()
        assert credit_state(ff_platform) == credit_state(plain)

    def test_max_cycles_limit_respected_across_jumps(self):
        platform = build_platform(
            paper_platform_config(
                traffic="poisson", load=0.001, max_packets=10_000
            )
        )
        result = EmulationEngine(platform).run(max_cycles=5000)
        assert result.cycles == 5000
