"""Event-driven kernel parity: `Network.step` vs `Network.step_reference`.

The event-driven kernel (active sets + armed links + idle fast-forward
+ incremental counters) must be *bit-identical* to the original
scan-everything dataflow, which survives as ``step_reference``.  These
tests co-simulate both paths on every traffic family / switching mode /
routing case the integration suite exercises and compare cycle counts,
per-packet latency statistics, congestion statistics and every
component-level counter.
"""

import itertools

import pytest

import repro.noc.flit as flit_mod
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.receptors.tracedriven import TraceDrivenReceptor


def fresh_platform(make_config):
    """Build a platform with the global packet-id counter rewound.

    Packet ids seed the multipath routing hash, so both co-simulated
    platforms must allocate identical pid sequences; that also means
    the two runs must execute sequentially, not interleaved.
    """
    flit_mod._packet_ids = itertools.count()
    return build_platform(make_config())


def snapshot(platform):
    """Every observable statistic of a platform, for exact comparison."""
    net = platform.network
    snap = {
        "cycle": net.cycle,
        "packets_sent": platform.packets_sent,
        "packets_received": platform.packets_received,
        "in_flight": net.in_flight_flits,
        "mean_latency": platform.mean_latency(),
        "max_latency": platform.max_latency(),
        "congestion_rate": platform.congestion_rate(),
        "blocked": net.total_blocked_flit_cycles,
        "link_loads": net.link_loads(),
        "switches": [
            (
                sw.flits_forwarded,
                sw.blocked_flit_cycles,
                sw.credit_stall_cycles,
                sw.buffered_flits,
            )
            for sw in net.switches
        ],
        "links": [
            (link.flits_carried, link.busy_cycles, link.occupancy)
            for link in net.links
        ],
        "nis": [
            (
                ni.offered_packets,
                ni.injected_flits,
                ni.injected_packets,
                ni.stall_cycles,
                ni.pending_flits,
            )
            for ni in net.nis
        ],
        "rx": [
            (rx.received_flits, rx.received_packets, rx.partial_packets)
            for rx in net.rx
        ],
        "receptors": [
            (r.packets_received, r.flits_received, r.first_cycle, r.last_cycle)
            for r in platform.receptors
        ],
        "generators": [
            (g.packets_sent, g.flits_sent, g.backpressure_cycles)
            for g in platform.generators
        ],
    }
    for receptor in platform.receptors:
        if isinstance(receptor, TraceDrivenReceptor):
            lat = receptor.latency
            snap[f"latency{receptor.node}"] = (
                lat.count,
                lat.total_latency,
                lat.min_latency,
                lat.max_latency,
                lat.total_queueing,
                lat.total_network,
            )
            snap[f"hist{receptor.node}"] = tuple(lat.histogram.counts)
    return snap


def cosimulate(make_config, cycles):
    """Run the same config through both step paths; return snapshots."""
    event = fresh_platform(make_config)
    for _ in range(cycles):
        event.step()
    reference = fresh_platform(make_config)
    for _ in range(cycles):
        reference.step_reference()
    # The incremental in-flight counter must agree with a full scan on
    # both paths at every comparison point.
    for platform in (event, reference):
        net = platform.network
        assert net.in_flight_flits == net.scan_in_flight_flits()
    return snapshot(event), snapshot(reference)


SCENARIOS = [
    dict(traffic="uniform", max_packets=300),
    dict(traffic="uniform", max_packets=300, load=0.9),
    dict(traffic="burst", max_packets=300),
    dict(traffic="poisson", max_packets=300, load=0.05),
    dict(traffic="onoff", max_packets=300, load=0.1),
    dict(
        traffic="trace",
        max_packets=None,
        traffic_params={"n_bursts": 24, "packets_per_burst": 6},
    ),
    dict(traffic="uniform", max_packets=300, routing_case="disjoint"),
    dict(traffic="uniform", max_packets=300, routing_case="split"),
]


@pytest.mark.parametrize(
    "kwargs", SCENARIOS, ids=lambda k: f"{k.get('traffic')}-"
    f"{k.get('routing_case', 'overlap')}-{k.get('load', 'def')}"
)
def test_event_kernel_matches_reference(kwargs):
    event, reference = cosimulate(
        lambda: paper_platform_config(**kwargs), cycles=6000
    )
    assert event == reference


def test_parity_under_store_and_forward():
    def config():
        cfg = paper_platform_config(traffic="burst", max_packets=200, length=4)
        cfg.switching = "store_and_forward"
        return cfg

    event, reference = cosimulate(config, cycles=5000)
    assert event == reference


def test_parity_with_buffer_sampling():
    """sample_buffers touches every switch every cycle on both paths."""

    def config():
        cfg = paper_platform_config(traffic="uniform", max_packets=150)
        cfg.sample_buffers = True
        return cfg

    event = fresh_platform(config)
    for _ in range(4000):
        event.step()
    reference = fresh_platform(config)
    for _ in range(4000):
        reference.step_reference()
    occ_e = [
        (buf.mean_occupancy, buf.full_fraction)
        for sw in event.network.switches
        for buf in sw.inputs
    ]
    occ_r = [
        (buf.mean_occupancy, buf.full_fraction)
        for sw in reference.network.switches
        for buf in sw.inputs
    ]
    assert occ_e == occ_r
    assert snapshot(event) == snapshot(reference)


def test_mixing_paths_mid_run_is_consistent():
    """Alternating step/step_reference on one network stays coherent."""
    config = lambda: paper_platform_config(traffic="uniform", max_packets=200)
    platform = fresh_platform(config)
    for k in range(5000):
        if (k // 64) % 2:
            platform.step_reference()
        else:
            platform.step()
    oracle = fresh_platform(config)
    for _ in range(5000):
        oracle.step_reference()
    assert snapshot(platform) == snapshot(oracle)


class TestFastForwardParity:
    """Idle fast-forward must be invisible in every result."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(traffic="poisson", load=0.02, max_packets=150),
            dict(traffic="onoff", load=0.05, max_packets=150),
            dict(traffic="burst", load=0.1, max_packets=150),
            dict(
                traffic="trace",
                max_packets=None,
                traffic_params={
                    "n_bursts": 12,
                    "packets_per_burst": 4,
                    "gap": 900,
                },
            ),
        ],
        ids=["poisson", "onoff", "burst", "trace"],
    )
    def test_engine_results_identical_with_and_without_ff(self, kwargs):
        with_ff = EmulationEngine(
            build_platform(paper_platform_config(**kwargs))
        ).run(fast_forward=True)
        without = EmulationEngine(
            build_platform(paper_platform_config(**kwargs))
        ).run(fast_forward=False)
        assert with_ff.cycles == without.cycles
        assert with_ff.packets_sent == without.packets_sent
        assert with_ff.packets_received == without.packets_received
        assert with_ff.completed and without.completed

    def test_ff_actually_skips_idle_cycles(self):
        platform = build_platform(
            paper_platform_config(
                traffic="onoff", load=0.02, max_packets=100
            )
        )
        stepped = 0
        network = platform.network
        original = network.step

        def counting_step():
            nonlocal stepped
            stepped += 1
            return original()

        network.step = counting_step
        result = EmulationEngine(platform).run()
        assert result.completed
        # The vast idle majority of emulated time was never stepped.
        assert stepped < result.cycles / 2

    def test_max_cycles_limit_respected_across_jumps(self):
        platform = build_platform(
            paper_platform_config(
                traffic="poisson", load=0.001, max_packets=10_000
            )
        )
        result = EmulationEngine(platform).run(max_cycles=5000)
        assert result.cycles == 5000
