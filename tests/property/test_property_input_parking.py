"""Property-based parity of input-granular parking.

PR 5 drops event granularity from components to input ports: a blocked
input parks individually with frozen stall deltas while the rest of
its switch keeps streaming.  These tests drive a *mixed-load* fabric —
two flows converging on one output (credit starvation) while a reverse
flow streams through another output of the same switch — and require
the event kernel to stay bit-identical to per-cycle ticking
(``step_reference``) in every stall statistic: per-flit
``stall_cycles``, per-switch ``blocked_flit_cycles`` and
``credit_stall_cycles``, and per-NI ``stall_cycles``; including
*mid-run* settle-on-read snapshots taken while inputs are still
parked, and a statistics reset dropped on a parked stretch.
"""

import itertools

from hypothesis import given, settings, strategies as st

import repro.noc.flit as flit_mod
from repro.core.config import PlatformConfig, TGSpec, TRSpec
from repro.core.platform import build_platform


def mixed_load_config(load, buffer_depth, seed, queue_limit=None):
    """A 2x2 mesh where switch-level blocking is *partial* by design.

    Nodes 0 and 1 both flood node 3 (their flows merge on one switch
    output and starve on its credits), while node 3 streams packets
    back to node 0 through a different output of the same switches —
    so a switch regularly holds parked and movable inputs at once.
    Routing is up*/down*: the three flows' BFS-shortest channels close
    a dependency cycle on the 2x2 mesh and would wormhole-deadlock.
    """
    length = 4
    interval = max(length, round(length / load))
    tgs = [
        TGSpec(
            node=0,
            model="uniform",
            params={"length": length, "interval": interval, "dst": 3},
            max_packets=120,
            seed=seed,
        ),
        TGSpec(
            node=1,
            model="uniform",
            params={"length": length, "interval": interval, "dst": 3},
            max_packets=120,
            seed=seed + 1,
        ),
        TGSpec(
            node=3,
            model="uniform",
            params={"length": length, "interval": interval, "dst": 0},
            max_packets=120,
            seed=seed + 2,
        ),
    ]
    if queue_limit is not None:
        for tg in tgs:
            tg.queue_limit = queue_limit
    return PlatformConfig(
        topology="mesh:2:2",
        routing="updown",
        buffer_depth=buffer_depth,
        tgs=tgs,
        trs=[TRSpec(node=0), TRSpec(node=3)],
    )


def capture_packet_stalls(platform, sink):
    """Record every completed packet's per-flit stall counters.

    Flit stalls settle exactly when the flit moves, so the values seen
    at reassembly encode the entire per-input parking settlement
    history; pids are deterministic, making the two runs comparable
    key by key.
    """
    for rx in platform.network.rx:
        original = rx.on_packet

        def hook(packet, now, flits, _orig=original):
            sink[packet.pid] = [f.stall_cycles for f in flits]
            if _orig is not None:
                _orig(packet, now, flits)

        rx.on_packet = hook


def stall_snapshot(platform):
    """Every stall statistic, read mid-run (settle-on-read paths)."""
    net = platform.network
    return {
        "blocked": [sw.blocked_flit_cycles for sw in net.switches],
        "credit": [sw.credit_stall_cycles for sw in net.switches],
        "ni": [ni.stall_cycles for ni in net.nis],
        "gen": [g.backpressure_cycles for g in platform.generators],
        "forwarded": [sw.flits_forwarded for sw in net.switches],
        "buffered": [sw.buffered_flits for sw in net.switches],
        "congestion": platform.congestion_rate(),
    }


def build_pair(make_config):
    """Build (event, reference) platforms with identical pid streams.

    The runs are co-simulated in *lockstep*, so each platform gets its
    own packet-id counter (returned alongside it) that the stepping
    loop must install before each step — otherwise the two runs would
    interleave allocations from the global counter and their pids
    would never line up.
    """
    pairs = []
    for _ in range(2):
        counter = itertools.count()
        flit_mod._packet_ids = counter
        pairs.append((build_platform(make_config()), counter))
    return pairs


@settings(max_examples=15, deadline=None)
@given(
    load=st.sampled_from([0.5, 0.7, 0.9]),
    buffer_depth=st.sampled_from([1, 2, 4]),
    reset_cycle=st.integers(min_value=100, max_value=1200),
    snap_every=st.sampled_from([64, 101, 250]),
    seed=st.integers(min_value=1, max_value=10_000),
)
def test_mixed_load_parking_matches_per_cycle_ticking(
    load, buffer_depth, reset_cycle, snap_every, seed
):
    """Lockstep co-simulation: the event kernel's per-input parking
    must be invisible at *every* observation point, not just at the
    end — snapshots land mid-stretch while inputs are parked."""
    (event, event_pids), (reference, reference_pids) = build_pair(
        lambda: mixed_load_config(load, buffer_depth, seed)
    )
    event_stalls, reference_stalls = {}, {}
    capture_packet_stalls(event, event_stalls)
    capture_packet_stalls(reference, reference_stalls)

    saw_input_parking = False
    for k in range(2000):
        if k == reset_cycle:
            # Reset-while-parked: per-flit stalls must survive, the
            # switch/NI windows restart, parked inputs keep
            # accumulating into the fresh window.
            event.reset_statistics()
            reference.reset_statistics()
        flit_mod._packet_ids = event_pids
        event.step()
        flit_mod._packet_ids = reference_pids
        reference.step_reference()
        if any(sw.parked_inputs for sw in event.network.switches):
            saw_input_parking = True
        if k % snap_every == 0:
            assert stall_snapshot(event) == stall_snapshot(reference), (
                f"stall statistics diverged at cycle {k}"
            )

    assert saw_input_parking, "scenario never parked an input (vacuous)"
    assert event_stalls == reference_stalls
    assert event.packets_received == reference.packets_received
    # The capture dicts survive statistics resets (a reset dropped
    # after the budgets drain zeroes ``packets_received`` itself).
    assert event_stalls, "no packet ever completed (vacuous)"


@settings(max_examples=10, deadline=None)
@given(
    buffer_depth=st.sampled_from([1, 2]),
    queue_limit=st.sampled_from([8, 16]),
    seed=st.integers(min_value=1, max_value=10_000),
)
def test_saturated_mixed_load_with_backpressure(
    buffer_depth, queue_limit, seed
):
    """Shallow buffers + tight NI queues: input parking, NI parking
    and generator backpressure parking all engage together; the final
    statistics must still match the scan-everything oracle exactly."""
    (event, event_pids), (reference, reference_pids) = build_pair(
        lambda: mixed_load_config(
            0.9, buffer_depth, seed, queue_limit=queue_limit
        )
    )
    for _ in range(2500):
        flit_mod._packet_ids = event_pids
        event.step()
        flit_mod._packet_ids = reference_pids
        reference.step_reference()
    assert stall_snapshot(event) == stall_snapshot(reference)
    assert event.packets_sent == reference.packets_sent
    assert event.packets_received == reference.packets_received
    assert event.packets_received > 0
    assert (
        event.network.in_flight_flits
        == event.network.scan_in_flight_flits()
    )


def test_partial_parking_coexists_with_streaming():
    """Non-vacuity for the tentpole's core claim: some switch holds a
    parked input and a movable input in the same cycle, and still
    forwards flits that cycle (the reference kernel would have
    rescanned the parked head; the event kernel provably does not)."""
    flit_mod._packet_ids = itertools.count()
    platform = build_platform(mixed_load_config(0.9, 2, seed=7))
    saw_partial_with_progress = False
    for _ in range(2500):
        before = [sw.flits_forwarded for sw in platform.network.switches]
        platform.step()
        for sw, prior in zip(platform.network.switches, before):
            if (
                sw.parked_inputs
                and sw._scan
                and sw.flits_forwarded > prior
            ):
                saw_partial_with_progress = True
    assert saw_partial_with_progress
