"""Property-based tests of the NoC substrate invariants."""

from hypothesis import given, settings, strategies as st

from repro.noc.buffer import FlitBuffer
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.routing import (
    build_multipath_tables,
    build_shortest_path_tables,
)
from repro.noc.switch import SwitchingMode
from repro.noc.topology import mesh, ring, torus


# ----------------------------------------------------------------------
# Packet segmentation
# ----------------------------------------------------------------------
@given(length=st.integers(min_value=1, max_value=64))
def test_segmentation_is_lossless(length):
    p = Packet(src=0, dst=1, length=length)
    flits = p.flit_list()
    assert len(flits) == length
    assert flits[0].is_head
    assert flits[-1].is_tail
    assert sum(f.is_head for f in flits) == 1
    assert sum(f.is_tail for f in flits) == 1
    assert [f.seq for f in flits] == list(range(length))


# ----------------------------------------------------------------------
# FIFO behaviour under arbitrary operation sequences
# ----------------------------------------------------------------------
@given(
    capacity=st.integers(min_value=1, max_value=16),
    ops=st.lists(st.booleans(), max_size=100),
)
def test_fifo_order_preserved(capacity, ops):
    """Pushes (True) and pops (False) in any legal order keep FIFO order."""
    buf = FlitBuffer(capacity)
    source = iter(Packet(src=0, dst=1, length=200).flits())
    pushed, popped = [], []
    for push in ops:
        if push and not buf.is_full:
            f = next(source)
            buf.push(f)
            pushed.append(f)
        elif not push and not buf.is_empty:
            popped.append(buf.pop())
    assert popped == pushed[: len(popped)]
    assert len(buf) == len(pushed) - len(popped)
    assert len(buf) <= capacity


# ----------------------------------------------------------------------
# Routing tables always reach the destination
# ----------------------------------------------------------------------
_topologies = st.sampled_from(
    [mesh(2, 2), mesh(3, 2), mesh(3, 3), ring(4), ring(6), torus(3, 3)]
)


@given(topo=_topologies, data=st.data())
@settings(max_examples=40, deadline=None)
def test_shortest_path_tables_reach_destination(topo, data):
    routing = build_shortest_path_tables(topo)
    src = data.draw(
        st.integers(min_value=0, max_value=topo.n_nodes - 1)
    )
    dst = data.draw(
        st.integers(min_value=0, max_value=topo.n_nodes - 1)
    )
    flit = Packet(src=src, dst=dst, length=1).flit_list()[0]
    switch = topo.switch_of_node(src)
    for _hop in range(topo.n_switches + 1):
        port = routing.output_port(switch, flit)
        ep = topo.switch_outputs[switch][port]
        if ep.kind == "node":
            assert ep.target == dst
            return
        switch = ep.target
    raise AssertionError(f"packet looped: {src}->{dst}")


@given(topo=_topologies, data=st.data())
@settings(max_examples=40, deadline=None)
def test_multipath_tables_only_offer_minimal_hops(topo, data):
    routing = build_multipath_tables(topo, max_paths=4)
    shortest = build_shortest_path_tables(topo)
    dst = data.draw(
        st.integers(min_value=0, max_value=topo.n_nodes - 1)
    )
    # Any candidate port leads strictly closer: walking any mixture of
    # candidates terminates within the network diameter.
    flit = Packet(src=0, dst=dst, length=1).flit_list()[0]
    switch = topo.switch_of_node(0)
    for _hop in range(topo.n_switches + 1):
        ports = routing.ports_for(switch, dst)
        assert ports
        port = data.draw(st.sampled_from(ports))
        ep = topo.switch_outputs[switch][port]
        if ep.kind == "node":
            assert ep.target == dst
            return
        switch = ep.target
    raise AssertionError("multipath walk failed to terminate")


# ----------------------------------------------------------------------
# Whole-network conservation under random workloads
# ----------------------------------------------------------------------
@given(
    data=st.data(),
    mode=st.sampled_from(
        [SwitchingMode.WORMHOLE, SwitchingMode.STORE_AND_FORWARD]
    ),
)
@settings(max_examples=25, deadline=None)
def test_network_conserves_flits(data, mode):
    topo = mesh(2, 2)
    routing = build_shortest_path_tables(topo)
    depth = 8
    net = Network(topo, routing, buffer_depth=depth, mode=mode)
    n_packets = data.draw(st.integers(min_value=1, max_value=30))
    total_flits = 0
    for _ in range(n_packets):
        src = data.draw(st.integers(min_value=0, max_value=3))
        dst = data.draw(st.integers(min_value=0, max_value=3))
        length = data.draw(st.integers(min_value=1, max_value=depth))
        net.offer(Packet(src=src, dst=dst, length=length))
        total_flits += length
    net.drain(max_cycles=50_000)
    received = sum(rx.received_flits for rx in net.rx)
    assert received == total_flits
    assert sum(rx.received_packets for rx in net.rx) == n_packets


@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_wormhole_delivers_contiguous_packets_per_node(data):
    """At any single ejection port, wormhole flits never interleave."""
    topo = mesh(2, 2)
    routing = build_shortest_path_tables(topo)
    net = Network(topo, routing, buffer_depth=4)
    orders = []
    for node in range(4):
        net.rx[node].on_packet = (
            lambda p, now, fs, _o=orders: _o.append(fs)
        )
    for _ in range(data.draw(st.integers(min_value=2, max_value=20))):
        src = data.draw(st.integers(min_value=0, max_value=3))
        dst = data.draw(st.integers(min_value=0, max_value=3))
        net.offer(Packet(src=src, dst=dst, length=3))
    net.drain(max_cycles=50_000)
    for flits in orders:
        assert [f.seq for f in flits] == [0, 1, 2]
