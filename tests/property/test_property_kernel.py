"""Property-based parity of the event-driven kernel.

Randomised small platforms — topology, arbitration, switching mode and
traffic model all drawn by hypothesis — must produce identical
per-packet latency statistics and final counters whether stepped by the
event-driven :meth:`Network.step` or the scan-everything
:meth:`Network.step_reference` oracle.
"""

import itertools

from hypothesis import given, settings, strategies as st

import repro.noc.flit as flit_mod
from repro.core.config import PlatformConfig, TGSpec, TRSpec
from repro.core.platform import build_platform
from repro.receptors.tracedriven import TraceDrivenReceptor


def small_config(
    topo_kind, arbitration, switching, model, load, seed
):
    """A 2x2-mesh / 4-ring platform with two crossing flows."""
    topology = "mesh:2:2" if topo_kind == "mesh" else "ring:4"
    params = {"length": 3}
    if model == "uniform":
        params["interval"] = max(3, round(3 / load))
    elif model == "onoff":
        params["packets_per_burst"] = 3
        params["load"] = load
    else:  # burst / poisson
        params["load"] = load
    tgs = [
        TGSpec(
            node=0,
            model=model,
            params={**params, "dst": 3},
            max_packets=40,
            seed=seed,
        ),
        TGSpec(
            node=1,
            model=model,
            params={**params, "dst": 2},
            max_packets=40,
            seed=seed + 1,
        ),
    ]
    trs = [TRSpec(node=2), TRSpec(node=3)]
    return PlatformConfig(
        topology=topology,
        routing="shortest",
        buffer_depth=4,
        arbitration=arbitration,
        switching=switching,
        tgs=tgs,
        trs=trs,
        check_deadlock=False,
    )


def final_state(platform):
    net = platform.network
    state = {
        "sent": platform.packets_sent,
        "received": platform.packets_received,
        "in_flight": net.in_flight_flits,
        "scan": net.scan_in_flight_flits(),
        "blocked": net.total_blocked_flit_cycles,
        "switches": [
            (sw.flits_forwarded, sw.blocked_flit_cycles, sw.buffered_flits)
            for sw in net.switches
        ],
        "links": [
            (link.flits_carried, link.busy_cycles) for link in net.links
        ],
        "nis": [
            (ni.injected_flits, ni.stall_cycles) for ni in net.nis
        ],
        "generators": [
            (g.packets_sent, g.flits_sent, g.backpressure_cycles)
            for g in platform.generators
        ],
    }
    for receptor in platform.receptors:
        if isinstance(receptor, TraceDrivenReceptor):
            lat = receptor.latency
            state[f"lat{receptor.node}"] = (
                lat.count,
                lat.total_latency,
                lat.min_latency,
                lat.max_latency,
            )
    return state


@settings(max_examples=30, deadline=None)
@given(
    topo_kind=st.sampled_from(["mesh", "ring"]),
    arbitration=st.sampled_from(
        ["round_robin", "fixed_priority", "matrix"]
    ),
    switching=st.sampled_from(["wormhole", "store_and_forward"]),
    model=st.sampled_from(["uniform", "burst", "poisson", "onoff"]),
    load=st.sampled_from([0.05, 0.2, 0.5, 0.8]),
    seed=st.integers(min_value=1, max_value=10_000),
)
def test_random_platforms_step_identically(
    topo_kind, arbitration, switching, model, load, seed
):
    results = []
    for reference in (False, True):
        # Identical pid sequences (multipath hashing, reassembly keys).
        flit_mod._packet_ids = itertools.count()
        platform = build_platform(
            small_config(
                topo_kind, arbitration, switching, model, load, seed
            )
        )
        step = platform.step_reference if reference else platform.step
        for _ in range(2500):
            step()
        results.append(final_state(platform))
    event, oracle = results
    assert event == oracle
    # Both runs must have actually exercised the fabric.
    assert event["sent"] > 0
    assert event["in_flight"] == event["scan"]


@settings(max_examples=25, deadline=None)
@given(
    topo_kind=st.sampled_from(["mesh", "ring"]),
    switching=st.sampled_from(["wormhole", "store_and_forward"]),
    buffer_depth=st.sampled_from([1, 2, 4]),
    queue_limit=st.sampled_from([8, 16, 64]),
    reset_cycle=st.integers(min_value=50, max_value=2000),
    seed=st.integers(min_value=1, max_value=10_000),
)
def test_saturated_platforms_with_reset_step_identically(
    topo_kind, switching, buffer_depth, queue_limit, reset_cycle, seed
):
    """Parked-component coverage: 90% load with shallow buffers and
    tight NI queues drives full-block/unblock cycles, NI credit
    starvation and generator backpressure parking; a statistics reset
    dropped on a random cycle lands on parked components.  Everything
    must stay bit-identical to the scan-everything oracle."""
    results = []
    for reference in (False, True):
        flit_mod._packet_ids = itertools.count()
        config = small_config(
            topo_kind, "round_robin", switching, "uniform", 0.9, seed
        )
        for tg in config.tgs:
            tg.queue_limit = queue_limit
        # Store-and-forward needs whole packets (length 3) to fit.
        config.buffer_depth = (
            buffer_depth
            if switching == "wormhole"
            else max(buffer_depth, 3)
        )
        platform = build_platform(config)
        step = platform.step_reference if reference else platform.step
        for k in range(2500):
            if k == reset_cycle:
                platform.reset_statistics()
            step()
        results.append(final_state(platform))
    event, oracle = results
    assert event == oracle
    assert event["sent"] > 0
    assert event["in_flight"] == event["scan"]
