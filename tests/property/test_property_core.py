"""Property-based tests of the bus fabric, registers and deadlock
analysis."""

from hypothesis import given, settings, strategies as st

from repro.core.bus import (
    AddressError,
    BusFabric,
    DEVICES_PER_BUS,
    Device,
    N_BUSES,
    make_address,
    split_address,
)
from repro.core.registers import Register, RegisterBank
from repro.noc.deadlock import find_dependency_cycle


# ----------------------------------------------------------------------
# Address codec
# ----------------------------------------------------------------------
@given(
    bus=st.integers(min_value=0, max_value=N_BUSES - 1),
    device=st.integers(min_value=0, max_value=DEVICES_PER_BUS - 1),
    offset=st.integers(min_value=0, max_value=4095),
)
def test_address_round_trip(bus, device, offset):
    assert split_address(make_address(bus, device, offset)) == (
        bus,
        device,
        offset,
    )


@given(
    a=st.tuples(
        st.integers(min_value=0, max_value=N_BUSES - 1),
        st.integers(min_value=0, max_value=DEVICES_PER_BUS - 1),
        st.integers(min_value=0, max_value=4095),
    ),
    b=st.tuples(
        st.integers(min_value=0, max_value=N_BUSES - 1),
        st.integers(min_value=0, max_value=DEVICES_PER_BUS - 1),
        st.integers(min_value=0, max_value=4095),
    ),
)
def test_address_injective(a, b):
    if a != b:
        assert make_address(*a) != make_address(*b)


# ----------------------------------------------------------------------
# Registers under arbitrary word values
# ----------------------------------------------------------------------
@given(value=st.integers(min_value=-(2**40), max_value=2**40))
def test_register_masks_to_32_bits(value):
    r = Register("X")
    r.write(value)
    assert 0 <= r.read() <= 0xFFFFFFFF
    assert r.read() == value & 0xFFFFFFFF


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=0xFFFFFFFF),
        ),
        max_size=50,
    )
)
def test_register_bank_offset_and_name_views_agree(writes):
    bank = RegisterBank("fuzz")
    for i in range(8):
        bank.define(f"R{i}")
    for index, value in writes:
        bank.write(index * 4, value)
    for i in range(8):
        assert bank.read(i * 4) == bank[f"R{i}"].read()


# ----------------------------------------------------------------------
# Fabric read/write routing
# ----------------------------------------------------------------------
class _FuzzDevice(Device):
    def __init__(self, name):
        super().__init__(name)
        for i in range(4):
            self.bank.define(f"R{i}")


@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # device index
            st.integers(min_value=0, max_value=3),  # register index
            st.integers(min_value=0, max_value=0xFFFFFFFF),
        ),
        max_size=60,
    )
)
@settings(max_examples=50)
def test_fabric_routes_to_the_right_device(ops):
    fabric = BusFabric()
    devices = [_FuzzDevice(f"d{i}") for i in range(3)]
    bases = [fabric.attach(d, bus=i % 2) for i, d in enumerate(devices)]
    shadow = {}
    for dev_index, reg_index, value in ops:
        address = bases[dev_index] + 4 * reg_index
        fabric.write(address, value)
        shadow[(dev_index, reg_index)] = value
    for (dev_index, reg_index), value in shadow.items():
        address = bases[dev_index] + 4 * reg_index
        assert fabric.read(address) == value
        # And the device-side view agrees.
        assert devices[dev_index].bank[f"R{reg_index}"].read() == value


# ----------------------------------------------------------------------
# Cycle detection on random graphs vs a reference checker
# ----------------------------------------------------------------------
def _has_cycle_reference(graph):
    """Kahn's algorithm: cycle iff topological sort is incomplete."""
    nodes = set(graph)
    for deps in graph.values():
        nodes |= deps
    indegree = {n: 0 for n in nodes}
    for deps in graph.values():
        for d in deps:
            indegree[d] += 1
    queue = [n for n in nodes if indegree[n] == 0]
    seen = 0
    while queue:
        node = queue.pop()
        seen += 1
        for d in graph.get(node, ()):
            indegree[d] -= 1
            if indegree[d] == 0:
                queue.append(d)
    return seen != len(nodes)


@given(
    edges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
        ),
        max_size=30,
    )
)
@settings(max_examples=100)
def test_cycle_finder_agrees_with_kahn(edges):
    graph = {}
    for a, b in edges:
        graph.setdefault((a, a + 100), set()).add((b, b + 100))
    cycle = find_dependency_cycle(graph)
    assert (cycle is not None) == _has_cycle_reference(graph)
    if cycle is not None:
        # The reported cycle is a genuine closed walk in the graph.
        assert cycle[0] == cycle[-1]
        for frm, to in zip(cycle, cycle[1:]):
            assert to in graph.get(frm, set())
