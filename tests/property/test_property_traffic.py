"""Property-based tests of traffic models, RNG and histograms."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.receptors.histogram import Histogram
from repro.traffic.base import FixedDestination, interval_for_load
from repro.traffic.burst import BurstTraffic
from repro.traffic.onoff import OnOffTraffic
from repro.traffic.rng import Lfsr32, LfsrRandom
from repro.traffic.trace import (
    Trace,
    TraceRecord,
    TraceTraffic,
    load_trace,
    save_trace,
)
from repro.traffic.uniform import UniformTraffic


# ----------------------------------------------------------------------
# RNG
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_lfsr_state_nonzero_for_any_seed(seed):
    lfsr = Lfsr32(seed)
    assert lfsr.state != 0
    for _ in range(64):
        lfsr.next_bit()
        assert lfsr.state != 0


@given(
    seed=st.integers(min_value=1, max_value=2**32 - 1),
    lo=st.integers(min_value=-1000, max_value=1000),
    span=st.integers(min_value=0, max_value=500),
)
def test_uniform_int_stays_in_range(seed, lo, span):
    rng = LfsrRandom(seed)
    hi = lo + span
    for _ in range(20):
        assert lo <= rng.uniform_int(lo, hi) <= hi


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_rng_determinism(seed):
    a, b = LfsrRandom(seed), LfsrRandom(seed)
    assert [a.uniform_int(0, 99) for _ in range(10)] == [
        b.uniform_int(0, 99) for _ in range(10)
    ]


# ----------------------------------------------------------------------
# Traffic model invariants
# ----------------------------------------------------------------------
@given(
    length=st.integers(min_value=1, max_value=32),
    load=st.floats(
        min_value=0.01,
        max_value=1.0,
        allow_nan=False,
        exclude_min=False,
    ),
)
def test_interval_for_load_never_exceeds_target(length, load):
    interval = interval_for_load(length, load)
    assert interval >= length
    assert length / interval <= load + 1e-9


@given(
    length=st.integers(min_value=1, max_value=8),
    interval=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=1, max_value=1000),
)
@settings(max_examples=50)
def test_uniform_model_cadence_and_reset(length, interval, seed):
    interval = max(interval, length)
    m = UniformTraffic(
        length, interval, FixedDestination(1), seed=seed
    )
    first = [(now, m.poll(now)) for now in range(interval * 4)]
    m.reset()
    second = [(now, m.poll(now)) for now in range(interval * 4)]
    assert first == second
    emissions = [now for now, e in first if e]
    assert all(
        b - a == interval for a, b in zip(emissions, emissions[1:])
    )


@given(
    p_on=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    p_off=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=1, max_value=10_000),
)
@settings(max_examples=30)
def test_burst_model_invariants(p_on, p_off, seed):
    m = BurstTraffic(p_on, p_off, 4, FixedDestination(1), seed=seed)
    last_burst = -1
    for now in range(0, 2000, 4):
        e = m.poll(now)
        if e is None:
            continue
        length, dst, burst = e
        assert length == 4
        assert dst == 1
        assert burst >= last_burst  # burst ids never go backwards
        last_burst = burst


@given(
    packets=st.integers(min_value=1, max_value=10),
    gap=st.integers(min_value=0, max_value=20),
    length=st.integers(min_value=1, max_value=6),
)
def test_onoff_measured_load_matches_duty_cycle(packets, gap, length):
    m = OnOffTraffic(packets, gap, length, FixedDestination(1))
    period = packets * length + gap
    cycles = period * 10
    emitted = sum(
        e[0] for e in (m.poll(now) for now in range(cycles)) if e
    )
    expected = m.expected_load()
    assert emitted / cycles <= expected + 1e-9
    assert emitted / cycles >= expected * 0.9 - 1e-9


# ----------------------------------------------------------------------
# Trace round trips
# ----------------------------------------------------------------------
_records = st.lists(
    st.builds(
        TraceRecord,
        cycle=st.integers(min_value=0, max_value=10_000),
        dst=st.integers(min_value=0, max_value=63),
        length=st.integers(min_value=1, max_value=64),
        burst_id=st.one_of(
            st.none(), st.integers(min_value=0, max_value=99)
        ),
    ),
    max_size=50,
)


@given(records=_records)
@settings(max_examples=50)
def test_trace_save_load_round_trip(records):
    original = Trace(records, name="prop")
    buf = io.StringIO()
    save_trace(original, buf)
    buf.seek(0)
    restored = load_trace(buf)
    assert len(restored) == len(original)
    for a, b in zip(original, restored):
        assert (a.cycle, a.dst, a.length, a.burst_id) == (
            b.cycle,
            b.dst,
            b.length,
            b.burst_id,
        )


@given(records=_records)
@settings(max_examples=50)
def test_trace_replay_is_causal_and_complete(records):
    trace = Trace(records)
    m = TraceTraffic(trace)
    replayed = 0
    now = 0
    while not m.exhausted and now < 40_000:
        e = m.poll(now)
        if e is not None:
            replayed += 1
        now += 1
    assert replayed == len(trace)


# ----------------------------------------------------------------------
# Histogram invariants
# ----------------------------------------------------------------------
@given(
    values=st.lists(
        st.integers(min_value=-50, max_value=500), min_size=1,
        max_size=200,
    ),
    n_bins=st.integers(min_value=1, max_value=32),
    bin_width=st.integers(min_value=1, max_value=16),
)
def test_histogram_counts_always_total(values, n_bins, bin_width):
    h = Histogram(n_bins, bin_width, origin=0)
    for v in values:
        h.add(v)
    assert (
        sum(h.counts) + h.overflow + h.underflow == h.total == len(values)
    )
    assert h.min == min(values)
    assert h.max == max(values)
    assert h.mean * h.total == pytest.approx(sum(values))


@given(
    values=st.lists(
        st.integers(min_value=0, max_value=100), min_size=1,
        max_size=100,
    )
)
def test_histogram_merge_equals_bulk_add(values):
    half = len(values) // 2
    a = Histogram(16, 8)
    b = Histogram(16, 8)
    whole = Histogram(16, 8)
    for v in values[:half]:
        a.add(v)
    for v in values[half:]:
        b.add(v)
    for v in values:
        whole.add(v)
    a.merge(b)
    assert a.counts == whole.counts
    assert a.total == whole.total
    assert a.mean == whole.mean
