"""The checkpoint record format: round trips, corruption, drift.

A checkpoint is only trustworthy if every ScenarioSpec field survives
the save/load round trip byte-exactly, and if every way the file can
go bad — truncation, hand-editing, schema drift, resuming against the
wrong scenario — fails loudly with a specific error *before* any
state is applied.  A partial restore would be worse than no restore.
"""

import itertools
import json

import pytest

import repro.noc.flit as flit_mod
from repro.checkpoint import (
    CHECKPOINT_SCHEMA,
    Checkpoint,
    CheckpointCorruptError,
    CheckpointSchemaError,
    CheckpointSpecMismatch,
    load_checkpoint,
    snapshot,
)
from repro.core.platform import build_platform
from repro.experiments import (
    ResultCache,
    ScenarioSpec,
    warm_point_key,
)
from repro.faults import FaultSchedule, link_down, link_up


def checkpoint_for(spec, cycles=0):
    flit_mod._packet_ids = itertools.count()
    platform = build_platform(spec.to_platform_config())
    if cycles:
        platform.run(cycles)
    return platform, snapshot(platform, spec)


#: One spec with every field off its default, including the optional
#: fault schedule and telemetry window length.
FULL_SPEC = ScenarioSpec(
    topology="mesh:3:3",
    routing="shortest",
    switching="store_and_forward",
    arbitration="fixed_priority",
    buffer_depth=6,
    traffic="burst",
    load=0.3,
    length=5,
    packets=50,
    receptors="stochastic",
    seed=42,
    traffic_params={"packets_per_burst": 4},
    faults=FaultSchedule(
        events=(link_down(200, 0, 1), link_up(600, 0, 1))
    ),
    telemetry_windows=250,
)


def test_every_spec_field_round_trips(tmp_path):
    _, checkpoint = checkpoint_for(FULL_SPEC)
    path = str(tmp_path / "full.json")
    digest = checkpoint.save(path)
    loaded = load_checkpoint(path, spec=FULL_SPEC)
    assert loaded.spec == FULL_SPEC
    assert loaded.spec.to_dict() == FULL_SPEC.to_dict()
    assert loaded.content_hash == checkpoint.content_hash == digest
    assert loaded.state == checkpoint.state
    # The embedded fault schedule round-trips as a real FaultSchedule.
    assert isinstance(loaded.spec.faults, FaultSchedule)
    assert loaded.spec.faults.to_dict() == FULL_SPEC.faults.to_dict()


def test_healthy_spec_omits_optional_keys(tmp_path):
    """faults/telemetry_windows stay absent from the stored spec of a
    healthy run, keeping its canonical form (and spec hash) identical
    to pre-checkpoint specs."""
    spec = ScenarioSpec(load=0.5, packets=30, seed=3)
    _, checkpoint = checkpoint_for(spec)
    path = str(tmp_path / "healthy.json")
    checkpoint.save(path)
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    assert "faults" not in record["spec"]
    assert "telemetry_windows" not in record["spec"]
    assert load_checkpoint(path).spec == spec


def test_checkpoint_hash_is_deterministic():
    spec = ScenarioSpec(load=0.5, packets=30, seed=3)
    _, a = checkpoint_for(spec, cycles=300)
    _, b = checkpoint_for(spec, cycles=300)
    assert a.state == b.state
    assert a.content_hash == b.content_hash
    _, c = checkpoint_for(spec, cycles=301)
    assert c.content_hash != a.content_hash


# ----------------------------------------------------------------------
# Corruption and schema drift: every failure is specific and total.
# ----------------------------------------------------------------------

def saved(tmp_path, spec=None, cycles=200):
    spec = spec or ScenarioSpec(load=0.5, packets=30, seed=3)
    _, checkpoint = checkpoint_for(spec, cycles=cycles)
    path = str(tmp_path / "cp.json")
    checkpoint.save(path)
    return path, spec


def test_truncated_file_is_corrupt(tmp_path):
    path, _ = saved(tmp_path)
    with open(path, "rb") as fh:
        blob = fh.read()
    with open(path, "wb") as fh:
        fh.write(blob[: len(blob) // 2])
    with pytest.raises(CheckpointCorruptError, match="not valid JSON"):
        load_checkpoint(path)


def test_missing_file_is_corrupt(tmp_path):
    with pytest.raises(CheckpointCorruptError):
        load_checkpoint(str(tmp_path / "nope.json"))


def test_non_object_payload_is_corrupt(tmp_path):
    path = str(tmp_path / "cp.json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("[1, 2, 3]")
    with pytest.raises(CheckpointCorruptError):
        load_checkpoint(path)


def test_wrong_schema_version_is_drift(tmp_path):
    path, _ = saved(tmp_path)
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    record["schema"] = CHECKPOINT_SCHEMA + 1
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh)
    with pytest.raises(CheckpointSchemaError, match="schema"):
        load_checkpoint(path)


def test_tampered_state_fails_the_hash(tmp_path):
    path, _ = saved(tmp_path)
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    record["state"]["cycle"] += 1
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh)
    with pytest.raises(CheckpointCorruptError, match="hash"):
        load_checkpoint(path)


def test_corrupt_load_restores_nothing(tmp_path):
    """A failed load leaves no side effects — in particular the global
    packet-id allocator is untouched, so a later build is unaffected."""
    path, _ = saved(tmp_path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("{not json")
    flit_mod._packet_ids = itertools.count(777)
    with pytest.raises(CheckpointCorruptError):
        load_checkpoint(path)
    assert next(flit_mod._packet_ids) == 777


def test_spec_mismatch_names_both_hashes(tmp_path):
    """Regression: resuming against the wrong scenario must fail with
    a structured error carrying both content hashes, so the operator
    can see *which* two specs disagreed."""
    path, spec = saved(tmp_path)
    other = ScenarioSpec(load=0.6, packets=30, seed=3)
    with pytest.raises(CheckpointSpecMismatch) as excinfo:
        load_checkpoint(path, spec=other)
    err = excinfo.value
    assert err.expected_key == other.key
    assert err.found_key == spec.key
    assert other.key in str(err)
    assert spec.key in str(err)
    # Without a spec to check against, the same file loads fine.
    assert load_checkpoint(path).spec == spec


def test_from_dict_rejects_missing_fields():
    spec = ScenarioSpec(load=0.5, packets=30, seed=3)
    _, checkpoint = checkpoint_for(spec)
    record = checkpoint.to_dict()
    for key in ("hash", "spec", "state"):
        broken = dict(record)
        del broken[key]
        with pytest.raises(CheckpointCorruptError):
            Checkpoint.from_dict(broken)


# ----------------------------------------------------------------------
# Warm-start cache keys: warm and cold runs must never collide.
# ----------------------------------------------------------------------

def test_warm_key_differs_from_cold_and_tracks_inputs():
    spec = ScenarioSpec(load=0.5, packets=30, seed=3)
    key = warm_point_key(spec, "abc123", load=0.5, max_cycles=1000)
    assert key != spec.key
    assert key != warm_point_key(spec, "def456", load=0.5, max_cycles=1000)
    assert key != warm_point_key(spec, "abc123", load=0.6, max_cycles=1000)
    assert key != warm_point_key(spec, "abc123", load=0.5, max_cycles=2000)
    assert key == warm_point_key(spec, "abc123", load=0.5, max_cycles=1000)


def test_cache_raw_key_round_trip(tmp_path):
    from repro.experiments.runner import RECORD_SCHEMA

    cache = ResultCache(str(tmp_path / "cache"))
    key = "deadbeefdeadbeef"
    record = {
        "schema": RECORD_SCHEMA,
        "key": key,
        "metrics": {"mean_latency": 12.5},
    }
    assert cache.get_record(key) is None
    cache.put_record(key, record)
    assert cache.get_record(key) == record
    # A key mismatch is a programming error, not a silent mis-file.
    with pytest.raises(ValueError):
        cache.put_record("somewhereelse", record)
    # Corruption degrades to a miss, exactly like the spec-keyed path.
    with open(cache.path_for(key), "w", encoding="utf-8") as fh:
        fh.write("{broken")
    assert cache.get_record(key) is None
