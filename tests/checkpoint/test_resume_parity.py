"""Bit-identical resume parity of the checkpoint/restore layer.

The defining property of a checkpoint: cutting a run at *any* cycle
boundary, serialising the complete state, restoring it onto a freshly
built platform and continuing must land in exactly the state an
uninterrupted run reaches — not statistically close, structurally
identical.  The comparison is therefore the strongest one available:
the full :func:`~repro.checkpoint.snapshot` state dict (every FIFO,
park record, wheel slot, RNG, histogram bin and telemetry base) of
the resumed run must equal the uninterrupted run's, on both the
event-driven kernel and the scan-everything reference oracle.

Cut cycles are drawn from a seeded RNG over mixed-load scenarios —
a 90% saturation run (so cuts land on parked inputs mid-stall) and a
bursty run with long quiet stretches (so cuts land inside idle
fast-forward gaps) — and the tests assert the interesting state was
actually present at some cut (parked inputs, in-flight flits) so the
parity claim is never vacuous.
"""

import io
import itertools
import json
import random

import pytest

import repro.noc.flit as flit_mod
from repro.checkpoint import Checkpoint, load_checkpoint, restore, snapshot
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.experiments.spec import ScenarioSpec
from repro.telemetry import FlitTracer, WindowedMetrics


def fresh_platform(spec):
    """Rewind the global pid counter so runs allocate identical pids."""
    flit_mod._packet_ids = itertools.count()
    return build_platform(spec.to_platform_config())


def run_cycles(platform, cycles, kernel):
    step = platform.step if kernel == "step" else platform.step_reference
    for _ in range(cycles):
        step()


def round_trip(checkpoint):
    """Force the checkpoint through its serialised byte form."""
    record = json.loads(json.dumps(checkpoint.to_dict()))
    return Checkpoint.from_dict(record)


def resume_state(spec, cut, horizon, kernel):
    """Final state dict of a run interrupted (and restored) at ``cut``.

    Returns ``(final_state, cut_state)`` — the latter so callers can
    assert the checkpoint actually captured the condition under test.
    """
    platform = fresh_platform(spec)
    run_cycles(platform, cut, kernel)
    checkpoint = round_trip(snapshot(platform, spec))
    restored, _engine = restore(checkpoint)
    assert restored.cycle == cut
    run_cycles(restored, horizon - cut, kernel)
    return snapshot(restored, spec).state, checkpoint.state


SATURATION = ScenarioSpec(load=0.9, packets=120, seed=7)
BURSTY = ScenarioSpec(
    traffic="burst", load=0.25, packets=80, seed=11
)


@pytest.mark.parametrize("kernel", ["step", "step_reference"])
@pytest.mark.parametrize("spec", [SATURATION, BURSTY], ids=["sat", "burst"])
def test_resume_parity_random_cuts(spec, kernel):
    horizon = 1600
    platform = fresh_platform(spec)
    run_cycles(platform, horizon, kernel)
    want = snapshot(platform, spec).state
    assert want["platform"]["packets_received"] > 0

    rng = random.Random(0xC0FFEE ^ hash((spec.traffic, kernel)) & 0xFFFF)
    cuts = sorted(rng.randrange(40, horizon) for _ in range(4))
    saw_parked = saw_in_flight = False
    for cut in cuts:
        got, at_cut = resume_state(spec, cut, horizon, kernel)
        assert got == want, f"resume diverged for cut={cut}"
        saw_in_flight = saw_in_flight or at_cut["network"][
            "in_flight_flits"
        ] > 0
        saw_parked = saw_parked or any(
            inp["parked"]
            for sw in at_cut["switches"]
            for inp in sw["inputs"]
        )
    # Non-vacuity: the cuts must have exercised live wire state, and
    # the saturation scenario must have hit a parked input mid-stall.
    assert saw_in_flight
    if spec is SATURATION:
        assert saw_parked


@pytest.mark.parametrize("kernel", ["step", "step_reference"])
def test_resume_parity_mid_fast_forward(kernel):
    """A cut inside a bursty run's quiet stretch restores the poll
    caches exactly — the resumed run fast-forwards the same gaps."""
    spec = BURSTY
    horizon = 2000
    platform = fresh_platform(spec)
    run_cycles(platform, horizon, kernel)
    want = snapshot(platform, spec).state

    # Find a cut where the platform is quiet but not finished: no
    # flits on the wire and the next generator poll is in the future.
    platform = fresh_platform(spec)
    cut = None
    for cycle in range(1, horizon):
        run_cycles(platform, 1, kernel)
        if (
            platform.network.in_flight_flits == 0
            and platform._next_gen_poll > cycle + 1
            and platform.packets_received < spec.packets
        ):
            cut = cycle
            break
    assert cut is not None, "bursty run never went quiet mid-flight"
    checkpoint = round_trip(snapshot(platform, spec))
    restored, _ = restore(checkpoint)
    assert restored._next_gen_poll == platform._next_gen_poll
    run_cycles(restored, horizon - cut, kernel)
    assert snapshot(restored, spec).state == want


def test_resume_parity_through_save_load(tmp_path):
    """The on-disk round trip (save → load_checkpoint → restore) is
    as lossless as the in-memory one, and the loaded spec matches."""
    spec = SATURATION
    horizon, cut = 1200, 500
    platform = fresh_platform(spec)
    run_cycles(platform, horizon, "step")
    want = snapshot(platform, spec).state

    platform = fresh_platform(spec)
    run_cycles(platform, cut, "step")
    path = str(tmp_path / "cut.json")
    snapshot(platform, spec).save(path)
    checkpoint = load_checkpoint(path, spec=spec)
    assert checkpoint.spec == spec
    assert checkpoint.cycle == cut
    restored, _ = restore(checkpoint)
    run_cycles(restored, horizon - cut, "step")
    assert snapshot(restored, spec).state == want


def test_engine_resume_windows_and_metrics():
    """Engine-driven resume: chunked runs with a live windowed
    collector produce the identical window series and final metrics
    as one uninterrupted engine run — including a cut landing in the
    middle of a window (the differencing base is serialised state,
    not something recomputable at the restore cycle)."""
    spec = ScenarioSpec(
        traffic="burst", load=0.35, packets=100, seed=3,
        telemetry_windows=400,
    )
    platform = fresh_platform(spec)
    engine = EmulationEngine(
        platform, telemetry=WindowedMetrics(platform, window_cycles=400)
    )
    baseline = engine.run()
    want_windows = [r.to_dict() for r in engine.telemetry.records]
    want = snapshot(platform, spec, engine).state
    assert len(want_windows) >= 2

    # Cut at a non-boundary cycle inside the second window.
    cut = 700
    platform = fresh_platform(spec)
    engine = EmulationEngine(
        platform, telemetry=WindowedMetrics(platform, window_cycles=400)
    )
    engine.run(max_cycles=cut, finalize=False)
    checkpoint = round_trip(snapshot(platform, spec, engine))
    restored, resumed = restore(checkpoint)
    result = resumed.run()
    assert snapshot(restored, spec, resumed).state == want
    assert [r.to_dict() for r in resumed.telemetry.records] == want_windows
    assert restored.packets_received == baseline.packets_received
    assert restored.cycle == want["cycle"]
    assert result.completed


@pytest.mark.parametrize("kernel", ["step", "step_reference"])
def test_trace_stream_concatenates_bit_identically(kernel):
    """Detaching the tracer at the cut and attaching a fresh one after
    restore yields JSONL whose concatenation is byte-identical to the
    uninterrupted stream — the per-cycle canonical flush order leaves
    no seam at the cut."""
    spec = ScenarioSpec(load=0.6, packets=60, seed=5)
    horizon, cut = 1200, 450

    whole = io.StringIO()
    platform = fresh_platform(spec)
    tracer = FlitTracer(stream=whole, keep=False)
    platform.network.attach_tracer(tracer)
    run_cycles(platform, horizon, kernel)
    tracer.close()
    assert whole.getvalue(), "trace stream stayed empty"

    first = io.StringIO()
    platform = fresh_platform(spec)
    tracer = FlitTracer(stream=first, keep=False)
    platform.network.attach_tracer(tracer)
    run_cycles(platform, cut, kernel)
    platform.network.detach_tracer()
    tracer.close()
    checkpoint = round_trip(snapshot(platform, spec))

    second = io.StringIO()
    restored, _ = restore(checkpoint)
    tracer = FlitTracer(stream=second, keep=False)
    restored.network.attach_tracer(tracer)
    run_cycles(restored, horizon - cut, kernel)
    tracer.close()

    assert first.getvalue() + second.getvalue() == whole.getvalue()


def test_snapshot_refuses_attached_tracer():
    spec = ScenarioSpec(load=0.5, packets=20, seed=1)
    platform = fresh_platform(spec)
    platform.network.attach_tracer(FlitTracer(keep=True))
    from repro.checkpoint import CheckpointError

    with pytest.raises(CheckpointError, match="tracer"):
        snapshot(platform, spec)
