"""Checkpointing a faulted run: the injector state survives the cut.

The nastiest resume cases are the ones where the platform no longer
matches its pristine build: a checkpoint taken between ``link_down``
and ``link_up`` must restore the repaired route tables, the detached
credit hooks and the pending-heal cursor; one taken inside a flaky
window must restore the drop RNG mid-stream so every later drop
decision falls on exactly the same flit.  The comparison is again the
full snapshot state dict — with ``repair_wall_seconds`` zeroed on
both sides, the one field that measures host wall time rather than
emulated state.
"""

import itertools
import json

import pytest

import repro.noc.flit as flit_mod
from repro.checkpoint import Checkpoint, restore, snapshot
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.experiments.spec import ScenarioSpec
from repro.faults import FaultSchedule, flaky, link_down, link_up

pytestmark = pytest.mark.chaos


SCHEDULE = FaultSchedule(
    events=(
        link_down(400, 1, 4),
        link_up(1400, 1, 4),
        flaky(1600, 2, 5, until=2200, drop_p=0.35, seed=9),
    )
)
SPEC = ScenarioSpec(load=0.7, packets=300, seed=2, faults=SCHEDULE)
HORIZON = 2600


def fresh_run():
    flit_mod._packet_ids = itertools.count()
    platform = build_platform(SPEC.to_platform_config())
    engine = EmulationEngine(platform, faults=SPEC.faults)
    return platform, engine


def comparable(state):
    """The snapshot state with the wall-clock-only field zeroed."""
    state = json.loads(json.dumps(state))
    if state.get("faults"):
        report = state["faults"]["injector"]["report"]
        report["repair_wall_seconds"] = 0.0
        for event in report["events"]:
            if "repair_wall_seconds" in event:
                event["repair_wall_seconds"] = 0.0
    return state


def faulted_resume(cut):
    """(uninterrupted_state, resumed_state, cut_checkpoint)."""
    platform, engine = fresh_run()
    engine.run(max_cycles=HORIZON, finalize=False)
    want = comparable(snapshot(platform, SPEC, engine).state)

    platform, engine = fresh_run()
    engine.run(max_cycles=cut, finalize=False)
    record = json.loads(json.dumps(snapshot(platform, SPEC, engine).to_dict()))
    checkpoint = Checkpoint.from_dict(record)
    restored, resumed = restore(checkpoint)
    assert restored.cycle == cut
    resumed.run(max_cycles=HORIZON - cut, finalize=False)
    return want, comparable(snapshot(restored, SPEC, resumed).state), checkpoint


def test_cut_between_link_down_and_link_up():
    """cycle 800: the 1-3 links are dead, traffic runs on repaired
    tables, and the heal event is still pending in the injector."""
    want, got, checkpoint = faulted_resume(800)
    injector = checkpoint.state["faults"]["injector"]
    assert injector["dead_pairs"], "cut did not land on a dead link"
    assert injector["saved_credit_keys"], "no detached credit hooks"
    assert any(
        rec.get("repaired") for rec in injector["report"]["events"]
    ), "routing repair did not happen before the cut"
    assert got == want


def test_cut_inside_flaky_window_preserves_drop_decisions():
    """cycle 1900: mid-flaky-window.  The per-event drop RNG cursor is
    part of the state, so the resumed run drops the same flits and the
    per-link ``flits_dropped`` counters match exactly."""
    want, got, checkpoint = faulted_resume(1900)
    assert checkpoint.state["faults"]["injector"]["flaky"], (
        "cut did not land inside the flaky window"
    )
    assert got == want
    dropped = sum(link["flits_dropped"] for link in want["links"])
    assert dropped > 0, "flaky window never dropped a flit"
    assert [link["flits_dropped"] for link in got["links"]] == [
        link["flits_dropped"] for link in want["links"]
    ]


def test_faulted_resume_matches_final_report():
    """Running both runs to completion (finalize on) yields identical
    fault reports — recovery cycles, per-event drop counts, repaired
    flags — modulo the wall-clock repair timer."""
    def clean(report):
        report = json.loads(json.dumps(report.to_dict()))
        report["repair_wall_seconds"] = 0.0
        for event in report["events"]:
            if "repair_wall_seconds" in event:
                event["repair_wall_seconds"] = 0.0
        return report

    platform, engine = fresh_run()
    baseline = engine.run()
    want = clean(baseline.faults)

    platform, engine = fresh_run()
    engine.run(max_cycles=800, finalize=False)
    record = json.loads(json.dumps(snapshot(platform, SPEC, engine).to_dict()))
    restored, resumed = restore(Checkpoint.from_dict(record))
    result = resumed.run()
    assert clean(result.faults) == want
    assert result.completed
    assert restored.packets_received == baseline.packets_received


def test_healthy_platform_snapshot_needs_no_engine():
    """A faulted spec at cycle 0 snapshots engine-less (nothing has
    mutated yet); after stepping it must demand the engine."""
    from repro.checkpoint import CheckpointError

    flit_mod._packet_ids = itertools.count()
    platform = build_platform(SPEC.to_platform_config())
    snapshot(platform, SPEC)  # cycle 0: fine
    engine = EmulationEngine(platform, faults=SPEC.faults)
    engine.run(max_cycles=500, finalize=False)
    with pytest.raises(CheckpointError, match="injector"):
        snapshot(platform, SPEC)
