"""Unit tests for the event-driven simulation kernel."""

import pytest

from repro.baselines.eventsim import (
    EventSimulator,
    SimulationError,
    Signal,
)


class TestSignals:
    def test_nonblocking_assignment(self):
        sim = EventSimulator()
        s = sim.signal("s", 0)
        sim.touch(s, 5)
        assert s.value == 0  # not yet committed
        sim.settle()
        assert s.value == 5

    def test_no_event_on_same_value(self):
        sim = EventSimulator()
        s = sim.signal("s", 3)
        sim.touch(s, 3)
        sim.settle()
        assert s.events == 0

    def test_event_counter(self):
        sim = EventSimulator()
        s = sim.signal("s", 0)
        for v in (1, 2, 3):
            sim.touch(s, v)
            sim.settle()
        assert s.events == 3
        assert sim.total_events == 3


class TestProcesses:
    def test_sensitivity_wakes_process(self):
        sim = EventSimulator()
        a = sim.signal("a", 0)
        b = sim.signal("b", 0)
        sim.process("follow", lambda: sim.post(b, a.value), [a])
        sim.touch(a, 7)
        sim.settle()
        assert b.value == 7

    def test_process_not_woken_by_unrelated_signal(self):
        sim = EventSimulator()
        a = sim.signal("a", 0)
        c = sim.signal("c", 0)
        proc = sim.process("p", lambda: None, [a])
        sim.touch(c, 1)
        sim.settle()
        assert proc.runs == 0

    def test_delta_cycle_chain(self):
        sim = EventSimulator()
        a = sim.signal("a", 0)
        b = sim.signal("b", 0)
        c = sim.signal("c", 0)
        sim.process("ab", lambda: sim.post(b, a.value + 1), [a])
        sim.process("bc", lambda: sim.post(c, b.value + 1), [b])
        sim.touch(a, 10)
        deltas = sim.settle()
        assert c.value == 12
        assert deltas >= 3  # a, then b, then c

    def test_combinational_loop_detected(self):
        # A combinational inverter feeding itself never settles.
        sim = EventSimulator()
        a = sim.signal("a", 0)
        sim.process("osc", lambda: sim.post(a, 1 - a.value), [a])
        sim.touch(a, 1)
        with pytest.raises(SimulationError, match="settle"):
            sim.settle()

    def test_process_woken_once_per_delta(self):
        sim = EventSimulator()
        a = sim.signal("a", 0)
        b = sim.signal("b", 0)
        runs = []
        proc = sim.process("p", lambda: runs.append(1), [a, b])
        sim.drive({a: 1, b: 1})
        assert len(runs) == 1


class TestClocking:
    def test_tick_advances_time(self):
        sim = EventSimulator()
        clk = sim.signal("clk", 0)
        sim.tick(clk)
        assert sim.time == 1
        assert clk.value == 0  # back low after the falling edge

    def test_clocked_register(self):
        sim = EventSimulator()
        clk = sim.signal("clk", 0)
        d = sim.signal("d", 0)
        q = sim.signal("q", 0)

        def ff():
            if clk.value:  # rising edge only
                sim.post(q, d.value)

        sim.process("ff", ff, [clk])
        sim.drive({d: 9})
        sim.tick(clk)
        assert q.value == 9
        # d changes mid-cycle do not leak into q until the next edge.
        sim.drive({d: 4})
        assert q.value == 9
        sim.tick(clk)
        assert q.value == 4

    def test_run_cycles(self):
        sim = EventSimulator()
        clk = sim.signal("clk", 0)
        count = sim.signal("count", 0)
        sim.process(
            "counter",
            lambda: clk.value and sim.post(count, count.value + 1),
            [clk],
        )
        sim.run_cycles(clk, 10)
        assert count.value == 10
