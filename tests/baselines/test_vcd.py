"""Unit tests for the VCD waveform export."""

import io

import pytest

from repro.baselines.eventsim import EventSimulator
from repro.baselines.rtl import RtlPlatformSim
from repro.baselines.speed import build_packet_schedule
from repro.baselines.vcd import VcdTracer, _encode, _identifier
from repro.noc.routing import paper_routing
from repro.noc.topology import paper_topology


class TestEncoding:
    def test_identifiers_unique_and_printable(self):
        ids = [_identifier(i) for i in range(500)]
        assert len(set(ids)) == 500
        for ident in ids:
            assert all(33 <= ord(c) <= 126 for c in ident)

    def test_integer_encoding(self):
        assert _encode(5, 4) == "b0101"
        assert _encode(0, 3) == "b000"
        assert _encode(True, 2) == "b01"

    def test_none_encodes_as_unknown(self):
        assert _encode(None, 4) == "bxxxx"

    def test_object_encoding_is_stable(self):
        a = _encode("flit-ish", 16)
        b = _encode("flit-ish", 16)
        assert a == b
        assert a.startswith("b")
        assert len(a) == 17

    def test_width_validation(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            VcdTracer(sim, width=0)


class TestCapture:
    def make_counter(self):
        sim = EventSimulator()
        clk = sim.signal("clk", 0)
        count = sim.signal("count", 0)
        sim.process(
            "counter",
            lambda: clk.value and sim.post(count, count.value + 1),
            [clk],
        )
        return sim, clk, count

    def test_changes_recorded_per_cycle(self):
        sim, clk, count = self.make_counter()
        tracer = VcdTracer(sim, signals=[count])
        tracer.run_cycles(clk, 5)
        assert len(tracer.changes) == 5
        assert [value for _, _, value in tracer.changes] == [
            1, 2, 3, 4, 5,
        ]

    def test_unchanged_signals_not_recorded(self):
        sim, clk, count = self.make_counter()
        idle = sim.signal("idle", 7)
        tracer = VcdTracer(sim, signals=[count, idle])
        tracer.run_cycles(clk, 3)
        assert all(
            tracer.signals[index] is count
            for _, index, _ in tracer.changes
        )

    def test_sample_returns_change_count(self):
        sim, clk, count = self.make_counter()
        tracer = VcdTracer(sim, signals=[count])
        sim.tick(clk)
        assert tracer.sample() == 1
        assert tracer.sample() == 0  # nothing new


class TestSerialisation:
    def test_header_and_dump_structure(self):
        sim = EventSimulator()
        clk = sim.signal("clk", 0)
        count = sim.signal("count", 0)
        sim.process(
            "c",
            lambda: clk.value and sim.post(count, count.value + 1),
            [clk],
        )
        tracer = VcdTracer(sim, signals=[count], width=8)
        tracer.run_cycles(clk, 3)
        out = io.StringIO()
        tracer.write(out)
        text = out.getvalue()
        assert "$timescale 1 ns $end" in text
        assert "$var wire 8" in text
        assert "count" in text
        assert "$dumpvars" in text
        assert "#1" in text and "#3" in text
        assert "b00000011" in text  # count reached 3

    def test_write_to_disk(self, tmp_path):
        sim = EventSimulator()
        sig = sim.signal("s", 0)
        tracer = VcdTracer(sim, signals=[sig])
        sim.touch(sig, 1)
        sim.settle()
        sim.time = 1
        tracer.sample()
        path = str(tmp_path / "wave.vcd")
        tracer.write(path)
        with open(path) as fh:
            assert "$enddefinitions" in fh.read()

    def test_rtl_platform_waveform_end_to_end(self, tmp_path):
        """Dump real waveforms from the RTL engine and sanity-check."""
        topo = paper_topology()
        routing = paper_routing(topo, "overlap")
        sim = RtlPlatformSim(
            topo, routing, build_packet_schedule(packets_per_flow=3)
        )
        # Trace the control-path signals of switch 1 (the hot switch).
        sw = sim.switches[1]
        tracer = VcdTracer(
            sim.sim, signals=sw.count + sw.grant + sw.out_valid
        )
        tracer.run_cycles(sim.clock, 120)
        assert tracer.changes  # traffic moved through switch 1
        path = str(tmp_path / "sw1.vcd")
        tracer.write(path)
        with open(path) as fh:
            content = fh.read()
        assert "sw1.in0.count" in content
        assert content.count("#") > 10  # many timestamped changes
