"""Functional tests of the RTL and TLM baseline engines.

These engines exist for the speed comparison, but they must simulate
the *same* network correctly: all injected traffic reaches the right
receptor, flits are conserved, and packet latency behaves sensibly.
"""

import pytest

from repro.baselines.rtl import RtlPlatformSim, RtlSwitch
from repro.baselines.speed import build_packet_schedule
from repro.baselines.tlm import TlmFifo, TlmKernel, TlmPlatformSim
from repro.noc.flit import Packet
from repro.noc.routing import TableRouting, paper_routing
from repro.noc.topology import paper_flow_pairs, paper_topology


def paper_setup():
    topo = paper_topology()
    routing = paper_routing(topo, "overlap")
    assert isinstance(routing, TableRouting)
    return topo, routing


class TestTlmFifo:
    def test_request_update_semantics(self):
        fifo = TlmFifo(2)
        flit = Packet(src=0, dst=1, length=1).flit_list()[0]
        assert fifo.nb_write(flit)
        assert fifo.num_available() == 0  # not visible yet
        fifo.update()
        assert fifo.num_available() == 1
        assert fifo.nb_read() is flit
        assert fifo.num_available() == 0  # read requested
        fifo.update()
        assert len(fifo) == 0

    def test_capacity_respected_within_cycle(self):
        fifo = TlmFifo(1)
        f1 = Packet(src=0, dst=1, length=1).flit_list()[0]
        f2 = Packet(src=0, dst=1, length=1).flit_list()[0]
        assert fifo.nb_write(f1)
        assert not fifo.nb_write(f2)  # full this cycle
        fifo.update()
        assert not fifo.nb_write(f2)  # still full
        fifo.nb_read()
        fifo.update()
        assert fifo.nb_write(f2)

    def test_validation(self):
        with pytest.raises(ValueError):
            TlmFifo(0)


class TestTlmPlatform:
    def test_delivers_all_packets(self):
        topo, routing = paper_setup()
        schedule = build_packet_schedule(packets_per_flow=50)
        sim = TlmPlatformSim(topo, routing, schedule)
        sim.run_until_drained()
        assert sim.packets_received == 200
        assert sim.flits_received == 200 * 8

    def test_each_collector_gets_its_flow(self):
        topo, routing = paper_setup()
        schedule = build_packet_schedule(packets_per_flow=10)
        sim = TlmPlatformSim(topo, routing, schedule)
        sim.run_until_drained()
        received = {c.node: c.packets_received for c in sim.collectors}
        for _, dst in paper_flow_pairs():
            assert received[dst] == 10

    def test_drained_state(self):
        topo, routing = paper_setup()
        sim = TlmPlatformSim(
            topo, routing, build_packet_schedule(packets_per_flow=5)
        )
        assert not sim.is_drained  # injectors hold packets
        sim.run_until_drained()
        assert sim.is_drained

    def test_kernel_counts_activations(self):
        topo, routing = paper_setup()
        sim = TlmPlatformSim(
            topo, routing, build_packet_schedule(packets_per_flow=5)
        )
        sim.run(10)
        assert sim.kernel.process_activations > 0
        assert sim.cycle == 10


class TestRtlSwitchUnit:
    def test_depth_validation(self):
        from repro.baselines.eventsim import EventSimulator

        sim = EventSimulator()
        clk = sim.signal("clk", 0)
        with pytest.raises(ValueError, match="depth"):
            RtlSwitch(sim, 0, 2, 2, 4, {}, clk)

    def test_single_flit_crosses_switch(self):
        from repro.baselines.eventsim import EventSimulator

        sim = EventSimulator()
        clk = sim.signal("clk", 0)
        sw = RtlSwitch(sim, 0, 1, 1, 8, {1: 0}, clk)
        flit = Packet(src=0, dst=1, length=1).flit_list()[0]
        # Drive the input port like a link would.
        sim.drive({sw.in_valid[0]: 1, sw.in_data[0]: flit})
        sim.tick(clk)  # flit written into the FIFO
        sim.drive({sw.in_valid[0]: 0})
        sim.tick(clk)  # flit arbitrated and forwarded
        assert sw.out_valid[0].value == 1
        assert sw.out_data[0].value is flit
        assert sw.flits_forwarded == 1


class TestRtlPlatform:
    def test_delivers_all_packets(self):
        topo, routing = paper_setup()
        schedule = build_packet_schedule(packets_per_flow=15)
        sim = RtlPlatformSim(topo, routing, schedule)
        sim.run_until_drained()
        assert sim.packets_received == 60
        assert sim.flits_received == 60 * 8

    def test_each_collector_gets_its_flow(self):
        topo, routing = paper_setup()
        schedule = build_packet_schedule(packets_per_flow=5)
        sim = RtlPlatformSim(topo, routing, schedule)
        sim.run_until_drained()
        received = {c.node: c.packets_received for c in sim.collectors}
        for _, dst in paper_flow_pairs():
            assert received[dst] == 5

    def test_event_activity_is_rtl_scale(self):
        # The whole point of the RTL baseline: far more kernel events
        # per cycle than the TLM engine has transactions.
        topo, routing = paper_setup()
        schedule = build_packet_schedule(packets_per_flow=5)
        sim = RtlPlatformSim(topo, routing, schedule)
        cycles = sim.run_until_drained()
        events_per_cycle = sim.sim.total_events / cycles
        assert events_per_cycle > 20


class TestEngineAgreement:
    def test_rtl_and_tlm_agree_on_delivery(self):
        topo, routing = paper_setup()
        schedule = build_packet_schedule(packets_per_flow=8)
        rtl = RtlPlatformSim(topo, routing, schedule)
        tlm = TlmPlatformSim(topo, routing,
                             build_packet_schedule(packets_per_flow=8))
        rtl.run_until_drained()
        tlm.run_until_drained()
        assert rtl.packets_received == tlm.packets_received
        assert rtl.flits_received == tlm.flits_received

    def test_baselines_agree_with_reference_network(self):
        from repro.noc.network import Network

        topo, routing = paper_setup()
        schedule = build_packet_schedule(packets_per_flow=8)
        net = Network(topo, routing)
        for packets in schedule.values():
            for p in packets:
                # Fresh copies: the reference network mutates flits.
                net.offer(Packet(src=p.src, dst=p.dst, length=p.length,
                                 injection_cycle=p.injection_cycle))
        # Feed respecting injection cycles is handled by NI queueing:
        # all packets were offered up front, which only tightens load.
        net.drain()
        reference = sum(rx.received_packets for rx in net.rx)
        tlm = TlmPlatformSim(topo, routing,
                             build_packet_schedule(packets_per_flow=8))
        tlm.run_until_drained()
        assert tlm.packets_received == reference
