"""Unit tests for the speed-measurement harness itself."""

import pytest

from repro.baselines.speed import (
    EngineMeasurement,
    MODELLED_EMULATION_SPEED,
    build_packet_schedule,
    speed_report,
)
from repro.noc.topology import paper_flow_pairs


class TestSchedule:
    def test_covers_all_paper_flows(self):
        schedule = build_packet_schedule(packets_per_flow=5)
        assert set(schedule) == {src for src, _ in paper_flow_pairs()}
        for src, dst in paper_flow_pairs():
            packets = schedule[src]
            assert len(packets) == 5
            assert all(p.dst == dst for p in packets)

    def test_interval_spacing(self):
        schedule = build_packet_schedule(
            packets_per_flow=4, interval=18
        )
        times = [p.injection_cycle for p in schedule[0]]
        assert times == [0, 18, 36, 54]

    def test_default_is_the_45_percent_point(self):
        schedule = build_packet_schedule(packets_per_flow=2)
        p = schedule[0][0]
        assert p.length / 18 == pytest.approx(0.444, abs=0.01)


class TestMeasurement:
    def test_cycles_per_sec(self):
        m = EngineMeasurement("x", cycles=1000, wall_seconds=0.5,
                              packets_received=10)
        assert m.cycles_per_sec == pytest.approx(2000.0)

    def test_zero_wall_guard(self):
        m = EngineMeasurement("x", cycles=10, wall_seconds=0.0,
                              packets_received=1)
        assert m.cycles_per_sec == float("inf")


class TestSpeedReportBuilder:
    def fake_measurements(self):
        return [
            EngineMeasurement("fast", 10_000, 1.0, 1000),
            EngineMeasurement("slow", 1_000, 1.0, 100),
        ]

    def test_report_from_measurements(self):
        report = speed_report(self.fake_measurements())
        names = [name for name, _, _ in report.modes]
        assert "Our Emulation" in names  # paper rows included
        assert "fast" in names and "slow" in names
        assert report.cycles_per_packet == pytest.approx(10.0)

    def test_paper_rows_optional(self):
        report = speed_report(
            self.fake_measurements(), include_paper_rows=False
        )
        names = [name for name, _, _ in report.modes]
        assert "Our Emulation" not in names
        assert "Modelled emulation @50MHz" in names

    def test_explicit_calibration(self):
        report = speed_report(
            self.fake_measurements(), cycles_per_packet=42.0
        )
        assert report.cycles_per_packet == 42.0

    def test_uncalibratable_rejected(self):
        broken = [EngineMeasurement("x", 10, 1.0, 0)]
        with pytest.raises(ValueError, match="calibrate"):
            speed_report(broken)

    def test_modelled_speed_is_50mhz(self):
        assert MODELLED_EMULATION_SPEED == 50e6
