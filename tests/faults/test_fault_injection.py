"""Engine-level fault injection: completion, degradation, reporting."""

import pytest

from repro.core.config import PlatformConfig, TGSpec, TRSpec
from repro.core.engine import DegradedResult, EmulationEngine
from repro.core.errors import EmulationError, UnroutableError
from repro.core.platform import build_platform
from repro.experiments.spec import ScenarioSpec
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    link_down,
    link_up,
    switch_down,
)
from repro.noc.topology import mesh
from repro.stats.summary import scenario_metrics


def paper_platform(packets=60, **spec_kwargs):
    spec = ScenarioSpec(topology="paper", packets=packets, **spec_kwargs)
    return build_platform(spec.to_platform_config())


class TestLinkDown:
    def test_mid_run_failure_completes_via_reroute(self):
        platform = paper_platform()
        schedule = FaultSchedule.of(link_down(300, 1, 4), link_down(300, 4, 1))
        result = EmulationEngine(platform, faults=schedule).run()
        assert result.completed
        assert not isinstance(result, DegradedResult)
        report = result.faults
        assert report is not None and not report.degraded
        assert [e.kind for e in report.events] == ["link_down"] * 2
        assert all(e.repaired for e in report.events)
        # Recovery observed: traffic flowed again after the fault.
        assert any(e.recovery_cycles is not None for e in report.events)
        # The drain left nothing parked anywhere.
        assert platform.network.is_drained
        assert not platform.network.parked_report()

    def test_dead_link_carries_nothing_after_the_fault(self):
        platform = paper_platform()
        schedule = FaultSchedule.of(link_down(300, 1, 4))
        injector = FaultInjector(schedule, platform)
        injector.begin(0)
        link = platform.network.link_between(1, 4)
        carried_at_fault = None
        for _ in range(4000):
            now = platform.network.cycle
            injector.tick(now)
            if carried_at_fault is None and now >= 300:
                assert link.down
                carried_at_fault = link.flits_carried
            platform.step()
        assert carried_at_fault is not None and carried_at_fault > 0
        assert link.flits_carried == carried_at_fault
        assert link.wire_count == 0
        assert link.flits_dropped > 0 or link.wire_count == 0

    def test_no_parked_input_awaits_a_dead_link(self):
        """Acceptance: every parked input whose wake event was
        invalidated by the fault is settled and re-armed — after the
        repair cycle no input sleeps on a down output."""
        platform = paper_platform()
        schedule = FaultSchedule.of(link_down(300, 1, 4), link_down(300, 4, 1))
        injector = FaultInjector(schedule, platform)
        injector.begin(0)
        for _ in range(4000):
            now = platform.network.cycle
            injector.tick(now)
            platform.step()
            if now < 300:
                continue
            for sw in platform.network.switches:
                for i, parked in enumerate(sw._in_parked):
                    if not parked:
                        continue
                    out = sw._input_out[i]
                    if out is not None and out.link is not None:
                        assert not out.link.down

    def test_heal_restores_the_link(self):
        """Down/up on the only route of a two-switch fabric, with
        repair disabled: resumption relies purely on the credit
        restore of ``link_up`` (saved ``_input_credit`` entry,
        re-baselined upstream credits, waiter wake)."""
        config = PlatformConfig(
            topology=mesh(2, 1),
            routing="shortest",
            tgs=[
                TGSpec(
                    node=0,
                    model="uniform",
                    params={"length": 4, "dst": 1, "load": 0.3},
                    max_packets=120,
                    seed=3,
                )
            ],
            trs=[TRSpec(node=1)],
            check_deadlock=False,
        )
        platform = build_platform(config)
        schedule = FaultSchedule.of(
            link_down(200, 0, 1), link_up(1200, 0, 1), repair=False
        )
        result = EmulationEngine(platform, faults=schedule).run()
        assert result.completed
        assert not isinstance(result, DegradedResult)
        link = platform.network.link_between(0, 1)
        assert not link.down
        assert link.flits_dropped > 0  # the fault really cut traffic
        windows = result.faults.windows
        down = next(w for w in windows if w.label.startswith("after link_down"))
        after = windows[windows.index(down) + 1]
        # Nothing moved while the only route was dead; healing it
        # restored full delivery.
        assert down.packets_received <= 1
        assert after.packets_received > 0
        assert result.packets_received == 120 - result.faults.dropped_packets

    def test_per_window_throughput_reported(self):
        platform = paper_platform()
        schedule = FaultSchedule.of(link_down(300, 1, 4))
        result = EmulationEngine(platform, faults=schedule).run()
        report = result.faults
        assert [w.label for w in report.windows][0] == "pre-fault"
        assert report.windows[0].start == 0
        assert report.windows[0].end == 300
        # Windows tile the run without gaps.
        for prev, cur in zip(report.windows, report.windows[1:]):
            assert cur.start == prev.end
        assert report.windows[-1].end == result.cycles
        assert sum(w.packets_received for w in report.windows) == (
            result.packets_received
        )


class TestSwitchDown:
    def test_nodeless_switch_death_completes(self):
        # Paper switches 1 and 4 host no nodes: killing one reroutes
        # every flow without orphaning any endpoint.
        platform = paper_platform()
        schedule = FaultSchedule.of(switch_down(400, 1))
        result = EmulationEngine(platform, faults=schedule).run()
        assert result.completed
        report = result.faults
        assert report.events[0].kind == "switch_down"
        assert report.events[0].repaired
        network = platform.network
        for (a, b), links in network.switch_links.items():
            if a == 1 or b == 1:
                assert all(link.down for link in links)

    def test_corner_switch_death_orphans_its_receptor(self):
        # Switch 0 hosts nodes 0 (TG) and 4 (TR): flows into node 4
        # survive as senders but lose every route — a partition.
        platform = paper_platform()
        schedule = FaultSchedule.of(switch_down(400, 0))
        with pytest.raises(UnroutableError) as excinfo:
            EmulationEngine(platform, faults=schedule).run()
        assert excinfo.value.flows
        assert all(dst == 4 for _src, dst in excinfo.value.flows)
        assert "partitions the fabric" in str(excinfo.value)


class TestPartitionRegression:
    def two_node_config(self):
        return PlatformConfig(
            topology=mesh(2, 1),
            routing="shortest",
            tgs=[
                TGSpec(
                    node=0,
                    model="uniform",
                    params={"length": 4, "dst": 1, "load": 0.2},
                    max_packets=200,
                    seed=3,
                )
            ],
            trs=[TRSpec(node=1)],
            check_deadlock=False,
        )

    def test_cutting_the_only_route_raises_unroutable(self):
        """Regression: a partitioning fault must not stagnate into the
        generic deadlock guard — it names the orphaned flows."""
        platform = build_platform(self.two_node_config())
        schedule = FaultSchedule.of(link_down(200, 0, 1))
        with pytest.raises(UnroutableError) as excinfo:
            EmulationEngine(platform, faults=schedule).run()
        assert excinfo.value.flows == ((0, 1),)

    def test_without_structured_check_it_would_stagnate(self):
        """The pre-fix behaviour (repair disabled approximates it):
        the flow parks forever and only the watchdog notices."""
        platform = build_platform(self.two_node_config())
        schedule = FaultSchedule.of(link_down(200, 0, 1), repair=False)
        result = EmulationEngine(platform, faults=schedule).run(
            stagnation_cycles=2000
        )
        assert isinstance(result, DegradedResult)


class TestDegradation:
    def test_unrepaired_fault_degrades_instead_of_raising(self):
        platform = paper_platform()
        schedule = FaultSchedule.of(
            link_down(300, 1, 4), link_down(300, 4, 1), repair=False
        )
        result = EmulationEngine(platform, faults=schedule).run(
            stagnation_cycles=3000
        )
        assert isinstance(result, DegradedResult)
        assert not result.completed
        assert "after fault injection" in result.degraded_reason
        assert result.parked  # the stuck inputs are enumerated
        for entry in result.parked:
            assert entry["kind"] in ("switch_input", "ni")
            assert "reason" in entry and "since" in entry
        report = result.faults
        assert report.degraded
        assert report.degraded_reason == result.degraded_reason

    def test_healthy_stagnation_still_raises_with_parked_detail(self):
        """The deadlock guard's error now enumerates parked inputs and
        their awaited wake events."""
        platform = paper_platform()
        # Kill the hot links outside any engine-managed schedule: the
        # engine sees a healthy run that stops making progress.
        schedule = FaultSchedule.of(
            link_down(0, 1, 4), link_down(0, 4, 1), repair=False
        )
        injector = FaultInjector(schedule, platform)
        injector.begin(0)
        injector.tick(0)
        with pytest.raises(EmulationError) as excinfo:
            EmulationEngine(platform).run(stagnation_cycles=2000)
        message = str(excinfo.value)
        assert "failed to drain" in message
        assert "parked" in message
        assert "awaits" in message

    def test_degraded_run_keeps_counters_consistent(self):
        platform = paper_platform()
        schedule = FaultSchedule.of(link_down(300, 1, 4), repair=False)
        EmulationEngine(platform, faults=schedule).run(
            stagnation_cycles=2000
        )
        network = platform.network
        assert network.in_flight_flits == network.scan_in_flight_flits()


class TestMetrics:
    def test_fault_metrics_present_only_when_faulted(self):
        healthy = paper_platform(packets=30)
        result = EmulationEngine(healthy).run()
        metrics = scenario_metrics(healthy, result)
        assert "fault_dropped_flits" not in metrics

        faulted = paper_platform(packets=30)
        schedule = FaultSchedule.of(link_down(300, 1, 4))
        result = EmulationEngine(faulted, faults=schedule).run()
        metrics = scenario_metrics(faulted, result)
        assert metrics["fault_dropped_flits"] == result.faults.dropped_flits
        assert metrics["fault_reroutes"] == len(result.faults.reroutes)
        assert metrics["fault_degraded"] is False
        # Wall-clock repair latency stays out of the record.
        assert not any("wall" in k for k in metrics)

    def test_drop_accounting_balances(self):
        platform = paper_platform()
        schedule = FaultSchedule.of(link_down(300, 1, 4), link_down(300, 4, 1))
        result = EmulationEngine(platform, faults=schedule).run()
        report = result.faults
        assert report.dropped_flits == sum(
            e.dropped_flits for e in report.events
        )
        assert report.dropped_packets == sum(
            e.dropped_packets for e in report.events
        )
        # Wire drops are a subset of all drops (buffers/queues drop too).
        assert sum(report.per_link_drops.values()) <= report.dropped_flits
        assert sum(
            link.flits_dropped for link in platform.network.links
        ) == sum(report.per_link_drops.values())


class TestCli:
    def test_run_with_fail_link_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--packets",
                "30",
                "--fail-link",
                "1:4@300",
                "--fail-link",
                "4:1@300",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "--- faults ---" in out
        assert "link_down" in out

    def test_bad_fault_flag_is_a_usage_error(self, capsys):
        from repro.cli import main

        code = main(["run", "--packets", "10", "--fail-link", "oops"])
        assert code == 2
        assert "expected SWITCH:SWITCH@CYCLE" in capsys.readouterr().err
