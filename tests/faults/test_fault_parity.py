"""Kernel parity under fault injection.

Every fault mutation goes through shared component code, so the
event-driven kernel (`Network.step`) and the scan-everything oracle
(`step_reference`) must stay bit-identical through link death, link
revival, flaky windows and switch death — including the abort
settlements, credit refunds and route-cache invalidation each implies.
The harness ticks one injector per platform in lockstep with the
stepping loop, exactly as the engine does (tick at the top of the
cycle, before the credit phase).
"""

import itertools

import pytest

import repro.noc.flit as flit_mod
from repro.core.platform import build_platform
from repro.experiments.spec import ScenarioSpec
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    flaky,
    link_down,
    link_up,
    switch_down,
)
from repro.receptors.tracedriven import TraceDrivenReceptor

pytestmark = pytest.mark.chaos


def fresh_platform(make_config):
    """Rewind the global packet-id counter so both runs allocate
    identical pid sequences (pids feed the flaky drop RNG)."""
    flit_mod._packet_ids = itertools.count()
    return build_platform(make_config())


def snapshot(platform):
    """Every observable statistic, including the fault counters."""
    net = platform.network
    snap = {
        "cycle": net.cycle,
        "packets_sent": platform.packets_sent,
        "packets_received": platform.packets_received,
        "in_flight": net.in_flight_flits,
        "mean_latency": platform.mean_latency(),
        "max_latency": platform.max_latency(),
        "congestion_rate": platform.congestion_rate(),
        "blocked": net.total_blocked_flit_cycles,
        "link_loads": net.link_loads(),
        "switches": [
            (
                sw.flits_forwarded,
                sw.blocked_flit_cycles,
                sw.credit_stall_cycles,
                sw.buffered_flits,
            )
            for sw in net.switches
        ],
        "links": [
            (
                link.flits_carried,
                link.busy_cycles,
                link.occupancy,
                link.flits_dropped,
                link.down,
            )
            for link in net.links
        ],
        "nis": [
            (
                ni.offered_packets,
                ni.injected_flits,
                ni.injected_packets,
                ni.stall_cycles,
                ni.pending_flits,
            )
            for ni in net.nis
        ],
        "rx": [
            (
                rx.received_flits,
                rx.received_packets,
                rx.partial_packets,
                rx.aborted_packets,
            )
            for rx in net.rx
        ],
        "receptors": [
            (r.packets_received, r.flits_received, r.first_cycle, r.last_cycle)
            for r in platform.receptors
        ],
        "generators": [
            (g.packets_sent, g.flits_sent, g.backpressure_cycles)
            for g in platform.generators
        ],
    }
    for receptor in platform.receptors:
        if isinstance(receptor, TraceDrivenReceptor):
            lat = receptor.latency
            snap[f"latency{receptor.node}"] = (
                lat.count,
                lat.total_latency,
                lat.min_latency,
                lat.max_latency,
            )
            snap[f"hist{receptor.node}"] = tuple(lat.histogram.counts)
    return snap


def fault_snapshot(injector):
    """The deterministic face of the injector's report."""
    report = injector.report
    return {
        "dropped_flits": report.dropped_flits,
        "dropped_packets": report.dropped_packets,
        "per_link": dict(report.per_link_drops),
        "events": [
            (e.cycle, e.kind, e.dropped_flits, e.dropped_packets,
             e.repaired, e.recovery_cycles)
            for e in report.events
        ],
    }


def cosimulate(make_config, schedule, cycles):
    """Run both kernels under the same schedule; return snapshot pairs."""
    snaps = []
    for reference in (False, True):
        platform = fresh_platform(make_config)
        injector = FaultInjector(schedule, platform)
        injector.begin(platform.cycle)
        step = platform.step_reference if reference else platform.step
        for _ in range(cycles):
            injector.tick(platform.network.cycle)
            step()
        net = platform.network
        assert net.in_flight_flits == net.scan_in_flight_flits()
        snaps.append((snapshot(platform), fault_snapshot(injector)))
    return snaps


def paper_config(**kwargs):
    spec = ScenarioSpec(topology="paper", packets=200, **kwargs)
    return spec.to_platform_config


SCHEDULES = {
    "link_down": FaultSchedule.of(
        link_down(600, 1, 4), link_down(600, 4, 1)
    ),
    "link_up": FaultSchedule.of(
        link_down(600, 1, 4),
        link_down(600, 4, 1),
        link_up(1500, 1, 4),
        link_up(1500, 4, 1),
    ),
    "flaky": FaultSchedule.of(
        flaky(400, 1, 4, until=1400, drop_p=0.25, seed=11),
        flaky(400, 4, 1, until=1400, drop_p=0.25, seed=12),
    ),
    "switch_down": FaultSchedule.of(switch_down(700, 1)),
    "no_repair": FaultSchedule.of(
        link_down(600, 1, 4), link_down(600, 4, 1), repair=False
    ),
}


@pytest.mark.parametrize("name", sorted(SCHEDULES))
def test_kernels_bit_identical_under_fault(name):
    event, reference = cosimulate(
        paper_config(), SCHEDULES[name], cycles=5000
    )
    assert event == reference


@pytest.mark.parametrize("name", ["link_down", "flaky", "switch_down"])
def test_parity_at_high_load(name):
    """Saturation parking + faults: aborts land on parked inputs."""
    event, reference = cosimulate(
        paper_config(load=0.9), SCHEDULES[name], cycles=5000
    )
    assert event == reference


def test_parity_with_shallow_buffers():
    """depth-1 buffers keep whole switches parked when the cut hits."""
    event, reference = cosimulate(
        paper_config(load=0.9, buffer_depth=1),
        SCHEDULES["link_down"],
        cycles=5000,
    )
    assert event == reference


def test_parity_under_store_and_forward():
    """S&F parks inputs waiting for whole packets; aborting a partial
    packet mid-accumulation must settle identically."""

    def config():
        spec = ScenarioSpec(
            topology="paper", packets=150, traffic="burst", length=4
        )
        cfg = spec.to_platform_config()
        cfg.switching = "store_and_forward"
        return cfg

    event, reference = cosimulate(
        config, SCHEDULES["link_down"], cycles=5000
    )
    assert event == reference


def test_parity_on_updown_routing():
    """Repair in the up*/down* family (avoid_links build + re-vet)."""

    def config():
        spec = ScenarioSpec(
            topology="mesh:3:3",
            routing="updown",
            packets=120,
            traffic="uniform",
            load=0.3,
        )
        return spec.to_platform_config()

    schedule = FaultSchedule.of(link_down(500, 4, 1))
    event, reference = cosimulate(config, schedule, cycles=5000)
    assert event == reference


def test_engine_run_matches_lockstep_manual_run():
    """The engine path (fast-forward clamped at fault cycles, wake
    scheduling) must land on the same final state as naive per-cycle
    ticking."""
    from repro.core.engine import EmulationEngine

    schedule = SCHEDULES["link_up"]
    platform = fresh_platform(paper_config())
    result = EmulationEngine(platform, faults=schedule).run()
    assert result.completed
    manual = fresh_platform(paper_config())
    injector = FaultInjector(schedule, manual)
    injector.begin(manual.cycle)
    while manual.cycle < result.cycles:
        injector.tick(manual.network.cycle)
        manual.step()
    assert snapshot(platform) == snapshot(manual)
    assert fault_snapshot_without_recovery(
        result.faults
    ) == fault_snapshot_without_recovery(injector.report)


def fault_snapshot_without_recovery(report):
    """Engine finalize() timing differs only in window cut points."""
    return {
        "dropped_flits": report.dropped_flits,
        "dropped_packets": report.dropped_packets,
        "per_link": dict(report.per_link_drops),
        "events": [
            (e.cycle, e.kind, e.dropped_flits, e.dropped_packets,
             e.repaired, e.recovery_cycles)
            for e in report.events
        ],
    }
