"""Fault-injected sweeps stay deterministic across execution modes.

A faulted scenario's record must be a pure function of its spec:
serial execution, a multiprocessing pool, and a cache replay must all
produce bit-identical records (the fault RNG is content-addressed via
``derive_stream_seed``, never drawn from shared mutable state).
"""

import pytest

from repro.experiments import ResultCache, Sweep, SweepRunner

pytestmark = pytest.mark.chaos


def faulted_specs():
    return Sweep.grid(
        {"topology": "paper", "packets": 40, "seed": 5},
        load=[0.2, 0.45],
        faults=[
            None,
            {
                "events": [
                    {"kind": "link_down", "cycle": 300, "a": 1, "b": 4},
                    {"kind": "link_down", "cycle": 300, "a": 4, "b": 1},
                    {"kind": "link_up", "cycle": 900, "a": 1, "b": 4},
                    {"kind": "link_up", "cycle": 900, "a": 4, "b": 1},
                ]
            },
            {
                "events": [
                    {
                        "kind": "flaky",
                        "cycle": 200,
                        "a": 1,
                        "b": 4,
                        "until": 900,
                        "drop_p": 0.2,
                        "seed": 7,
                    }
                ]
            },
        ],
    )


def records(results):
    return [r.record() for r in results]


def test_serial_parallel_and_cached_replay_identical(tmp_path):
    specs = faulted_specs()
    serial = SweepRunner(workers=1).run(specs)
    parallel = SweepRunner(workers=2).run(specs)
    assert records(serial) == records(parallel)

    cache = ResultCache(tmp_path / "cache")
    first = SweepRunner(workers=1, cache=cache).run(specs)
    replay = SweepRunner(workers=1, cache=cache).run(specs)
    assert records(first) == records(serial)
    assert records(replay) == records(serial)
    assert all(r.cached for r in replay)


def test_fault_metrics_survive_the_cache_round_trip(tmp_path):
    specs = [s for s in faulted_specs() if s.faults is not None][:2]
    cache = ResultCache(tmp_path / "cache")
    first = SweepRunner(workers=1, cache=cache).run(specs)
    replay = SweepRunner(workers=1, cache=cache).run(specs)
    for fresh, cached in zip(first, replay):
        assert cached.cached
        assert "fault_dropped_flits" in cached.metrics
        assert dict(fresh.metrics) == dict(cached.metrics)
        assert fresh.spec.faults == cached.spec.faults


def test_fault_seed_isolation():
    """Two flaky schedules differing only in seed produce different
    records (the RNG really is driven by the event seed)."""
    def spec_with(seed):
        return Sweep.grid(
            {"topology": "paper", "packets": 40, "seed": 5},
            faults=[
                {
                    "events": [
                        {
                            "kind": "flaky",
                            "cycle": 200,
                            "a": 1,
                            "b": 4,
                            "until": 1200,
                            "drop_p": 0.3,
                            "seed": seed,
                        }
                    ]
                }
            ],
        )[0]

    runner = SweepRunner(workers=1)
    a = runner.run([spec_with(1)])[0]
    b = runner.run([spec_with(2)])[0]
    assert a.spec.key != b.spec.key
    assert dict(a.metrics) != dict(b.metrics)
