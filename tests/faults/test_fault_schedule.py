"""FaultSchedule: validation, canonical form, and spec integration."""

import pytest

from repro.core.errors import ConfigError
from repro.experiments.spec import ScenarioSpec, Sweep
from repro.faults import (
    FaultEvent,
    FaultSchedule,
    flaky,
    link_down,
    link_up,
    switch_down,
)


class TestEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(kind="meteor_strike", cycle=10)

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(kind="link_down", cycle=10, a=1)  # no b

    def test_irrelevant_fields_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(kind="switch_down", cycle=10, switch=1, a=0, b=1)

    def test_negative_cycle_rejected(self):
        with pytest.raises(ConfigError):
            link_down(-1, 0, 1)

    def test_self_link_rejected(self):
        with pytest.raises(ConfigError):
            link_down(5, 2, 2)

    def test_flaky_window_must_extend_past_start(self):
        with pytest.raises(ConfigError):
            flaky(100, 0, 1, until=100, drop_p=0.5)

    def test_flaky_drop_p_bounds(self):
        with pytest.raises(ConfigError):
            flaky(100, 0, 1, until=200, drop_p=1.5)
        flaky(100, 0, 1, until=200, drop_p=0.0)  # boundary ok
        flaky(100, 0, 1, until=200, drop_p=1.0)


class TestScheduleValidation:
    def test_link_up_requires_prior_down(self):
        with pytest.raises(ConfigError):
            FaultSchedule.of(link_up(100, 0, 1))

    def test_double_down_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule.of(link_down(100, 0, 1), link_down(200, 0, 1))

    def test_down_up_down_alternation_ok(self):
        FaultSchedule.of(
            link_down(100, 0, 1),
            link_up(200, 0, 1),
            link_down(300, 0, 1),
        )

    def test_switch_dies_only_once(self):
        with pytest.raises(ConfigError):
            FaultSchedule.of(switch_down(100, 1), switch_down(200, 1))

    def test_link_event_on_dead_switch_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule.of(switch_down(100, 1), link_down(200, 1, 4))

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert FaultSchedule.of(link_down(1, 0, 1))


class TestCanonicalForm:
    def test_events_sorted_regardless_of_construction_order(self):
        a = FaultSchedule.of(link_down(300, 1, 4), link_down(100, 0, 1))
        b = FaultSchedule.of(link_down(100, 0, 1), link_down(300, 1, 4))
        assert a.events == b.events
        assert a.key == b.key

    def test_key_is_content_addressed(self):
        base = FaultSchedule.of(link_down(100, 0, 1))
        moved = FaultSchedule.of(link_down(101, 0, 1))
        norepair = FaultSchedule.of(link_down(100, 0, 1), repair=False)
        assert base.key != moved.key
        assert base.key != norepair.key
        assert len(base.key) == 16
        assert base.key == FaultSchedule.of(link_down(100, 0, 1)).key

    def test_round_trip(self):
        sched = FaultSchedule.of(
            link_down(300, 1, 4),
            link_up(900, 1, 4),
            flaky(50, 0, 1, until=250, drop_p=0.125, seed=9),
            switch_down(1200, 2),
            repair=False,
        )
        again = FaultSchedule.from_dict(sched.to_dict())
        assert again == sched
        assert again.key == sched.key

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            FaultSchedule.from_dict({"events": [], "mystery": 1})
        with pytest.raises(ConfigError):
            FaultSchedule.from_dict(
                {"events": [{"kind": "link_down", "cycle": 1, "a": 0,
                             "b": 1, "mystery": 2}]}
            )

    def test_first_cycle(self):
        sched = FaultSchedule.of(link_down(300, 1, 4), switch_down(80, 2))
        assert sched.first_cycle() == 80


class TestSpecIntegration:
    def test_healthy_spec_omits_faults_key(self):
        spec = ScenarioSpec(topology="paper", packets=10)
        assert "faults" not in spec.to_dict()

    def test_empty_schedule_normalises_to_none(self):
        healthy = ScenarioSpec(topology="paper", packets=10)
        explicit = ScenarioSpec(
            topology="paper", packets=10, faults={"events": []}
        )
        assert explicit.faults is None
        # Cache keys of healthy runs are untouched by the new field.
        assert explicit.key == healthy.key

    def test_dict_faults_converted_and_round_tripped(self):
        sched = FaultSchedule.of(link_down(300, 1, 4))
        spec = ScenarioSpec(
            topology="paper", packets=10, faults=sched.to_dict()
        )
        assert spec.faults == sched
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.key == spec.key

    def test_faulted_spec_changes_the_cache_key(self):
        healthy = ScenarioSpec(topology="paper", packets=10)
        faulted = ScenarioSpec(
            topology="paper",
            packets=10,
            faults=FaultSchedule.of(link_down(300, 1, 4)),
        )
        assert healthy.key != faulted.key

    def test_bad_faults_type_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(topology="paper", packets=10, faults="1:4@300")

    def test_faults_as_sweep_axis(self):
        specs = Sweep.grid(
            {"topology": "paper", "packets": 10},
            load=[0.2, 0.4],
            faults=[
                None,
                {"events": [{"kind": "link_down", "cycle": 300,
                             "a": 1, "b": 4}]},
            ],
        )
        assert len(specs) == 4
        faulted = [s for s in specs if s.faults is not None]
        assert len(faulted) == 2
        assert len({s.key for s in specs}) == 4
