"""Unit tests for the LFSR random number generator."""

import pytest

from repro.traffic.rng import Lfsr32, LfsrRandom


class TestLfsr32:
    def test_deterministic_from_seed(self):
        a, b = Lfsr32(123), Lfsr32(123)
        assert [a.next_word() for _ in range(4)] == [
            b.next_word() for _ in range(4)
        ]

    def test_different_seeds_diverge(self):
        a, b = Lfsr32(1), Lfsr32(2)
        assert [a.next_word() for _ in range(4)] != [
            b.next_word() for _ in range(4)
        ]

    def test_zero_seed_mapped_to_nonzero(self):
        lfsr = Lfsr32(0)
        assert lfsr.state != 0

    def test_state_never_zero(self):
        lfsr = Lfsr32(1)
        for _ in range(10_000):
            lfsr.next_bit()
            assert lfsr.state != 0

    def test_no_short_cycle(self):
        lfsr = Lfsr32(0xACE1)
        seen = set()
        for _ in range(5_000):
            assert lfsr.state not in seen
            seen.add(lfsr.state)
            lfsr.next_bit()

    def test_bit_balance(self):
        lfsr = Lfsr32(77)
        ones = sum(lfsr.next_bit() for _ in range(10_000))
        assert 4_500 < ones < 5_500

    def test_next_bits_width(self):
        lfsr = Lfsr32(5)
        for width in (1, 8, 16, 32, 64):
            assert 0 <= lfsr.next_bits(width) < (1 << width)

    def test_next_bits_width_validation(self):
        lfsr = Lfsr32(5)
        with pytest.raises(ValueError):
            lfsr.next_bits(0)
        with pytest.raises(ValueError):
            lfsr.next_bits(65)

    def test_reseed_restarts_sequence(self):
        lfsr = Lfsr32(42)
        first = [lfsr.next_word() for _ in range(3)]
        lfsr.reseed(42)
        assert [lfsr.next_word() for _ in range(3)] == first


class TestLfsrRandom:
    def test_random_in_unit_interval(self):
        rng = LfsrRandom(9)
        for _ in range(1_000):
            assert 0.0 <= rng.random() < 1.0

    def test_random_mean_near_half(self):
        rng = LfsrRandom(13)
        mean = sum(rng.random() for _ in range(10_000)) / 10_000
        assert 0.47 < mean < 0.53

    def test_uniform_int_bounds(self):
        rng = LfsrRandom(3)
        values = [rng.uniform_int(2, 7) for _ in range(2_000)]
        assert min(values) == 2
        assert max(values) == 7

    def test_uniform_int_no_modulo_bias(self):
        rng = LfsrRandom(21)
        counts = {v: 0 for v in range(3)}
        for _ in range(30_000):
            counts[rng.uniform_int(0, 2)] += 1
        for c in counts.values():
            assert 9_000 < c < 11_000

    def test_uniform_int_degenerate_range(self):
        rng = LfsrRandom(1)
        assert rng.uniform_int(5, 5) == 5

    def test_uniform_int_empty_range_rejected(self):
        with pytest.raises(ValueError):
            LfsrRandom(1).uniform_int(3, 2)

    def test_bernoulli_edges(self):
        rng = LfsrRandom(1)
        assert not rng.bernoulli(0.0)
        assert rng.bernoulli(1.0)
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)

    def test_bernoulli_rate(self):
        rng = LfsrRandom(10)
        hits = sum(rng.bernoulli(0.25) for _ in range(20_000))
        assert 4_400 < hits < 5_600

    def test_geometric_support(self):
        rng = LfsrRandom(6)
        for _ in range(1_000):
            assert rng.geometric(0.3) >= 1

    def test_geometric_mean(self):
        rng = LfsrRandom(8)
        n = 20_000
        mean = sum(rng.geometric(0.25) for _ in range(n)) / n
        assert 3.6 < mean < 4.4  # E = 1/p = 4

    def test_geometric_p_one(self):
        assert LfsrRandom(1).geometric(1.0) == 1

    def test_geometric_validation(self):
        with pytest.raises(ValueError):
            LfsrRandom(1).geometric(0.0)

    def test_expovariate_mean(self):
        rng = LfsrRandom(15)
        n = 20_000
        mean = sum(rng.expovariate(0.5) for _ in range(n)) / n
        assert 1.85 < mean < 2.15  # E = 1/rate = 2

    def test_expovariate_validation(self):
        with pytest.raises(ValueError):
            LfsrRandom(1).expovariate(0.0)

    def test_choice(self):
        rng = LfsrRandom(4)
        seq = ["a", "b", "c"]
        seen = {rng.choice(seq) for _ in range(100)}
        assert seen == set(seq)

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            LfsrRandom(1).choice([])

    def test_reseed_reproduces(self):
        rng = LfsrRandom(99)
        first = [rng.uniform_int(0, 100) for _ in range(5)]
        rng.reseed(99)
        assert [rng.uniform_int(0, 100) for _ in range(5)] == first


class TestDeriveStreamSeed:
    def test_deterministic(self):
        from repro.traffic.rng import derive_stream_seed

        assert derive_stream_seed(1, 42, 0) == derive_stream_seed(1, 42, 0)

    def test_distinct_across_keys(self):
        from repro.traffic.rng import derive_stream_seed

        seeds = {
            derive_stream_seed(root, scenario, tg)
            for root in (0, 1, 2)
            for scenario in (0, 0xDEADBEEF, 2**64 - 1)
            for tg in range(8)
        }
        assert len(seeds) == 3 * 3 * 8  # no collisions in a small family

    def test_order_sensitive(self):
        from repro.traffic.rng import derive_stream_seed

        assert derive_stream_seed(1, 2, 3) != derive_stream_seed(1, 3, 2)

    def test_never_zero(self):
        from repro.traffic.rng import derive_stream_seed

        # The all-zero LFSR state is its fixed point; every derived
        # seed must avoid it, including the pathological all-zero input.
        assert derive_stream_seed(0) != 0
        for i in range(256):
            assert derive_stream_seed(0, i) != 0

    def test_neighbouring_roots_decorrelate(self):
        from repro.traffic.rng import derive_stream_seed

        # The failure mode of additive seeding: TG i of root s equals
        # TG i-1 of root s+1.  Derived streams must not line up.
        for root in range(1, 10):
            for tg in range(1, 4):
                assert derive_stream_seed(root, tg) != derive_stream_seed(
                    root + 1, tg - 1
                )

    def test_streams_diverge(self):
        from repro.traffic.rng import LfsrRandom, derive_stream_seed

        a = LfsrRandom(derive_stream_seed(1, 7, 0))
        b = LfsrRandom(derive_stream_seed(1, 7, 1))
        draws_a = [a.uniform_int(0, 1000) for _ in range(50)]
        draws_b = [b.uniform_int(0, 1000) for _ in range(50)]
        assert draws_a != draws_b
