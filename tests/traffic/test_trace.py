"""Unit tests for traces, replay and the synthetic producers."""

import io

import pytest

from repro.traffic.trace import (
    Trace,
    TraceRecord,
    TraceTraffic,
    load_trace,
    save_trace,
    synthetic_burst_trace,
    synthetic_mpeg_trace,
)


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(cycle=-1, dst=0, length=1)
        with pytest.raises(ValueError):
            TraceRecord(cycle=0, dst=0, length=0)


class TestTrace:
    def test_sorted_by_cycle(self):
        t = Trace(
            [
                TraceRecord(5, 0, 1),
                TraceRecord(1, 0, 1),
                TraceRecord(3, 0, 1),
            ]
        )
        assert [r.cycle for r in t] == [1, 3, 5]

    def test_aggregates(self):
        t = Trace(
            [TraceRecord(0, 0, 4), TraceRecord(9, 0, 6)], name="x"
        )
        assert len(t) == 2
        assert t.total_flits == 10
        assert t.span_cycles == 10
        assert t.offered_load == pytest.approx(1.0)

    def test_empty_trace(self):
        t = Trace([])
        assert t.span_cycles == 0
        assert t.offered_load == 0.0
        assert t.burst_count() == 0

    def test_burst_count(self):
        t = Trace(
            [
                TraceRecord(0, 0, 1, burst_id=0),
                TraceRecord(1, 0, 1, burst_id=0),
                TraceRecord(2, 0, 1, burst_id=1),
                TraceRecord(3, 0, 1),
            ]
        )
        assert t.burst_count() == 2


class TestReplay:
    def test_causal_replay(self):
        t = Trace([TraceRecord(3, 9, 2), TraceRecord(6, 9, 2)])
        m = TraceTraffic(t)
        assert m.poll(0) is None
        assert m.poll(2) is None
        assert m.poll(3) == (2, 9, None)
        assert m.poll(4) is None
        assert m.poll(6) == (2, 9, None)
        assert m.exhausted

    def test_same_cycle_records_slip(self):
        t = Trace([TraceRecord(0, 1, 1), TraceRecord(0, 2, 1)])
        m = TraceTraffic(t)
        assert m.poll(0) == (1, 1, None)
        assert m.poll(1) == (1, 2, None)  # slipped by one cycle

    def test_reset_rewinds(self):
        t = Trace([TraceRecord(0, 1, 1)])
        m = TraceTraffic(t)
        m.poll(0)
        assert m.exhausted
        m.reset()
        assert not m.exhausted
        assert m.poll(0) == (1, 1, None)


class TestSerialisation:
    def test_round_trip(self):
        original = synthetic_burst_trace(
            n_bursts=4,
            packets_per_burst=3,
            flits_per_packet=2,
            gap=5,
            dst=6,
        )
        buffer = io.StringIO()
        save_trace(original, buffer)
        buffer.seek(0)
        restored = load_trace(buffer)
        assert restored.name == original.name
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert (a.cycle, a.dst, a.length, a.burst_id) == (
                b.cycle,
                b.dst,
                b.length,
                b.burst_id,
            )

    def test_round_trip_via_file(self, tmp_path):
        trace = Trace([TraceRecord(0, 1, 2, None)], name="disk")
        path = str(tmp_path / "t.trace")
        save_trace(trace, path)
        restored = load_trace(path)
        assert restored.name == "disk"
        assert restored[0].burst_id is None

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            load_trace(io.StringIO("1 2 3\n"))


class TestSyntheticBurstTrace:
    def test_structure(self):
        t = synthetic_burst_trace(
            n_bursts=2,
            packets_per_burst=3,
            flits_per_packet=4,
            gap=10,
            dst=5,
        )
        assert len(t) == 6
        assert t.burst_count() == 2
        # Back-to-back packets inside a burst, then the gap.
        cycles = [r.cycle for r in t]
        assert cycles == [0, 4, 8, 22, 26, 30]

    def test_multi_destination_per_burst(self):
        t = synthetic_burst_trace(
            n_bursts=50,
            packets_per_burst=2,
            flits_per_packet=1,
            gap=0,
            dst=[3, 4],
            seed=5,
        )
        by_burst = {}
        for r in t:
            by_burst.setdefault(r.burst_id, set()).add(r.dst)
        # Each burst sticks to one destination...
        assert all(len(d) == 1 for d in by_burst.values())
        # ...but both destinations appear over the trace.
        assert {d.pop() for d in by_burst.values()} == {3, 4}

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_burst_trace(0, 1, 1, 0, dst=0)
        with pytest.raises(ValueError):
            synthetic_burst_trace(1, 0, 1, 0, dst=0)
        with pytest.raises(ValueError):
            synthetic_burst_trace(1, 1, 1, -1, dst=0)


class TestSyntheticMpegTrace:
    def test_frame_periodicity(self):
        t = synthetic_mpeg_trace(
            n_frames=6, dst=2, frame_interval=100, size_jitter=0.0
        )
        frame_starts = sorted(
            {
                min(r.cycle for r in t if r.burst_id == f)
                for f in range(6)
            }
        )
        assert frame_starts == [0, 100, 200, 300, 400, 500]

    def test_i_frames_are_largest(self):
        t = synthetic_mpeg_trace(n_frames=12, dst=2, size_jitter=0.0)
        sizes = {}
        for r in t:
            sizes[r.burst_id] = sizes.get(r.burst_id, 0) + 1
        # Frame 0 is the I frame of the GOP: strictly largest.
        assert sizes[0] == max(sizes.values())
        assert sizes[0] > sizes[1]  # B frame much smaller

    def test_jitter_varies_sizes(self):
        t = synthetic_mpeg_trace(
            n_frames=24, dst=2, size_jitter=0.5, seed=3
        )
        sizes = {}
        for r in t:
            sizes[r.burst_id] = sizes.get(r.burst_id, 0) + 1
        b_sizes = {sizes[f] for f in (1, 2, 4, 5, 7, 8, 10, 11)}
        assert len(b_sizes) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_mpeg_trace(0, dst=1)
        with pytest.raises(ValueError):
            synthetic_mpeg_trace(1, dst=1, size_jitter=1.0)
