"""Unit tests for the stochastic traffic models.

One file covers the whole family (uniform, burst, Poisson, on/off plus
the shared base machinery) because their contracts are symmetric: they
emit (length, dst, burst_id) tuples with a known offered load.
"""

import pytest

from repro.traffic.base import (
    FixedDestination,
    HotspotDestination,
    UniformRandomDestination,
    interval_for_load,
)
from repro.traffic.burst import BurstTraffic
from repro.traffic.onoff import OnOffTraffic
from repro.traffic.poisson import PoissonTraffic
from repro.traffic.rng import LfsrRandom
from repro.traffic.uniform import UniformTraffic

DST = FixedDestination(7)


def run_model(model, cycles):
    """Poll a model for `cycles` cycles; return the emissions."""
    emissions = []
    for now in range(cycles):
        e = model.poll(now)
        if e is not None:
            emissions.append((now, e))
    return emissions


def measured_load(model, cycles=20_000):
    emissions = run_model(model, cycles)
    return sum(e[1][0] for e in emissions) / cycles


class TestIntervalForLoad:
    def test_paper_setup(self):
        # 8-flit packets at 45% -> every ceil(8/0.45) = 18 cycles.
        assert interval_for_load(8, 0.45) == 18

    def test_full_load(self):
        assert interval_for_load(4, 1.0) == 4

    def test_never_below_serialisation(self):
        assert interval_for_load(8, 0.99) >= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            interval_for_load(0, 0.5)
        with pytest.raises(ValueError):
            interval_for_load(4, 0.0)
        with pytest.raises(ValueError):
            interval_for_load(4, 1.5)


class TestDestinationChoosers:
    def test_fixed(self):
        rng = LfsrRandom(1)
        d = FixedDestination(3)
        assert d.next_destination(rng) == 3
        assert d.destinations() == (3,)

    def test_fixed_validation(self):
        with pytest.raises(ValueError):
            FixedDestination(-1)

    def test_uniform_random_covers_candidates(self):
        rng = LfsrRandom(2)
        d = UniformRandomDestination([1, 2, 3])
        seen = {d.next_destination(rng) for _ in range(200)}
        assert seen == {1, 2, 3}

    def test_uniform_random_empty_rejected(self):
        with pytest.raises(ValueError):
            UniformRandomDestination([])

    def test_hotspot_skew(self):
        rng = LfsrRandom(3)
        d = HotspotDestination(9, [1, 2], hotspot_fraction=0.8)
        hits = sum(
            d.next_destination(rng) == 9 for _ in range(5_000)
        )
        assert 3_700 < hits < 4_300

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            HotspotDestination(9, [], hotspot_fraction=0.5)
        with pytest.raises(ValueError):
            HotspotDestination(9, [1], hotspot_fraction=0.0)


class TestUniformTraffic:
    def test_fixed_cadence(self):
        m = UniformTraffic(length=4, interval=10, destination=DST)
        emissions = run_model(m, 50)
        assert [now for now, _ in emissions] == [0, 10, 20, 30, 40]
        assert all(e == (4, 7, None) for _, e in emissions)

    def test_expected_load_matches_measured(self):
        m = UniformTraffic(length=8, interval=18, destination=DST)
        assert measured_load(m, 18 * 100) == pytest.approx(
            m.expected_load(), rel=0.02
        )

    def test_randomised_length_range(self):
        m = UniformTraffic(
            length=(2, 6), interval=4, destination=DST, seed=5
        )
        lengths = {e[0] for _, e in run_model(m, 800)}
        assert lengths == {2, 3, 4, 5, 6}

    def test_randomised_interval_range(self):
        m = UniformTraffic(
            length=1, interval=(3, 5), destination=DST, seed=5
        )
        times = [now for now, _ in run_model(m, 400)]
        gaps = {b - a for a, b in zip(times, times[1:])}
        assert gaps == {3, 4, 5}

    def test_reset_restarts(self):
        m = UniformTraffic(length=2, interval=7, destination=DST)
        first = run_model(m, 30)
        m.reset()
        assert run_model(m, 30) == first

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformTraffic(length=0, interval=5, destination=DST)
        with pytest.raises(ValueError):
            UniformTraffic(length=1, interval=0, destination=DST)
        with pytest.raises(ValueError):
            UniformTraffic(length=(4, 2), interval=5, destination=DST)


class TestBurstTraffic:
    def test_emissions_only_at_slot_boundaries(self):
        m = BurstTraffic(
            p_on=0.5, p_off=0.3, length=4, destination=DST, seed=11
        )
        for now, _ in run_model(m, 4_000):
            assert now % 4 == 0

    def test_burst_ids_group_packets(self):
        m = BurstTraffic(
            p_on=0.4, p_off=0.4, length=2, destination=DST, seed=7
        )
        emissions = run_model(m, 4_000)
        burst_ids = [e[1][2] for e in emissions]
        # Burst ids increase monotonically and repeat within bursts.
        assert burst_ids == sorted(burst_ids)
        assert len(set(burst_ids)) < len(burst_ids)

    def test_stationary_load(self):
        m = BurstTraffic(
            p_on=0.2, p_off=0.2, length=4, destination=DST, seed=3
        )
        assert m.stationary_on == pytest.approx(0.5)
        assert measured_load(m, 80_000) == pytest.approx(0.5, abs=0.05)

    def test_for_load_solves_parameters(self):
        m = BurstTraffic.for_load(
            0.45, mean_burst_packets=8, length=4, destination=DST
        )
        assert m.expected_load() == pytest.approx(0.45)
        assert m.mean_burst_packets == pytest.approx(8.0)

    def test_for_load_infeasible_rejected(self):
        with pytest.raises(ValueError, match="p_on > 1"):
            BurstTraffic.for_load(
                0.99, mean_burst_packets=1, length=4, destination=DST
            )

    def test_mean_burst_length_measured(self):
        m = BurstTraffic(
            p_on=0.3, p_off=0.25, length=1, destination=DST, seed=9
        )
        emissions = run_model(m, 100_000)
        bursts = {}
        for _, (_, _, burst) in emissions:
            bursts[burst] = bursts.get(burst, 0) + 1
        mean = sum(bursts.values()) / len(bursts)
        assert mean == pytest.approx(4.0, rel=0.15)  # 1/p_off

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstTraffic(0.0, 0.5, 4, DST)
        with pytest.raises(ValueError):
            BurstTraffic(0.5, 1.5, 4, DST)
        with pytest.raises(ValueError):
            BurstTraffic(0.5, 0.5, 0, DST)


class TestPoissonTraffic:
    def test_load_calibration(self):
        m = PoissonTraffic.for_load(0.4, length=4, destination=DST, seed=2)
        assert m.expected_load() == pytest.approx(0.4)
        assert measured_load(m, 60_000) == pytest.approx(0.4, abs=0.05)

    def test_interarrival_variability(self):
        m = PoissonTraffic(rate=0.05, length=1, destination=DST, seed=4)
        times = [now for now, _ in run_model(m, 20_000)]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert len(set(gaps)) > 5  # genuinely random gaps

    def test_reset(self):
        m = PoissonTraffic(rate=0.1, length=2, destination=DST, seed=6)
        first = run_model(m, 500)
        m.reset()
        assert run_model(m, 500) == first

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonTraffic(rate=0.0, length=2, destination=DST)
        with pytest.raises(ValueError):
            PoissonTraffic(rate=0.5, length=0, destination=DST)


class TestOnOffTraffic:
    def test_exact_burst_shape(self):
        m = OnOffTraffic(
            packets_per_burst=3, gap=10, length=2, destination=DST
        )
        emissions = run_model(m, 2 * (3 * 2 + 10))
        times = [now for now, _ in emissions]
        assert times == [0, 2, 4, 16, 18, 20]
        burst_ids = [e[2] for _, e in emissions]
        assert burst_ids == [0, 0, 0, 1, 1, 1]

    def test_duty_cycle_load(self):
        m = OnOffTraffic.for_load(
            0.5, packets_per_burst=4, length=2, destination=DST
        )
        assert m.expected_load() == pytest.approx(0.5, abs=0.05)
        assert measured_load(m, 16_000) == pytest.approx(0.5, abs=0.05)

    def test_zero_gap_is_full_load(self):
        m = OnOffTraffic(
            packets_per_burst=2, gap=0, length=3, destination=DST
        )
        assert m.expected_load() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffTraffic(0, 1, 2, DST)
        with pytest.raises(ValueError):
            OnOffTraffic(1, -1, 2, DST)
        with pytest.raises(ValueError):
            OnOffTraffic(1, 1, 0, DST)
