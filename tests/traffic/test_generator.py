"""Unit tests for the traffic-generator device core."""

import pytest

from repro.noc.link import Link
from repro.noc.ni import NetworkInterface
from repro.traffic.base import FixedDestination
from repro.traffic.generator import TrafficGenerator
from repro.traffic.trace import TraceTraffic, synthetic_burst_trace
from repro.traffic.uniform import UniformTraffic


def make_generator(max_packets=None, queue_limit=64, record=False):
    ni = NetworkInterface(0)
    ni.connect(Link(), credits=1_000_000)
    model = UniformTraffic(
        length=2, interval=4, destination=FixedDestination(3)
    )
    gen = TrafficGenerator(
        0,
        model,
        ni,
        max_packets=max_packets,
        queue_limit=queue_limit,
        record=record,
    )
    return gen, ni


class TestEmission:
    def test_packets_stamped_with_cycle_and_src(self):
        gen, _ = make_generator()
        p = gen.step(0)
        assert p is not None
        assert p.src == 0
        assert p.dst == 3
        assert p.injection_cycle == 0

    def test_cadence_follows_model(self):
        gen, _ = make_generator()
        emitted = [now for now in range(20) if gen.step(now)]
        assert emitted == [0, 4, 8, 12, 16]

    def test_counters(self):
        gen, ni = make_generator()
        for now in range(8):
            gen.step(now)
        assert gen.packets_sent == 2
        assert gen.flits_sent == 4
        assert ni.offered_packets == 2


class TestBudget:
    def test_max_packets_stops_emission(self):
        gen, _ = make_generator(max_packets=3)
        for now in range(100):
            gen.step(now)
        assert gen.packets_sent == 3
        assert gen.done

    def test_unbounded_generator_never_done(self):
        gen, _ = make_generator()
        for now in range(50):
            gen.step(now)
        assert not gen.done

    def test_validation(self):
        ni = NetworkInterface(0)
        ni.connect(Link(), credits=4)
        model = UniformTraffic(1, 1, FixedDestination(1))
        with pytest.raises(ValueError):
            TrafficGenerator(0, model, ni, max_packets=-1)
        with pytest.raises(ValueError):
            TrafficGenerator(0, model, ni, queue_limit=0)


class TestBackpressure:
    def test_stalls_on_full_queue(self):
        gen, ni = make_generator(queue_limit=2)
        gen.step(0)  # fills the queue with 2 flits (nothing drains)
        assert gen.step(4) is None
        assert gen.backpressure_cycles == 1

    def test_resumes_after_drain(self):
        gen, ni = make_generator(queue_limit=2)
        gen.step(0)
        gen.step(4)  # blocked
        ni.inject(4)
        ni.inject(5)  # queue drained
        assert gen.step(6) is not None


class TestControl:
    def test_disable_stops_emission(self):
        gen, _ = make_generator()
        gen.disable()
        assert gen.step(0) is None
        gen.enable()
        assert gen.step(0) is not None

    def test_reset_clears_counters_and_rewinds(self):
        gen, _ = make_generator()
        gen.step(0)
        gen.reset()
        assert gen.packets_sent == 0
        assert gen.step(0) is not None  # model rewound to cycle 0


class TestRecording:
    def test_recorded_trace_replays_identically(self):
        gen, _ = make_generator(max_packets=5, record=True)
        for now in range(40):
            gen.step(now)
        trace = gen.recorded_trace()
        assert len(trace) == 5
        replay = TraceTraffic(trace)
        replayed = []
        for now in range(40):
            e = replay.poll(now)
            if e:
                replayed.append((now, e))
        assert [now for now, _ in replayed] == [0, 4, 8, 12, 16]

    def test_recording_disabled_by_default(self):
        gen, _ = make_generator()
        with pytest.raises(RuntimeError, match="record=False"):
            gen.recorded_trace()


class TestTraceDrivenGenerator:
    def test_exhaustion_visible(self):
        ni = NetworkInterface(0)
        ni.connect(Link(), credits=100)
        trace = synthetic_burst_trace(
            n_bursts=1,
            packets_per_burst=2,
            flits_per_packet=1,
            gap=0,
            dst=3,
        )
        gen = TrafficGenerator(0, TraceTraffic(trace), ni)
        for now in range(10):
            gen.step(now)
        assert gen.model.exhausted
        assert gen.packets_sent == 2
