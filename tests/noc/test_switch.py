"""Unit tests for the parameterisable switch."""

import pytest

from repro.noc.flit import Flit, Packet
from repro.noc.routing import TableRouting
from repro.noc.switch import Switch, SwitchConfig, SwitchingMode


def make_switch(
    n_in=2,
    n_out=2,
    depth=4,
    table=None,
    arbitration="round_robin",
    mode=SwitchingMode.WORMHOLE,
):
    """A switch whose outputs capture sent flits into per-port lists."""
    routing = TableRouting({0: table or {0: 0, 1: 1}})
    sw = Switch(
        0,
        SwitchConfig(
            n_inputs=n_in,
            n_outputs=n_out,
            buffer_depth=depth,
            arbitration=arbitration,
            mode=mode,
        ),
        routing,
    )
    sent = [[] for _ in range(n_out)]
    for port in range(n_out):
        sw.connect_output(
            port,
            lambda flit, now, _p=port: sent[_p].append((flit, now)),
            credits=8,
        )
    return sw, sent


def packet_flits(dst, length=3, src=0):
    return Packet(src=src, dst=dst, length=length).flit_list()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SwitchConfig(n_inputs=0, n_outputs=1)
        with pytest.raises(ValueError):
            SwitchConfig(n_inputs=1, n_outputs=0)
        with pytest.raises(ValueError):
            SwitchConfig(n_inputs=1, n_outputs=1, buffer_depth=0)

    def test_mode_accepts_string(self):
        cfg = SwitchConfig(n_inputs=1, n_outputs=1, mode="wormhole")
        assert cfg.mode is SwitchingMode.WORMHOLE


class TestWiring:
    def test_double_connect_rejected(self):
        sw, _ = make_switch()
        with pytest.raises(RuntimeError, match="already connected"):
            sw.connect_output(0, lambda f, n: None, credits=1)

    def test_unwired_detected(self):
        routing = TableRouting({0: {0: 0}})
        sw = Switch(0, SwitchConfig(n_inputs=1, n_outputs=1), routing)
        with pytest.raises(RuntimeError, match="not connected"):
            sw.check_wired()

    def test_double_input_hook_rejected(self):
        sw, _ = make_switch()
        sw.connect_input_hook(0, lambda now: None)
        with pytest.raises(RuntimeError, match="already has"):
            sw.connect_input_hook(0, lambda now: None)


class TestBasicForwarding:
    def test_single_packet_flows_through(self):
        sw, sent = make_switch()
        flits = packet_flits(dst=0)
        for f in flits:
            sw.receive(0, f)
        for now in range(3):
            sw.traverse(now)
        assert [f for f, _ in sent[0]] == flits
        assert sw.flits_forwarded == 3

    def test_one_flit_per_output_per_cycle(self):
        sw, sent = make_switch()
        for f in packet_flits(dst=0):
            sw.receive(0, f)
        sw.traverse(0)
        assert len(sent[0]) == 1

    def test_routing_by_destination(self):
        sw, sent = make_switch()
        f0 = packet_flits(dst=0, length=1)[0]
        f1 = packet_flits(dst=1, length=1)[0]
        sw.receive(0, f0)
        sw.traverse(0)
        sw.receive(0, f1)
        sw.traverse(1)
        assert sent[0][0][0] is f0
        assert sent[1][0][0] is f1

    def test_parallel_outputs_same_cycle(self):
        sw, sent = make_switch()
        sw.receive(0, packet_flits(dst=0, length=1)[0])
        sw.receive(1, packet_flits(dst=1, length=1, src=1)[0])
        moved = sw.traverse(0)
        assert moved == 2
        assert len(sent[0]) == 1 and len(sent[1]) == 1


class TestWormhole:
    def test_channel_locked_until_tail(self):
        sw, sent = make_switch()
        a = packet_flits(dst=0, length=3, src=0)
        b = packet_flits(dst=0, length=3, src=1)
        for f in a:
            sw.receive(0, f)
        for f in b:
            sw.receive(1, f)
        for now in range(6):
            sw.traverse(now)
        order = [f.packet.pid for f, _ in sent[0]]
        # One packet's flits must be contiguous (no interleaving).
        assert order == sorted(order, key=lambda pid: order.index(pid))
        assert order[0:3] == [order[0]] * 3
        assert order[3:6] == [order[3]] * 3

    def test_blocked_flits_accumulate_stalls(self):
        sw, sent = make_switch()
        a = packet_flits(dst=0, length=2, src=0)
        b = packet_flits(dst=0, length=2, src=1)
        for f in a:
            sw.receive(0, f)
        for f in b:
            sw.receive(1, f)
        for now in range(4):
            sw.traverse(now)
        loser_head = b[0] if sent[0][0][0] is a[0] else a[0]
        assert loser_head.stall_cycles > 0
        assert sw.blocked_flit_cycles > 0

    def test_credit_exhaustion_blocks(self):
        routing = TableRouting({0: {0: 0}})
        sw = Switch(
            0, SwitchConfig(n_inputs=1, n_outputs=1), routing
        )
        sent = []
        sw.connect_output(
            0, lambda f, n: sent.append(f), credits=1
        )
        flits = packet_flits(dst=0, length=3)
        for f in flits:
            sw.receive(0, f)
        sw.traverse(0)
        sw.traverse(1)  # no credit left: must stall
        assert len(sent) == 1
        assert sw.credit_stall_cycles == 1
        sw.credit(0)  # downstream freed a slot
        sw.traverse(2)
        assert len(sent) == 2

    def test_infinite_credit_output_never_stalls(self):
        routing = TableRouting({0: {0: 0}})
        sw = Switch(0, SwitchConfig(n_inputs=1, n_outputs=1), routing)
        sent = []
        sw.connect_output(0, lambda f, n: sent.append(f), credits=None)
        for f in packet_flits(dst=0, length=4, src=0):
            sw.receive(0, f)
        for now in range(4):
            sw.traverse(now)
        assert len(sent) == 4
        assert sw.credit_stall_cycles == 0

    def test_non_head_without_route_is_protocol_error(self):
        sw, _ = make_switch()
        body = packet_flits(dst=0, length=3)[1]
        sw.receive(0, body)
        with pytest.raises(RuntimeError, match="non-head"):
            sw.traverse(0)

    def test_input_pop_hook_fires(self):
        sw, _ = make_switch()
        pops = []
        sw.connect_input_hook(0, lambda now: pops.append(now))
        sw.receive(0, packet_flits(dst=0, length=1)[0])
        sw.traverse(7)
        assert pops == [7]


class TestStoreAndForward:
    def test_waits_for_whole_packet(self):
        sw, sent = make_switch(mode=SwitchingMode.STORE_AND_FORWARD)
        flits = packet_flits(dst=0, length=3)
        sw.receive(0, flits[0])
        sw.traverse(0)
        assert sent[0] == []  # only head arrived: must wait
        sw.receive(0, flits[1])
        sw.traverse(1)
        assert sent[0] == []
        sw.receive(0, flits[2])
        sw.traverse(2)
        assert len(sent[0]) == 1  # complete: head may leave
        sw.traverse(3)
        sw.traverse(4)
        assert len(sent[0]) == 3

    def test_packet_longer_than_buffer_rejected(self):
        sw, _ = make_switch(
            depth=2, mode=SwitchingMode.STORE_AND_FORWARD
        )
        flits = packet_flits(dst=0, length=3)
        sw.receive(0, flits[0])
        sw.receive(0, flits[1])
        with pytest.raises(RuntimeError, match="store-and-forward"):
            sw.traverse(0)

    def test_single_flit_packet_passes(self):
        sw, sent = make_switch(mode=SwitchingMode.STORE_AND_FORWARD)
        sw.receive(0, packet_flits(dst=0, length=1)[0])
        sw.traverse(0)
        assert len(sent[0]) == 1


class TestArbitration:
    def test_round_robin_alternates(self):
        sw, sent = make_switch()
        # Two streams of single-flit packets to the same output.
        for k in range(4):
            sw.receive(0, packet_flits(dst=0, length=1, src=0)[0])
            sw.receive(1, packet_flits(dst=0, length=1, src=1)[0])
        for now in range(8):
            sw.traverse(now)
        sources = [f.src for f, _ in sent[0]]
        assert sources == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_fixed_priority_starves(self):
        sw, sent = make_switch(arbitration="fixed_priority")
        for k in range(3):
            sw.receive(0, packet_flits(dst=0, length=1, src=0)[0])
            sw.receive(1, packet_flits(dst=0, length=1, src=1)[0])
        for now in range(3):
            sw.traverse(now)
        assert [f.src for f, _ in sent[0]] == [0, 0, 0]


class TestStats:
    def test_buffered_flits(self):
        sw, _ = make_switch()
        for f in packet_flits(dst=0, length=3):
            sw.receive(0, f)
        assert sw.buffered_flits == 3

    def test_output_credits_view(self):
        sw, _ = make_switch()
        assert sw.output_credits(0) == 8
        sw.receive(0, packet_flits(dst=0, length=1)[0])
        sw.traverse(0)
        assert sw.output_credits(0) == 7

    def test_reset_stats(self):
        sw, _ = make_switch()
        sw.receive(0, packet_flits(dst=0, length=1)[0])
        sw.traverse(0)
        sw.reset_stats()
        assert sw.flits_forwarded == 0
        assert sw.blocked_flit_cycles == 0
