"""Unit tests for the tree topology and traffic over it."""

import pytest

from repro.noc.deadlock import is_deadlock_free
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.routing import build_shortest_path_tables
from repro.noc.topology import TopologyError, tree


class TestShape:
    def test_binary_tree_counts(self):
        t = tree(2, 3)
        assert t.n_switches == 7
        assert t.n_nodes == 4  # the four leaves

    def test_quad_tree_counts(self):
        t = tree(4, 2)
        assert t.n_switches == 5
        assert t.n_nodes == 4

    def test_single_level_tree(self):
        t = tree(2, 1)
        assert t.n_switches == 1
        assert t.n_nodes == 1
        t.validate()

    def test_root_has_no_nodes(self):
        t = tree(2, 3)
        assert t.nodes_on_switch(0) == []

    def test_leaf_degree(self):
        t = tree(2, 3)
        # A leaf: parent link (in+out) + node (in+out).
        for s in range(3, 7):
            assert t.n_inputs(s) == 2
            assert t.n_outputs(s) == 2

    def test_root_degree(self):
        t = tree(3, 2)
        assert t.n_inputs(0) == 3
        assert t.n_outputs(0) == 3

    def test_validation(self):
        with pytest.raises(TopologyError):
            tree(1, 2)
        with pytest.raises(TopologyError):
            tree(2, 0)

    def test_validates(self):
        tree(3, 3).validate()


class TestTrafficOverTree:
    def test_cross_subtree_traffic_delivered(self):
        topo = tree(2, 3)
        net = Network(topo, build_shortest_path_tables(topo))
        # Leaf 0 to leaf 3: must cross the root.
        net.offer(Packet(src=0, dst=3, length=4))
        net.drain()
        assert net.rx[3].received_packets == 1

    def test_all_pairs_deliver(self):
        topo = tree(2, 3)
        net = Network(topo, build_shortest_path_tables(topo))
        count = 0
        for src in range(4):
            for dst in range(4):
                if src != dst:
                    net.offer(Packet(src=src, dst=dst, length=2))
                    count += 1
        net.drain()
        assert sum(rx.received_packets for rx in net.rx) == count

    def test_tree_routing_is_deadlock_free(self):
        # Trees have a unique path per pair: the CDG is a forest.
        topo = tree(2, 3)
        routing = build_shortest_path_tables(topo)
        assert is_deadlock_free(topo, routing)

    def test_root_is_the_bottleneck(self):
        topo = tree(2, 3)
        net = Network(topo, build_shortest_path_tables(topo))
        # All cross-subtree flows share the root's two links.
        for k in range(10):
            net.offer(Packet(src=0, dst=2, length=4, injection_cycle=0))
            net.offer(Packet(src=1, dst=3, length=4, injection_cycle=0))
        net.drain()
        loads = net.link_loads()
        root_out = max(
            load
            for (a, b), load in loads.items()
            if a == 0 or b == 0
        )
        leaf_link = max(
            load
            for (a, b), load in loads.items()
            if a >= 3 or b >= 3
        )
        assert root_out >= leaf_link * 0.9
