"""Integration tests of the elaborated network."""

import pytest

from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.routing import (
    build_shortest_path_tables,
    paper_routing,
)
from repro.noc.switch import SwitchingMode
from repro.noc.topology import mesh, paper_flow_pairs, paper_topology


def small_network(**kwargs):
    topo = mesh(2, 2)
    routing = build_shortest_path_tables(topo)
    return Network(topo, routing, **kwargs), topo


class TestElaboration:
    def test_switch_port_counts_match_topology(self):
        net, topo = small_network()
        for s in range(topo.n_switches):
            assert net.switches[s].config.n_inputs == topo.n_inputs(s)
            assert net.switches[s].config.n_outputs == topo.n_outputs(s)

    def test_all_links_created(self):
        net, topo = small_network()
        # 8 directed switch links + 4 injection + 4 ejection.
        assert len(net.links) == len(topo.switch_edges()) + 2 * topo.n_nodes

    def test_link_between(self):
        net, _ = small_network()
        assert net.link_between(0, 1) is not None
        with pytest.raises(KeyError):
            net.link_between(0, 3)


class TestDelivery:
    def test_single_packet_delivered(self):
        net, _ = small_network()
        done = []
        net.rx[3].on_packet = lambda p, now, fs: done.append((p, now))
        p = Packet(src=0, dst=3, length=4)
        net.offer(p)
        net.drain()
        assert done and done[0][0] is p
        assert net.rx[3].received_packets == 1

    def test_flit_conservation(self):
        net, _ = small_network()
        packets = [
            Packet(src=s, dst=(s + 2) % 4, length=3) for s in range(4)
        ]
        for p in packets:
            net.offer(p)
        net.drain()
        sent = sum(ni.injected_flits for ni in net.nis)
        received = sum(rx.received_flits for rx in net.rx)
        assert sent == received == 12

    def test_local_delivery_same_switch(self):
        # mesh(2,2,nodes_per_switch=2): two nodes on one switch.
        topo = mesh(2, 2, nodes_per_switch=2)
        routing = build_shortest_path_tables(topo)
        net = Network(topo, routing)
        p = Packet(src=0, dst=1, length=2)  # both on switch 0
        net.offer(p)
        net.drain()
        assert net.rx[1].received_packets == 1

    def test_zero_load_latency_is_deterministic(self):
        net, _ = small_network()
        arrivals = []
        net.rx[3].on_packet = lambda p, now, fs: arrivals.append(now)
        net.offer(Packet(src=0, dst=3, length=1, injection_cycle=0))
        net.drain()
        first = arrivals[0]
        # Same experiment again gives the identical latency.
        net2, _ = small_network()
        arrivals2 = []
        net2.rx[3].on_packet = lambda p, now, fs: arrivals2.append(now)
        net2.offer(Packet(src=0, dst=3, length=1, injection_cycle=0))
        net2.drain()
        assert arrivals2[0] == first

    def test_longer_packets_take_longer(self):
        def latency(length):
            net, _ = small_network()
            arrivals = []
            net.rx[3].on_packet = lambda p, now, fs: arrivals.append(now)
            net.offer(Packet(src=0, dst=3, length=length))
            net.drain()
            return arrivals[0]

        assert latency(8) > latency(1)

    def test_store_and_forward_slower_than_wormhole(self):
        def latency(mode):
            topo = mesh(3, 1)
            routing = build_shortest_path_tables(topo)
            net = Network(topo, routing, buffer_depth=8, mode=mode)
            arrivals = []
            net.rx[2].on_packet = lambda p, now, fs: arrivals.append(now)
            net.offer(Packet(src=0, dst=2, length=6))
            net.drain()
            return arrivals[0]

        assert latency(SwitchingMode.STORE_AND_FORWARD) > latency(
            SwitchingMode.WORMHOLE
        )


class TestDrainAndProgress:
    def test_is_drained_initially(self):
        net, _ = small_network()
        assert net.is_drained
        assert net.in_flight_flits == 0

    def test_in_flight_accounting(self):
        net, _ = small_network()
        net.offer(Packet(src=0, dst=3, length=4))
        assert net.in_flight_flits == 4
        net.step()
        assert net.in_flight_flits == 4  # moved, not lost
        net.drain()
        assert net.in_flight_flits == 0

    def test_drain_timeout_raises(self):
        net, _ = small_network()
        net.offer(Packet(src=0, dst=3, length=64))
        # Absurdly small budget: the drain must time out.
        with pytest.raises(RuntimeError, match="drain"):
            net.drain(max_cycles=2)

    def test_run_advances_cycles(self):
        net, _ = small_network()
        net.run(10)
        assert net.cycle == 10


class TestMonitoring:
    def test_link_loads_sum_up(self):
        net, _ = small_network()
        for k in range(20):
            net.offer(
                Packet(src=0, dst=3, length=2, injection_cycle=0)
            )
        net.drain()
        loads = net.link_loads()
        assert loads  # some inter-switch load observed
        assert all(0.0 <= v <= 1.0 for v in loads.values())

    def test_blocked_cycles_zero_without_contention(self):
        net, _ = small_network()
        net.offer(Packet(src=0, dst=3, length=2))
        net.drain()
        assert net.total_blocked_flit_cycles == 0

    def test_reset_stats(self):
        net, _ = small_network()
        net.offer(Packet(src=0, dst=3, length=2))
        net.drain()
        net.reset_stats()
        assert net.total_blocked_flit_cycles == 0
        assert all(l.flits_carried == 0 for l in net.links)

    def test_link_loads_use_post_reset_window(self):
        """A mid-run stats reset opens a fresh utilisation window: the
        busy fraction is measured against cycles since the reset, not
        diluted over the whole run (which once made a saturated link
        read as nearly idle after a long pre-reset warm-up)."""
        net, _ = small_network()
        # Long idle warm-up, then reset, then a busy measurement phase.
        net.run(1000)
        net.reset_stats()
        reset_cycle = net.cycle
        for _ in range(10):
            net.offer(Packet(src=0, dst=3, length=4))
        net.drain()
        loads = net.link_loads()
        window = net.cycle - reset_cycle
        busiest = max(loads.values())
        carried = max(l.flits_carried for l in net.links)
        assert carried > 0
        # 40 flits crossed the hot link inside the post-reset window.
        assert busiest == pytest.approx(carried / window)
        # The old bug: dividing by the full run length would cap the
        # reading at roughly half this value.
        assert busiest > carried / net.cycle

    def test_buffer_sampling_toggle(self):
        net, _ = small_network(sample_buffers=True)
        net.offer(Packet(src=0, dst=3, length=2))
        net.drain()
        sampled = any(
            buf.mean_occupancy > 0
            for sw in net.switches
            for buf in sw.inputs
        )
        assert sampled


class TestPaperNetwork:
    def test_all_four_flows_deliver(self):
        topo = paper_topology()
        net = Network(topo, paper_routing(topo, "overlap"))
        for src, dst in paper_flow_pairs():
            net.offer(Packet(src=src, dst=dst, length=4))
        net.drain()
        for _, dst in paper_flow_pairs():
            assert net.rx[dst].received_packets == 1

    def test_overlap_case_creates_contention(self):
        topo = paper_topology()
        net = Network(topo, paper_routing(topo, "overlap"))
        for k in range(25):
            for src, dst in paper_flow_pairs():
                net.offer(
                    Packet(src=src, dst=dst, length=4, injection_cycle=0)
                )
        net.drain()
        assert net.total_blocked_flit_cycles > 0

    def test_disjoint_case_is_contention_free(self):
        topo = paper_topology()
        net = Network(topo, paper_routing(topo, "disjoint"))
        for k in range(25):
            for src, dst in paper_flow_pairs():
                net.offer(
                    Packet(src=src, dst=dst, length=4, injection_cycle=0)
                )
        net.drain()
        assert net.total_blocked_flit_cycles == 0
