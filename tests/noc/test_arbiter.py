"""Unit tests for the arbitration policies."""

import pytest

from repro.noc.arbiter import (
    FixedPriorityArbiter,
    MatrixArbiter,
    RoundRobinArbiter,
    make_arbiter,
)


class TestFixedPriority:
    def test_grants_lowest_index(self):
        arb = FixedPriorityArbiter(4)
        assert arb.grant([2, 1, 3]) == 1
        assert arb.grant([0, 3]) == 0

    def test_starves_high_index_under_contention(self):
        arb = FixedPriorityArbiter(2)
        winners = [arb.grant([0, 1]) for _ in range(10)]
        assert winners == [0] * 10

    def test_no_requests_returns_none(self):
        assert FixedPriorityArbiter(2).grant([]) is None


class TestRoundRobin:
    def test_rotates_under_full_contention(self):
        arb = RoundRobinArbiter(3)
        winners = [arb.grant([0, 1, 2]) for _ in range(6)]
        assert winners == [0, 1, 2, 0, 1, 2]

    def test_pointer_skips_idle_requesters(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([1, 3]) == 1
        assert arb.grant([1, 3]) == 3
        assert arb.grant([1, 3]) == 1

    def test_single_requester_always_wins(self):
        arb = RoundRobinArbiter(4)
        for _ in range(5):
            assert arb.grant([2]) == 2

    def test_fairness_over_long_run(self):
        arb = RoundRobinArbiter(4)
        for _ in range(400):
            arb.grant([0, 1, 2, 3])
        assert arb.grant_counts == [100, 100, 100, 100]

    def test_reset_restores_pointer(self):
        arb = RoundRobinArbiter(3)
        arb.grant([0, 1, 2])
        arb.reset()
        assert arb.grant([0, 1, 2]) == 0
        assert arb.grants == 1


class TestMatrix:
    def test_least_recently_served_order(self):
        arb = MatrixArbiter(3)
        assert arb.grant([0, 1, 2]) == 0
        # 0 just won, so it loses to both 1 and 2 now.
        assert arb.grant([0, 1]) == 1
        assert arb.grant([0, 1]) == 0
        assert arb.grant([1, 2]) == 2

    def test_fairness_under_contention(self):
        arb = MatrixArbiter(4)
        for _ in range(400):
            arb.grant([0, 1, 2, 3])
        assert arb.grant_counts == [100, 100, 100, 100]

    def test_reset(self):
        arb = MatrixArbiter(2)
        arb.grant([0, 1])
        arb.reset()
        assert arb.grant([0, 1]) == 0


class TestFactoryAndBase:
    def test_make_arbiter_by_name(self):
        assert isinstance(
            make_arbiter("round_robin", 2), RoundRobinArbiter
        )
        assert isinstance(
            make_arbiter("fixed_priority", 2), FixedPriorityArbiter
        )
        assert isinstance(make_arbiter("matrix", 2), MatrixArbiter)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown arbitration"):
            make_arbiter("lottery", 2)

    def test_requester_count_validation(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    def test_grant_counts_track_winners(self):
        arb = RoundRobinArbiter(2)
        arb.grant([0])
        arb.grant([0, 1])
        assert arb.grants == 2
        assert sum(arb.grant_counts) == 2
