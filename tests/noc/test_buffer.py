"""Unit tests for the bounded flit FIFO."""

import pytest

from repro.noc.buffer import BufferEmptyError, BufferFullError, FlitBuffer
from repro.noc.flit import Packet


def flits(n, length=None):
    p = Packet(src=0, dst=1, length=length or n)
    return p.flit_list()[:n]


class TestFifoSemantics:
    def test_fifo_order(self):
        buf = FlitBuffer(4)
        fs = flits(4)
        for f in fs:
            buf.push(f)
        assert [buf.pop() for _ in range(4)] == fs

    def test_peek_does_not_consume(self):
        buf = FlitBuffer(2)
        fs = flits(2)
        buf.push(fs[0])
        assert buf.peek() is fs[0]
        assert len(buf) == 1

    def test_head_returns_none_when_empty(self):
        assert FlitBuffer(1).head() is None

    def test_push_into_full_raises(self):
        buf = FlitBuffer(1)
        fs = flits(2, length=2)
        buf.push(fs[0])
        with pytest.raises(BufferFullError):
            buf.push(fs[1])

    def test_pop_empty_raises(self):
        with pytest.raises(BufferEmptyError):
            FlitBuffer(1).pop()

    def test_peek_empty_raises(self):
        with pytest.raises(BufferEmptyError):
            FlitBuffer(1).peek()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlitBuffer(0)

    def test_free_slots_and_flags(self):
        buf = FlitBuffer(2)
        assert buf.is_empty and not buf.is_full
        assert buf.free_slots == 2
        fs = flits(2)
        buf.push(fs[0])
        assert buf.free_slots == 1
        buf.push(fs[1])
        assert buf.is_full and buf.free_slots == 0

    def test_clear(self):
        buf = FlitBuffer(3)
        for f in flits(3):
            buf.push(f)
        buf.clear()
        assert buf.is_empty

    def test_iteration_in_order(self):
        buf = FlitBuffer(3)
        fs = flits(3)
        for f in fs:
            buf.push(f)
        assert list(buf) == fs


class TestStatistics:
    def test_push_pop_counters(self):
        buf = FlitBuffer(4)
        fs = flits(3)
        for f in fs:
            buf.push(f)
        buf.pop()
        assert buf.total_pushes == 3
        assert buf.total_pops == 1

    def test_peak_occupancy(self):
        buf = FlitBuffer(4)
        fs = flits(3)
        buf.push(fs[0])
        buf.push(fs[1])
        buf.pop()
        buf.push(fs[2])
        assert buf.peak_occupancy == 2

    def test_occupancy_sampling(self):
        buf = FlitBuffer(2)
        fs = flits(2)
        buf.sample()  # empty
        buf.push(fs[0])
        buf.sample()  # one
        buf.push(fs[1])
        buf.sample()  # two (full)
        assert buf.mean_occupancy == pytest.approx(1.0)
        assert buf.full_fraction == pytest.approx(1 / 3)

    def test_mean_occupancy_zero_without_samples(self):
        assert FlitBuffer(2).mean_occupancy == 0.0
        assert FlitBuffer(2).full_fraction == 0.0

    def test_reset_stats_keeps_contents(self):
        buf = FlitBuffer(4)
        fs = flits(2)
        for f in fs:
            buf.push(f)
        buf.sample()
        buf.reset_stats()
        assert len(buf) == 2
        assert buf.total_pushes == 0
        assert buf.peak_occupancy == 2  # reset to current occupancy
        assert buf.mean_occupancy == 0.0
