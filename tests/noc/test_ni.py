"""Unit tests for the network interfaces."""

import pytest

from repro.noc.flit import Packet
from repro.noc.link import Link
from repro.noc.ni import NetworkInterface, ReassemblyBuffer


class TestNetworkInterface:
    def make_ni(self, credits=4):
        ni = NetworkInterface(0)
        link = Link(delay=1, name="inj")
        ni.connect(link, credits=credits)
        return ni, link

    def test_offer_segments_into_flits(self):
        ni, _ = self.make_ni()
        ni.offer(Packet(src=0, dst=1, length=5))
        assert ni.pending_flits == 5
        assert ni.offered_packets == 1

    def test_inject_one_flit_per_cycle(self):
        ni, link = self.make_ni()
        ni.offer(Packet(src=0, dst=1, length=3))
        assert ni.inject(0)
        assert ni.pending_flits == 2
        assert link.occupancy == 1

    def test_inject_respects_credits(self):
        ni, _ = self.make_ni(credits=2)
        ni.offer(Packet(src=0, dst=1, length=4))
        assert ni.inject(0)
        assert ni.inject(1)
        assert not ni.inject(2)  # credits exhausted
        assert ni.stall_cycles == 1
        ni.credit()
        assert ni.inject(3)

    def test_idle_when_empty(self):
        ni, _ = self.make_ni()
        assert ni.idle
        assert not ni.inject(0)

    def test_injected_packet_counter_on_tail(self):
        ni, _ = self.make_ni()
        ni.offer(Packet(src=0, dst=1, length=2))
        ni.inject(0)
        assert ni.injected_packets == 0
        ni.inject(1)
        assert ni.injected_packets == 1
        assert ni.injected_flits == 2

    def test_unconnected_inject_raises(self):
        ni = NetworkInterface(0)
        ni.offer(Packet(src=0, dst=1, length=1))
        with pytest.raises(RuntimeError, match="not connected"):
            ni.inject(0)

    def test_double_connect_rejected(self):
        ni, _ = self.make_ni()
        with pytest.raises(RuntimeError, match="already connected"):
            ni.connect(Link(), credits=1)

    def test_peak_queue_tracked(self):
        ni, _ = self.make_ni()
        ni.offer(Packet(src=0, dst=1, length=3))
        ni.offer(Packet(src=0, dst=1, length=3))
        assert ni.peak_queue == 6

    def test_stalled_head_flit_accumulates(self):
        ni, _ = self.make_ni(credits=0)
        p = Packet(src=0, dst=1, length=1)
        ni.offer(p)
        ni.inject(0)
        ni.inject(1)
        # The queued head flit recorded both stalled cycles.
        assert ni.stall_cycles == 2


class TestReassemblyBuffer:
    def test_reassembles_in_order_packet(self):
        done = []
        rx = ReassemblyBuffer(
            1, on_packet=lambda p, now, fs: done.append((p, now))
        )
        p = Packet(src=0, dst=1, length=3)
        flits = p.flit_list()
        assert rx.receive(flits[0], 10) is None
        assert rx.receive(flits[1], 11) is None
        assert rx.receive(flits[2], 12) is p
        assert done == [(p, 12)]
        assert rx.received_packets == 1
        assert rx.received_flits == 3

    def test_tolerates_interleaving(self):
        rx = ReassemblyBuffer(1)
        a = Packet(src=0, dst=1, length=2)
        b = Packet(src=2, dst=1, length=2)
        fa, fb = a.flit_list(), b.flit_list()
        rx.receive(fa[0], 0)
        rx.receive(fb[0], 1)
        assert rx.partial_packets == 2
        assert rx.receive(fa[1], 2) is a
        assert rx.receive(fb[1], 3) is b
        assert rx.partial_packets == 0

    def test_misrouted_flit_raises(self):
        rx = ReassemblyBuffer(1)
        wrong = Packet(src=0, dst=2, length=1).flit_list()[0]
        with pytest.raises(RuntimeError, match="routing tables"):
            rx.receive(wrong, 0)
        assert rx.misrouted_flits == 1

    def test_single_flit_packet_completes_immediately(self):
        rx = ReassemblyBuffer(1)
        p = Packet(src=0, dst=1, length=1)
        assert rx.receive(p.flit_list()[0], 5) is p

    def test_reset_stats(self):
        rx = ReassemblyBuffer(1)
        p = Packet(src=0, dst=1, length=1)
        rx.receive(p.flit_list()[0], 0)
        rx.reset_stats()
        assert rx.received_flits == 0
        assert rx.received_packets == 0
