"""Unit tests for flits and packets."""

import pytest

from repro.noc.flit import Flit, FlitType, Packet


class TestPacket:
    def test_basic_construction(self):
        p = Packet(src=0, dst=3, length=5, injection_cycle=7)
        assert p.src == 0
        assert p.dst == 3
        assert p.length == 5
        assert p.injection_cycle == 7
        assert p.burst_id is None

    def test_unique_pids(self):
        a = Packet(src=0, dst=1, length=1)
        b = Packet(src=0, dst=1, length=1)
        assert a.pid != b.pid

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, length=0)

    def test_rejects_negative_endpoints(self):
        with pytest.raises(ValueError):
            Packet(src=-1, dst=1, length=1)
        with pytest.raises(ValueError):
            Packet(src=0, dst=-2, length=1)

    def test_single_flit_packet_is_head_tail(self):
        p = Packet(src=0, dst=1, length=1)
        flits = p.flit_list()
        assert len(flits) == 1
        assert flits[0].kind is FlitType.HEAD_TAIL
        assert flits[0].is_head and flits[0].is_tail

    def test_two_flit_packet_is_head_then_tail(self):
        p = Packet(src=0, dst=1, length=2)
        kinds = [f.kind for f in p.flit_list()]
        assert kinds == [FlitType.HEAD, FlitType.TAIL]

    def test_long_packet_structure(self):
        p = Packet(src=2, dst=5, length=6)
        flits = p.flit_list()
        assert len(flits) == 6
        assert flits[0].kind is FlitType.HEAD
        assert all(f.kind is FlitType.BODY for f in flits[1:-1])
        assert flits[-1].kind is FlitType.TAIL
        assert [f.seq for f in flits] == list(range(6))

    def test_flits_carry_packet_endpoints(self):
        p = Packet(src=3, dst=7, length=3)
        for f in p.flits():
            assert f.src == 3
            assert f.dst == 7
            assert f.packet is p

    def test_burst_id_carried(self):
        p = Packet(src=0, dst=1, length=2, burst_id=42)
        assert p.burst_id == 42


class TestFlitType:
    @pytest.mark.parametrize(
        "kind,is_head,is_tail",
        [
            (FlitType.HEAD, True, False),
            (FlitType.BODY, False, False),
            (FlitType.TAIL, False, True),
            (FlitType.HEAD_TAIL, True, True),
        ],
    )
    def test_head_tail_flags(self, kind, is_head, is_tail):
        assert kind.is_head == is_head
        assert kind.is_tail == is_tail


class TestFlit:
    def test_flags_precomputed(self):
        p = Packet(src=1, dst=2, length=3)
        head, body, tail = p.flit_list()
        assert head.is_head and not head.is_tail
        assert not body.is_head and not body.is_tail
        assert tail.is_tail and not tail.is_head

    def test_stall_cycles_start_at_zero(self):
        p = Packet(src=0, dst=1, length=1)
        assert p.flit_list()[0].stall_cycles == 0

    def test_repr_mentions_endpoints(self):
        p = Packet(src=4, dst=9, length=1)
        text = repr(p.flit_list()[0])
        assert "4->9" in text
