"""Unit tests for the inter-switch link pipeline."""

import pytest

from repro.noc.flit import Packet
from repro.noc.link import Link


def one_flit():
    return Packet(src=0, dst=1, length=1).flit_list()[0]


class TestFlitPath:
    def test_delivery_after_delay(self):
        link = Link(delay=2)
        f = one_flit()
        link.send(f, now=5)
        assert link.deliver(5) == []
        assert link.deliver(6) == []
        assert link.deliver(7) == [f]

    def test_unit_delay_default(self):
        link = Link()
        f = one_flit()
        link.send(f, now=0)
        assert link.deliver(1) == [f]

    def test_one_flit_per_cycle_enforced(self):
        link = Link()
        link.send(one_flit(), now=3)
        with pytest.raises(RuntimeError, match="one flit per cycle"):
            link.send(one_flit(), now=3)

    def test_consecutive_cycles_allowed(self):
        link = Link()
        a, b = one_flit(), one_flit()
        link.send(a, now=0)
        link.send(b, now=1)
        assert link.deliver(1) == [a]
        assert link.deliver(2) == [b]

    def test_batch_delivery_of_overdue_flits(self):
        link = Link(delay=1)
        a, b = one_flit(), one_flit()
        link.send(a, now=0)
        link.send(b, now=1)
        assert link.deliver(10) == [a, b]

    def test_occupancy(self):
        link = Link(delay=3)
        assert link.occupancy == 0
        link.send(one_flit(), now=0)
        assert link.occupancy == 1
        link.deliver(3)
        assert link.occupancy == 0

    def test_delay_validation(self):
        with pytest.raises(ValueError):
            Link(delay=0)


class TestCreditPath:
    def test_credit_round_trip(self):
        link = Link(delay=2)
        link.return_credit(now=4)
        assert link.collect_credits(5) == 0
        assert link.collect_credits(6) == 1

    def test_credit_batching(self):
        link = Link(delay=1)
        link.return_credit(now=0, count=2)
        link.return_credit(now=0)
        assert link.collect_credits(1) == 3

    def test_credits_independent_of_flits(self):
        link = Link(delay=1)
        link.send(one_flit(), now=0)
        link.return_credit(now=0)
        assert link.collect_credits(1) == 1
        assert len(link.deliver(1)) == 1


class TestStatistics:
    def test_utilization(self):
        link = Link()
        for now in range(5):
            link.send(one_flit(), now=now)
        assert link.utilization(10) == pytest.approx(0.5)

    def test_utilization_clamped_and_safe(self):
        link = Link()
        assert link.utilization(0) == 0.0
        link.send(one_flit(), now=0)
        assert link.utilization(1) == 1.0

    def test_reset_stats(self):
        link = Link()
        link.send(one_flit(), now=0)
        link.reset_stats()
        assert link.flits_carried == 0
        assert link.busy_cycles == 0
