"""Unit tests for routing functions and table builders."""

import pytest

from repro.noc.flit import Packet
from repro.noc.routing import (
    MultiPathTableRouting,
    RoutingError,
    TableRouting,
    XYRouting,
    build_multipath_tables,
    build_shortest_path_tables,
    build_tables_from_paths,
    paper_routing,
)
from repro.noc.topology import mesh, paper_flow_pairs, paper_topology, ring


def head_flit(src, dst, pid_salt=0):
    return Packet(src=src, dst=dst, length=1).flit_list()[0]


class TestTableRouting:
    def test_lookup(self):
        r = TableRouting({0: {5: 2}})
        assert r.output_port(0, head_flit(0, 5)) == 2

    def test_missing_entry_raises(self):
        r = TableRouting({0: {5: 2}})
        with pytest.raises(RoutingError):
            r.output_port(0, head_flit(0, 6))
        with pytest.raises(RoutingError):
            r.output_port(1, head_flit(0, 5))

    def test_ports_for(self):
        r = TableRouting({0: {5: 2}})
        assert r.ports_for(0, 5) == [2]
        assert r.ports_for(0, 9) == []

    def test_entry_count(self):
        r = TableRouting({0: {5: 2, 6: 1}, 1: {5: 0}})
        assert r.entries() == 3


class TestMultiPathRouting:
    def test_single_candidate_is_deterministic(self):
        r = MultiPathTableRouting({0: {5: [3]}})
        for _ in range(5):
            assert r.output_port(0, head_flit(0, 5)) == 3

    def test_choice_is_per_packet_stable(self):
        r = MultiPathTableRouting({0: {5: [1, 2]}})
        f = head_flit(0, 5)
        first = r.output_port(0, f)
        # Same packet -> same port, every time (wormhole safety).
        for _ in range(10):
            assert r.output_port(0, f) == first

    def test_spreads_over_candidates(self):
        r = MultiPathTableRouting({0: {5: [1, 2]}})
        ports = {
            r.output_port(0, head_flit(0, 5)) for _ in range(64)
        }
        assert ports == {1, 2}

    def test_empty_candidates_rejected(self):
        with pytest.raises(RoutingError):
            MultiPathTableRouting({0: {5: []}})

    def test_missing_entry_raises(self):
        r = MultiPathTableRouting({0: {5: [1]}})
        with pytest.raises(RoutingError):
            r.output_port(0, head_flit(0, 7))

    def test_entries_counts_all_ports(self):
        r = MultiPathTableRouting({0: {5: [1, 2]}, 1: {5: [0]}})
        assert r.entries() == 3


class TestXYRouting:
    def test_routes_reach_destination(self):
        topo = mesh(3, 3)
        r = XYRouting(topo, 3, 3)
        # Walk a packet from node 0 (switch 0) to node 8 (switch 8).
        flit = head_flit(0, 8)
        switch = 0
        hops = 0
        while True:
            port = r.output_port(switch, flit)
            ep = topo.switch_outputs[switch][port]
            if ep.kind == "node":
                assert ep.target == 8
                break
            switch = ep.target
            hops += 1
            assert hops < 10
        assert hops == 4  # manhattan distance in the 3x3 mesh

    def test_x_before_y(self):
        topo = mesh(3, 3)
        r = XYRouting(topo, 3, 3)
        port = r.output_port(0, head_flit(0, 8))
        ep = topo.switch_outputs[0][port]
        assert ep.target == 1  # move in x first

    def test_local_delivery(self):
        topo = mesh(2, 2)
        r = XYRouting(topo, 2, 2)
        port = r.output_port(0, head_flit(1, 0))
        assert topo.switch_outputs[0][port].kind == "node"

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(RoutingError):
            XYRouting(mesh(2, 2), 3, 3)

    def test_missing_mesh_link(self):
        # A 1x2 "mesh" missing its forward link: XY routing needs
        # 0 -> 1 and must report it as unroutable.
        from repro.noc.topology import Topology

        topo = Topology(2)
        topo.add_edge(1, 0)  # only the reverse direction exists
        topo.attach(0)
        topo.attach(1)
        r = XYRouting(topo, 2, 1)
        with pytest.raises(RoutingError):
            r.output_port(0, head_flit(0, 1))


class TestShortestPathBuilder:
    def test_all_pairs_reachable(self):
        topo = mesh(3, 2)
        r = build_shortest_path_tables(topo)
        for dst in range(topo.n_nodes):
            for s in range(topo.n_switches):
                assert r.ports_for(s, dst), (s, dst)

    def test_paths_are_minimal(self):
        topo = mesh(3, 3)
        r = build_shortest_path_tables(topo)
        # node 0 on switch 0, node 8 on switch 8: distance 4.
        flit = head_flit(0, 8)
        switch, hops = 0, 0
        while True:
            port = r.output_port(switch, flit)
            ep = topo.switch_outputs[switch][port]
            if ep.kind == "node":
                break
            switch = ep.target
            hops += 1
        assert hops == 4

    def test_subset_of_destinations(self):
        topo = mesh(2, 2)
        r = build_shortest_path_tables(topo, destinations=[3])
        assert r.ports_for(0, 3)
        assert not r.ports_for(0, 1)


class TestMultipathBuilder:
    def test_offers_two_paths_on_diagonal(self):
        topo = mesh(2, 2)
        r = build_multipath_tables(topo, max_paths=2)
        # Switch 0 toward node 3 (switch 3): both 0->1 and 0->2 minimal.
        assert len(r.ports_for(0, 3)) == 2

    def test_max_paths_one_degenerates_to_single(self):
        topo = mesh(2, 2)
        r = build_multipath_tables(topo, max_paths=1)
        for s in range(4):
            for dst in range(4):
                assert len(r.ports_for(s, dst)) == 1

    def test_max_paths_validation(self):
        with pytest.raises(RoutingError):
            build_multipath_tables(mesh(2, 2), max_paths=0)


class TestPathTableBuilder:
    def test_explicit_path(self):
        topo = paper_topology()
        r = build_tables_from_paths(topo, {(0, 7): (0, 1, 4, 5)})
        assert r.ports_for(0, 7)
        assert r.ports_for(1, 7)
        assert r.ports_for(4, 7)
        assert r.ports_for(5, 7)

    def test_wrong_start_rejected(self):
        topo = paper_topology()
        with pytest.raises(RoutingError, match="starts at"):
            build_tables_from_paths(topo, {(0, 7): (1, 4, 5)})

    def test_wrong_end_rejected(self):
        topo = paper_topology()
        with pytest.raises(RoutingError, match="ends at"):
            build_tables_from_paths(topo, {(0, 7): (0, 1, 4)})

    def test_conflicting_routes_rejected(self):
        topo = paper_topology()
        with pytest.raises(RoutingError, match="conflicting"):
            build_tables_from_paths(
                topo,
                {(0, 7): (0, 1, 4, 5), (1, 7): (2, 1, 2, 5)},
            )


class TestPaperRouting:
    @pytest.mark.parametrize("case", ["overlap", "disjoint"])
    def test_cases_route_all_flows(self, case):
        topo = paper_topology()
        r = paper_routing(topo, case)
        for src, dst in paper_flow_pairs():
            switch = topo.switch_of_node(src)
            flit = head_flit(src, dst)
            hops = 0
            while True:
                port = r.output_port(switch, flit)
                ep = topo.switch_outputs[switch][port]
                if ep.kind == "node":
                    assert ep.target == dst
                    break
                switch = ep.target
                hops += 1
                assert hops < 10
            assert hops == 3  # all paper flows are 3-hop diagonals

    def test_overlap_case_shares_middle_links(self):
        topo = paper_topology()
        r = paper_routing(topo, "overlap")
        # Flows 0->7 and 1->6 both use switch 1 -> switch 4.
        port_14 = topo.output_port_to_switch(1, 4)
        assert r.ports_for(1, 7) == [port_14]
        assert r.ports_for(1, 6) == [port_14]

    def test_disjoint_case_separates_flows(self):
        topo = paper_topology()
        r = paper_routing(topo, "disjoint")
        # Flow 0->7 goes along the top row; it never enters switch 4.
        assert not r.ports_for(4, 7)

    def test_split_case_offers_both(self):
        topo = paper_topology()
        r = paper_routing(topo, "split")
        assert len(r.ports_for(0, 7)) >= 1
        # At the divergence switch both options exist.
        assert len(r.ports_for(1, 7)) == 2

    def test_unknown_case_rejected(self):
        with pytest.raises(RoutingError, match="unknown paper routing"):
            paper_routing(paper_topology(), "zigzag")


class TestUpDownRouting:
    """build_updown_tables: deadlock-free delivery on every family."""

    def _topologies(self):
        from repro.noc.topology import (
            fully_connected,
            spidergon,
            star,
            torus,
            tree,
        )

        return [
            ring(6),
            ring(7),
            spidergon(8),
            spidergon(12),
            mesh(3, 3),
            torus(3, 3),
            tree(2, 3),
            star(4),
            fully_connected(4),
        ]

    def test_delivers_every_pair(self):
        from repro.noc.routing import build_updown_tables

        for topo in self._topologies():
            r = build_updown_tables(topo)
            for src in range(topo.n_nodes):
                for dst in range(topo.n_nodes):
                    if src == dst:
                        continue
                    switch = topo.switch_of_node(src)
                    flit = head_flit(src, dst)
                    hops = 0
                    while True:
                        port = r.output_port(switch, flit)
                        ep = topo.switch_outputs[switch][port]
                        if ep.kind == "node":
                            assert ep.target == dst, topo.name
                            break
                        switch = ep.target
                        hops += 1
                        assert hops <= 2 * topo.n_switches, topo.name

    def test_channel_dependencies_acyclic(self):
        from repro.noc.deadlock import assert_deadlock_free
        from repro.noc.routing import build_updown_tables

        for topo in self._topologies():
            r = build_updown_tables(topo)
            # Raises DeadlockError on any channel-dependency cycle;
            # notably ring/spidergon, where BFS shortest paths cycle.
            assert_deadlock_free(topo, r, list(range(topo.n_nodes)))

    def test_shortest_paths_cycle_where_updown_does_not(self):
        from repro.noc.deadlock import DeadlockError, assert_deadlock_free

        topo = ring(6)
        r = build_shortest_path_tables(topo)
        with pytest.raises(DeadlockError):
            assert_deadlock_free(topo, r, list(range(topo.n_nodes)))

    def test_routes_stay_minimal_on_trees(self):
        from repro.noc.routing import build_updown_tables
        from repro.noc.topology import tree

        # On a tree there is a single path per pair; up*/down* must
        # find exactly it (no detours through the root when the pair
        # shares a lower subtree).
        topo = tree(2, 3)
        r = build_updown_tables(topo)
        shortest = build_shortest_path_tables(topo)
        for src in range(topo.n_nodes):
            for dst in range(topo.n_nodes):
                if src != dst:
                    s = topo.switch_of_node(src)
                    assert r.ports_for(s, dst) == shortest.ports_for(s, dst)

    def test_bad_root_rejected(self):
        from repro.noc.routing import build_updown_tables

        with pytest.raises(RoutingError, match="root"):
            build_updown_tables(ring(4), root=9)
