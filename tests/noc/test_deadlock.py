"""Unit tests for the channel-dependency deadlock analyzer."""

import pytest

from repro.noc.deadlock import (
    DeadlockError,
    assert_deadlock_free,
    channel_dependency_graph,
    find_dependency_cycle,
    is_deadlock_free,
)
from repro.noc.routing import (
    TableRouting,
    XYRouting,
    build_shortest_path_tables,
    build_tables_from_paths,
    paper_routing,
)
from repro.noc.topology import Topology, mesh, paper_topology, ring


class TestCycleFinder:
    def test_empty_graph_is_acyclic(self):
        assert find_dependency_cycle({}) is None

    def test_simple_cycle_found(self):
        graph = {
            (0, 1): {(1, 2)},
            (1, 2): {(2, 0)},
            (2, 0): {(0, 1)},
        }
        cycle = find_dependency_cycle(graph)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert len(set(cycle[:-1])) == 3

    def test_dag_is_acyclic(self):
        graph = {
            (0, 1): {(1, 2), (1, 3)},
            (1, 2): {(2, 3)},
            (1, 3): set(),
            (2, 3): set(),
        }
        assert find_dependency_cycle(graph) is None

    def test_self_dependency_is_a_cycle(self):
        graph = {(0, 1): {(0, 1)}}
        assert find_dependency_cycle(graph) is not None


class TestKnownRoutings:
    def test_xy_routing_on_mesh_is_deadlock_free(self):
        topo = mesh(3, 3)
        routing = XYRouting(topo, 3, 3)
        assert is_deadlock_free(topo, routing)

    def test_shortest_path_on_mesh_is_deadlock_free(self):
        # Lowest-port tie-breaking on our meshes yields x-then-y
        # preference, which is dimension-ordered and safe.
        topo = mesh(3, 3)
        assert is_deadlock_free(topo, build_shortest_path_tables(topo))

    @pytest.mark.parametrize("case", ["overlap", "disjoint", "split"])
    def test_paper_routing_cases_are_deadlock_free(self, case):
        topo = paper_topology()
        routing = paper_routing(topo, case)
        destinations = [4, 5, 6, 7]
        assert_deadlock_free(topo, routing, destinations)

    def test_cyclic_ring_routing_detected(self):
        # Force every flow clockwise around a 4-ring: the four
        # clockwise channels form a dependency cycle.
        topo = ring(4)
        paths = {
            (0, 2): (0, 1, 2),
            (1, 3): (1, 2, 3),
            (2, 0): (2, 3, 0),
            (3, 1): (3, 0, 1),
        }
        routing = build_tables_from_paths(topo, paths)
        assert not is_deadlock_free(topo, routing)
        with pytest.raises(DeadlockError, match="cycle"):
            assert_deadlock_free(topo, routing)

    def test_partial_ring_traffic_is_safe(self):
        # Only three of the four clockwise flows: chain, not cycle.
        topo = ring(4)
        paths = {
            (0, 2): (0, 1, 2),
            (1, 3): (1, 2, 3),
        }
        routing = build_tables_from_paths(topo, paths)
        assert is_deadlock_free(topo, routing, destinations=[2, 3])


class TestGraphConstruction:
    def test_single_hop_flow_has_no_dependencies(self):
        # src and dst on adjacent switches: one channel, no chain.
        topo = Topology(2)
        topo.add_edge(0, 1, bidirectional=True)
        a = topo.attach(0)
        b = topo.attach(1)
        routing = build_shortest_path_tables(topo)
        graph = channel_dependency_graph(topo, routing, [b])
        assert graph.get((0, 1), set()) == set()

    def test_two_hop_flow_creates_one_dependency(self):
        topo = Topology(3)
        topo.add_edge(0, 1, bidirectional=True)
        topo.add_edge(1, 2, bidirectional=True)
        topo.attach(0)
        dst = topo.attach(2)
        routing = build_shortest_path_tables(topo)
        graph = channel_dependency_graph(topo, routing, [dst])
        assert (1, 2) in graph[(0, 1)]

    def test_destination_subset_respected(self):
        topo = paper_topology()
        routing = paper_routing(topo, "overlap")
        graph = channel_dependency_graph(topo, routing, [7])
        # Only flow 0->7's path channels appear: 0-1-4-5.
        channels = set(graph) | {
            c for deps in graph.values() for c in deps
        }
        assert channels == {(0, 1), (1, 4), (4, 5)}
