"""Unit tests for topology construction and the paper platform."""

import pytest

from repro.noc.topology import (
    PAPER_FLOWS,
    PAPER_TG_LOAD,
    Topology,
    TopologyError,
    fully_connected,
    mesh,
    paper_flow_pairs,
    paper_hot_links,
    paper_topology,
    ring,
    spidergon,
    star,
    torus,
)


class TestTopologyCore:
    def test_manual_construction(self):
        t = Topology(2)
        t.add_edge(0, 1, bidirectional=True)
        n0 = t.attach(0)
        n1 = t.attach(1)
        assert t.n_nodes == 2
        assert t.switch_of_node(n0) == 0
        assert t.switch_of_node(n1) == 1
        assert t.n_inputs(0) == 2  # link from 1 + node 0
        assert t.n_outputs(0) == 2

    def test_port_lookup(self):
        t = Topology(2)
        t.add_edge(0, 1)
        node = t.attach(0)
        assert t.output_port_to_switch(0, 1) == 0
        assert t.output_port_to_node(0, node) == 1

    def test_missing_link_raises(self):
        t = Topology(2)
        with pytest.raises(TopologyError):
            t.output_port_to_switch(0, 1)

    def test_self_loop_rejected(self):
        t = Topology(2)
        with pytest.raises(TopologyError):
            t.add_edge(1, 1)

    def test_switch_range_checked(self):
        t = Topology(2)
        with pytest.raises(TopologyError):
            t.add_edge(0, 5)
        with pytest.raises(TopologyError):
            t.n_inputs(9)

    def test_node_range_checked(self):
        t = Topology(1)
        with pytest.raises(TopologyError):
            t.switch_of_node(0)

    def test_validate_requires_connected_switches(self):
        t = Topology(2)
        t.add_edge(0, 1)  # switch 0 has no input, switch 1 no output
        with pytest.raises(TopologyError):
            t.validate()

    def test_switch_edges_lists_directed_links(self):
        t = Topology(2)
        t.add_edge(0, 1, bidirectional=True)
        assert sorted(t.switch_edges()) == [(0, 1, 1), (1, 0, 1)]

    def test_nodes_on_switch(self):
        t = Topology(1)
        t.add_edge  # no edges needed for this check
        a = t.attach(0)
        b = t.attach(0)
        assert t.nodes_on_switch(0) == [a, b]


class TestFactories:
    def test_mesh_shape(self):
        t = mesh(3, 2)
        assert t.n_switches == 6
        assert t.n_nodes == 6
        # Corner switch: 2 neighbours + 1 node.
        assert t.n_inputs(0) == 3
        # Middle of the top row: 3 neighbours + 1 node.
        assert t.n_inputs(1) == 4

    def test_mesh_link_count(self):
        t = mesh(3, 3)
        # 2D mesh: 2*w*h - w - h bidirectional links -> x2 directed.
        assert len(t.switch_edges()) == 2 * (2 * 9 - 3 - 3)

    def test_torus_is_regular(self):
        t = torus(3, 3)
        for s in range(9):
            assert t.n_inputs(s) == 5  # 4 neighbours + 1 node

    def test_torus_minimum_size(self):
        with pytest.raises(TopologyError):
            torus(2, 3)

    def test_ring(self):
        t = ring(4)
        assert t.n_switches == 4
        for s in range(4):
            assert t.n_inputs(s) == 3  # 2 neighbours + node

    def test_star(self):
        t = star(3)
        assert t.n_switches == 4
        assert t.n_inputs(0) == 3  # three leaves, no hub node
        assert t.n_nodes == 3

    def test_fully_connected(self):
        t = fully_connected(3)
        assert len(t.switch_edges()) == 6

    def test_spidergon(self):
        t = spidergon(6)
        # Ring degree 2 + one cross link + node = 4 inputs everywhere.
        for s in range(6):
            assert t.n_inputs(s) == 4

    def test_spidergon_needs_even_count(self):
        with pytest.raises(TopologyError):
            spidergon(5)

    def test_mesh_validates(self):
        mesh(4, 4).validate()


class TestPaperTopology:
    def test_dimensions(self, paper_topo):
        assert paper_topo.n_switches == 6
        assert paper_topo.n_nodes == 8  # 4 TG + 4 TR endpoints

    def test_corners_host_devices(self, paper_topo):
        corners = [0, 2, 3, 5]
        for i, corner in enumerate(corners):
            assert paper_topo.switch_of_node(i) == corner  # TG
            assert paper_topo.switch_of_node(4 + i) == corner  # TR

    def test_middle_switches_have_no_nodes(self, paper_topo):
        assert paper_topo.nodes_on_switch(1) == []
        assert paper_topo.nodes_on_switch(4) == []

    def test_flows_are_diagonal(self, paper_topo):
        for src, dst in paper_flow_pairs():
            s = paper_topo.switch_of_node(src)
            d = paper_topo.switch_of_node(dst)
            # Diagonal corners of the 3x2 grid are 3 hops apart.
            sx, sy = s % 3, s // 3
            dx, dy = d % 3, d // 3
            assert abs(sx - dx) + abs(sy - dy) == 3

    def test_flow_pairing_is_a_bijection(self):
        tgs = [tg for tg, _ in PAPER_FLOWS]
        trs = [tr for _, tr in PAPER_FLOWS]
        assert sorted(tgs) == [0, 1, 2, 3]
        assert sorted(trs) == [0, 1, 2, 3]

    def test_hot_links_are_the_middle_column(self):
        assert set(paper_hot_links()) == {(1, 4), (4, 1)}

    def test_paper_load_constant(self):
        assert PAPER_TG_LOAD == pytest.approx(0.45)

    def test_validates(self, paper_topo):
        paper_topo.validate()
