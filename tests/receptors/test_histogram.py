"""Unit tests for the fixed-bin hardware-style histogram."""

import pytest

from repro.receptors.histogram import Histogram


class TestAccumulation:
    def test_binning(self):
        h = Histogram(n_bins=4, bin_width=2, origin=0)
        for v in (0, 1, 2, 3, 7):
            h.add(v)
        assert h.counts == [2, 2, 0, 1]
        assert h.total == 5

    def test_origin_offset(self):
        h = Histogram(n_bins=2, bin_width=1, origin=10)
        h.add(10)
        h.add(11)
        assert h.counts == [1, 1]

    def test_overflow_saturates(self):
        h = Histogram(n_bins=2, bin_width=1, origin=0)
        h.add(5)
        h.add(100)
        assert h.overflow == 2
        assert h.counts == [0, 0]

    def test_underflow(self):
        h = Histogram(n_bins=2, bin_width=1, origin=5)
        h.add(3)
        assert h.underflow == 1

    def test_weighted_add(self):
        h = Histogram(n_bins=2, bin_width=1, origin=0)
        h.add(1, count=5)
        assert h.counts[1] == 5
        assert h.total == 5

    def test_count_validation(self):
        h = Histogram(2)
        with pytest.raises(ValueError):
            h.add(0, count=0)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Histogram(0)
        with pytest.raises(ValueError):
            Histogram(2, bin_width=0)


class TestQueries:
    def test_exact_mean_min_max(self):
        h = Histogram(n_bins=4, bin_width=8)
        for v in (1, 3, 30, 90):  # 90 overflows but counts in mean
            h.add(v)
        assert h.mean == pytest.approx(31.0)
        assert h.min == 1
        assert h.max == 90

    def test_empty_stats(self):
        h = Histogram(2)
        assert h.mean == 0.0
        assert h.min is None and h.max is None

    def test_bin_range(self):
        h = Histogram(n_bins=3, bin_width=4, origin=2)
        assert h.bin_range(0) == (2, 6)
        assert h.bin_range(2) == (10, 14)
        with pytest.raises(IndexError):
            h.bin_range(3)

    def test_quantile(self):
        h = Histogram(n_bins=10, bin_width=1, origin=0)
        for v in range(10):
            h.add(v)
        assert h.quantile(0.5) == 5
        assert h.quantile(1.0) == 10
        assert h.quantile(0.0) == 0 or h.quantile(0.0) <= 1

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            Histogram(2).quantile(1.5)

    def test_quantile_on_empty(self):
        assert Histogram(2, origin=3).quantile(0.5) == 3

    def test_nonzero_bins(self):
        h = Histogram(n_bins=4, bin_width=1)
        h.add(1)
        h.add(3)
        assert h.nonzero_bins() == [((1, 2), 1), ((3, 4), 1)]


class TestMerge:
    def test_merge_accumulates(self):
        a = Histogram(4, 1)
        b = Histogram(4, 1)
        a.add(0)
        b.add(0)
        b.add(3)
        b.add(99)
        a.merge(b)
        assert a.counts == [2, 0, 0, 1]
        assert a.overflow == 1
        assert a.total == 4
        assert a.max == 99

    def test_merge_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Histogram(4, 1).merge(Histogram(4, 2))

    def test_merge_empty_keeps_bounds(self):
        a = Histogram(4, 1)
        a.add(2)
        a.merge(Histogram(4, 1))
        assert a.min == 2 and a.max == 2


class TestRendering:
    def test_render_mentions_counts(self):
        h = Histogram(4, 1)
        h.add(1)
        h.add(1)
        text = h.render(title="demo")
        assert "demo" in text
        assert "2" in text
        assert "#" in text

    def test_render_empty(self):
        assert "(empty)" in Histogram(4).render()

    def test_render_overflow_row(self):
        h = Histogram(2, 1)
        h.add(50)
        assert ">=" in h.render()

    def test_reset(self):
        h = Histogram(4, 1)
        h.add(2)
        h.reset()
        assert h.total == 0
        assert h.counts == [0, 0, 0, 0]
        assert h.min is None
