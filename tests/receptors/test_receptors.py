"""Unit tests for the receptor devices (base, stochastic, trace-driven)."""

import pytest

from repro.noc.flit import Packet
from repro.noc.ni import ReassemblyBuffer
from repro.receptors.base import TrafficReceptor
from repro.receptors.stochastic import StochasticReceptor
from repro.receptors.tracedriven import TraceDrivenReceptor


def deliver(receptor, src=0, dst=1, length=3, at=10, burst_id=None):
    """Push a complete packet through the receptor's callback."""
    p = Packet(
        src=src, dst=dst, length=length, injection_cycle=0,
        burst_id=burst_id,
    )
    flits = p.flit_list()
    receptor.on_packet(p, at, flits)
    return p, flits


class TestBaseReceptor:
    def test_counters(self):
        r = TrafficReceptor(1)
        deliver(r, at=5)
        deliver(r, at=9)
        assert r.packets_received == 2
        assert r.flits_received == 6

    def test_running_time(self):
        r = TrafficReceptor(1)
        assert r.running_time == 0
        deliver(r, at=5)
        assert r.running_time == 0  # single packet: no window yet
        deliver(r, at=25)
        assert r.running_time == 20

    def test_throughput(self):
        r = TrafficReceptor(1)
        deliver(r, at=0, length=4)
        deliver(r, at=8, length=4)
        assert r.throughput() == pytest.approx(1.0)

    def test_disabled_receptor_ignores(self):
        r = TrafficReceptor(1)
        r.enabled = False
        deliver(r)
        assert r.packets_received == 0

    def test_attach_sets_callback(self):
        r = TrafficReceptor(1)
        rx = ReassemblyBuffer(1)
        r.attach(rx)
        assert rx.on_packet == r.on_packet

    def test_attach_twice_rejected(self):
        rx = ReassemblyBuffer(1)
        TrafficReceptor(1).attach(rx)
        with pytest.raises(RuntimeError, match="already"):
            TrafficReceptor(1).attach(rx)

    def test_reset(self):
        r = TrafficReceptor(1)
        deliver(r)
        r.reset()
        assert r.packets_received == 0
        assert r.first_cycle is None


class TestStochasticReceptor:
    def test_length_histogram(self):
        r = StochasticReceptor(1)
        deliver(r, length=3)
        deliver(r, length=3)
        deliver(r, length=9)
        assert r.length_histogram.total == 3
        assert r.length_histogram.mean == pytest.approx(5.0)

    def test_gap_histogram_needs_two_packets(self):
        r = StochasticReceptor(1)
        deliver(r, at=10)
        assert r.gap_histogram.total == 0
        deliver(r, at=14)
        assert r.gap_histogram.total == 1
        assert r.gap_histogram.mean == pytest.approx(4.0)

    def test_source_histogram(self):
        r = StochasticReceptor(1, n_sources=8)
        deliver(r, src=0)
        deliver(r, src=5)
        deliver(r, src=5)
        assert r.source_histogram.counts[0] == 1
        assert r.source_histogram.counts[5] == 2

    def test_report_text(self):
        r = StochasticReceptor(2)
        deliver(r, at=3)
        deliver(r, at=8)
        text = r.report()
        assert "packets received : 2" in text
        assert "running time" in text
        assert "packet length" in text

    def test_reset_clears_histograms(self):
        r = StochasticReceptor(1)
        deliver(r, at=1)
        deliver(r, at=2)
        r.reset()
        assert r.length_histogram.total == 0
        assert r.gap_histogram.total == 0
        deliver(r, at=30)
        # Gap must not bridge across the reset.
        assert r.gap_histogram.total == 0


class TestTraceDrivenReceptor:
    def test_latency_recorded(self):
        r = TraceDrivenReceptor(1)
        deliver(r, at=25)  # injection_cycle = 0
        assert r.latency.count == 1
        assert r.latency.mean_latency == pytest.approx(25.0)

    def test_congestion_recorded(self):
        r = TraceDrivenReceptor(1)
        p, flits = deliver(r, at=10)
        assert r.congestion.packets == 1
        assert r.congestion.total_stall_cycles == 0
        flits2 = Packet(src=0, dst=1, length=2).flit_list()
        for f in flits2:
            f.stall_cycles = 3
        r.on_packet(flits2[0].packet, 20, flits2)
        assert r.congestion.total_stall_cycles == 6
        assert r.congestion.congested_packets == 1

    def test_burst_grouping(self):
        r = TraceDrivenReceptor(1)
        deliver(r, at=10, burst_id=0)
        deliver(r, at=12, burst_id=0)
        deliver(r, at=30, burst_id=1)
        assert r.latency.bursts_seen == 2
        assert r.latency.mean_burst_size() == pytest.approx(1.5)

    def test_report_text(self):
        r = TraceDrivenReceptor(3)
        deliver(r, at=15)
        text = r.report()
        assert "latency min/avg/max" in text
        assert "stall" in text

    def test_reset(self):
        r = TraceDrivenReceptor(1)
        deliver(r, at=10)
        r.reset()
        assert r.latency.count == 0
        assert r.congestion.packets == 0
