"""Report tests: rows, aggregation, percentiles, export."""

import csv
import json

import pytest

from repro.core.errors import ConfigError
from repro.experiments import (
    ScenarioSpec,
    aggregate,
    percentile,
    render_table,
    rows_from_results,
    to_csv,
    to_json,
)
from repro.experiments.runner import ScenarioResult


def result_for(metrics, **spec_fields):
    return ScenarioResult(
        spec=ScenarioSpec(**spec_fields), metrics=metrics
    )


RESULTS = [
    result_for({"cycles": 100, "mean_latency": 10.0}, load=0.1, seed=1),
    result_for({"cycles": 200, "mean_latency": 30.0}, load=0.1, seed=2),
    result_for({"cycles": 400, "mean_latency": 50.0}, load=0.2, seed=1),
]


class TestPercentile:
    def test_interpolates(self):
        assert percentile([0, 10], 0.5) == 5.0
        assert percentile([1, 2, 3, 4], 1.0) == 4.0
        assert percentile([1, 2, 3, 4], 0.0) == 1.0

    def test_single_value(self):
        assert percentile([7], 0.95) == 7.0

    def test_unsorted_input(self):
        assert percentile([30, 10, 20], 0.5) == 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestRows:
    def test_rows_flatten_spec_and_metrics(self):
        rows = rows_from_results(RESULTS)
        assert len(rows) == 3
        assert rows[0]["load"] == 0.1
        assert rows[0]["cycles"] == 100
        assert rows[0]["key"] == RESULTS[0].spec.key
        assert rows[0]["cached"] is False

    def test_traffic_params_become_columns(self):
        rows = rows_from_results(
            [result_for({"cycles": 1}, traffic_params={"gap": 9})]
        )
        assert rows[0]["traffic_params.gap"] == 9


class TestAggregate:
    def test_group_by_mean_min_max(self):
        agg = aggregate(RESULTS, by=("load",), metrics=("cycles",))
        assert [row["load"] for row in agg] == [0.1, 0.2]
        first = agg[0]
        assert first["n"] == 2
        assert first["cycles.mean"] == 150.0
        assert first["cycles.min"] == 100
        assert first["cycles.max"] == 200

    def test_percentile_stat(self):
        agg = aggregate(
            RESULTS,
            by=("load",),
            metrics=("mean_latency",),
            stats=("p50",),
        )
        assert agg[0]["mean_latency.p50"] == 20.0

    def test_default_metrics_are_numeric(self):
        agg = aggregate(RESULTS, by=("load",))
        assert "cycles.mean" in agg[0]

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="group-by"):
            aggregate(RESULTS, by=("flux",))

    def test_unknown_stat_rejected(self):
        with pytest.raises(ConfigError, match="statistic"):
            aggregate(
                RESULTS, by=("load",), metrics=("cycles",), stats=("mode",)
            )

    def test_empty_by_rejected(self):
        with pytest.raises(ConfigError, match="group-by"):
            aggregate(RESULTS, by=())

    def test_empty_results(self):
        assert aggregate([], by=("load",)) == []

    def test_default_metrics_union_across_results(self):
        """A metric missing (None) in the first scenario must still
        aggregate: a mixed-receptor sweep puts ``p50_latency=None`` on
        stochastic-receptor scenarios, and the default metric list used
        to be inferred from ``results[0]`` alone, silently dropping the
        column for the entire sweep."""
        results = [
            result_for(
                {"cycles": 100, "p50_latency": None},
                receptors="stochastic",
                load=0.1,
            ),
            result_for(
                {"cycles": 120, "p50_latency": 40.0},
                receptors="tracedriven",
                load=0.1,
            ),
            result_for(
                {"cycles": 140, "p50_latency": 60.0},
                receptors="tracedriven",
                load=0.2,
            ),
        ]
        agg = aggregate(results, by=("load",))
        # The column exists for every group...
        assert "p50_latency.mean" in agg[0]
        assert "p50_latency.mean" in agg[1]
        # ...aggregated over the scenarios that reported a number.
        assert agg[0]["p50_latency.mean"] == 40.0
        assert agg[1]["p50_latency.mean"] == 60.0

    def test_default_metrics_keep_first_seen_order(self):
        results = [
            result_for({"cycles": 1, "b_metric": 2.0}, load=0.1),
            result_for(
                {"cycles": 2, "a_metric": 1.0, "b_metric": 3.0}, load=0.2
            ),
        ]
        agg = aggregate(results, by=("load",))
        columns = list(agg[0])
        # Union keeps sweep order: metrics of the first result first,
        # later-only metrics appended in encounter order.
        assert columns.index("cycles.mean") < columns.index("b_metric.mean")
        assert columns.index("b_metric.mean") < columns.index("a_metric.mean")


class TestExport:
    def test_csv_round_trip(self, tmp_path):
        path = str(tmp_path / "out.csv")
        to_csv(rows_from_results(RESULTS), path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 3
        assert rows[0]["cycles"] == "100"
        assert rows[2]["load"] == "0.2"

    def test_json_round_trip(self, tmp_path):
        path = str(tmp_path / "out.json")
        to_json(rows_from_results(RESULTS), path)
        with open(path) as fh:
            rows = json.load(fh)
        assert len(rows) == 3
        assert rows[0]["cycles"] == 100

    def test_render_table(self):
        text = render_table(
            rows_from_results(RESULTS), columns=("load", "cycles")
        )
        lines = text.splitlines()
        assert lines[0].split() == ["load", "cycles"]
        assert len(lines) == 2 + 3

    def test_render_empty(self):
        assert render_table([]) == "(no results)"


class TestAggregateOrdering:
    def test_numeric_groups_sort_numerically(self):
        results = [
            result_for({"cycles": d}, buffer_depth=d)
            for d in (16, 2, 8, 4)
        ]
        agg = aggregate(results, by=("buffer_depth",), metrics=("cycles",))
        assert [row["buffer_depth"] for row in agg] == [2, 4, 8, 16]

    def test_string_groups_sort_lexically(self):
        results = [
            result_for({"cycles": 1}, topology=t)
            for t in ("ring:4", "mesh:2:2", "paper")
        ]
        agg = aggregate(results, by=("topology",), metrics=("cycles",))
        assert [row["topology"] for row in agg] == [
            "mesh:2:2",
            "paper",
            "ring:4",
        ]
