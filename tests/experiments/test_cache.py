"""ResultCache tests: round trips, misses, corruption tolerance."""

import json
import os

from repro.experiments import ResultCache, ScenarioSpec
from repro.experiments.runner import RECORD_SCHEMA


def make_record(spec, metrics=None):
    return {
        "schema": RECORD_SCHEMA,
        "key": spec.key,
        "spec": spec.to_dict(),
        "metrics": metrics or {"cycles": 123, "mean_latency": 4.5},
    }


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        record = make_record(spec)
        path = cache.put(spec, record)
        assert os.path.exists(path)
        assert cache.get(spec) == record

    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get(ScenarioSpec()) is None

    def test_canonical_bytes_on_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        raw = cache.get_bytes(spec.key)
        assert raw == json.dumps(
            make_record(spec), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def test_put_is_idempotent_bytes(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        first = cache.get_bytes(spec.key)
        cache.put(spec, make_record(spec))
        assert cache.get_bytes(spec.key) == first

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        with open(cache.path_for(spec.key), "w") as fh:
            fh.write("{truncated")
        assert cache.get(spec) is None

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        record = make_record(spec)
        record["schema"] = RECORD_SCHEMA + 1
        with open(cache.path_for(spec.key), "w") as fh:
            json.dump(record, fh)
        assert cache.get(spec) is None

    def test_spec_mismatch_reads_as_miss(self, tmp_path):
        # Simulated hash collision: right key, wrong spec body.
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        other = ScenarioSpec(packets=20)
        record = make_record(other)
        record["key"] = spec.key
        with open(cache.path_for(spec.key), "w") as fh:
            json.dump(record, fh)
        assert cache.get(spec) is None

    def test_put_rejects_mismatched_record(self, tmp_path):
        import pytest

        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        other = ScenarioSpec(packets=20)
        with pytest.raises(ValueError, match="does not match"):
            cache.put(spec, make_record(other))

    def test_keys_and_len_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        specs = [ScenarioSpec(packets=n) for n in (10, 20, 30)]
        for spec in specs:
            cache.put(spec, make_record(spec))
        assert len(cache) == 3
        assert cache.keys() == sorted(s.key for s in specs)
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_no_tmp_droppings(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        leftovers = [
            f for f in os.listdir(str(tmp_path)) if f.endswith(".tmp")
        ]
        assert leftovers == []

    def test_creates_directory(self, tmp_path):
        root = tmp_path / "nested" / "cache"
        ResultCache(str(root))
        assert root.is_dir()

    def test_list_valued_params_hit(self, tmp_path):
        # Tuples in the live spec round-trip through JSON as lists;
        # the collision guard must compare canonically or the cache
        # never hits for specs with sequence-valued traffic params.
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(
            traffic_params={"dst": [1, 2, 3], "length": 4}
        )
        record = make_record(spec)
        cache.put(spec, record)
        hit = cache.get(spec)
        assert hit is not None
        assert hit["metrics"] == record["metrics"]
