"""ResultCache tests: round trips, misses, corruption tolerance."""

import json
import os

from repro.experiments import ResultCache, ScenarioSpec
from repro.experiments.runner import RECORD_SCHEMA


def make_record(spec, metrics=None):
    return {
        "schema": RECORD_SCHEMA,
        "key": spec.key,
        "spec": spec.to_dict(),
        "metrics": metrics or {"cycles": 123, "mean_latency": 4.5},
    }


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        record = make_record(spec)
        path = cache.put(spec, record)
        assert os.path.exists(path)
        assert cache.get(spec) == record

    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get(ScenarioSpec()) is None

    def test_canonical_bytes_on_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        raw = cache.get_bytes(spec.key)
        assert raw == json.dumps(
            make_record(spec), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def test_put_is_idempotent_bytes(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        first = cache.get_bytes(spec.key)
        cache.put(spec, make_record(spec))
        assert cache.get_bytes(spec.key) == first

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        with open(cache.path_for(spec.key), "w") as fh:
            fh.write("{truncated")
        assert cache.get(spec) is None

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        record = make_record(spec)
        record["schema"] = RECORD_SCHEMA + 1
        with open(cache.path_for(spec.key), "w") as fh:
            json.dump(record, fh)
        assert cache.get(spec) is None

    def test_spec_mismatch_reads_as_miss(self, tmp_path):
        # Simulated hash collision: right key, wrong spec body.
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        other = ScenarioSpec(packets=20)
        record = make_record(other)
        record["key"] = spec.key
        with open(cache.path_for(spec.key), "w") as fh:
            json.dump(record, fh)
        assert cache.get(spec) is None

    def test_put_rejects_mismatched_record(self, tmp_path):
        import pytest

        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        other = ScenarioSpec(packets=20)
        with pytest.raises(ValueError, match="does not match"):
            cache.put(spec, make_record(other))

    def test_keys_and_len_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        specs = [ScenarioSpec(packets=n) for n in (10, 20, 30)]
        for spec in specs:
            cache.put(spec, make_record(spec))
        assert len(cache) == 3
        assert cache.keys() == sorted(s.key for s in specs)
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_no_tmp_droppings(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        leftovers = [
            f for f in os.listdir(str(tmp_path)) if f.endswith(".tmp")
        ]
        assert leftovers == []

    def test_creates_directory(self, tmp_path):
        root = tmp_path / "nested" / "cache"
        ResultCache(str(root))
        assert root.is_dir()

    def test_list_valued_params_hit(self, tmp_path):
        # Tuples in the live spec round-trip through JSON as lists;
        # the collision guard must compare canonically or the cache
        # never hits for specs with sequence-valued traffic params.
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(
            traffic_params={"dst": [1, 2, 3], "length": 4}
        )
        record = make_record(spec)
        cache.put(spec, record)
        hit = cache.get(spec)
        assert hit is not None
        assert hit["metrics"] == record["metrics"]


class TestCorruptQuarantine:
    """Corrupt entries are moved to <key>.corrupt, never re-trusted."""

    def corrupt(self, cache, spec, payload="{truncated"):
        with open(cache.path_for(spec.key), "w") as fh:
            fh.write(payload)

    def test_corrupt_entry_is_renamed_aside(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        self.corrupt(cache, spec)
        assert cache.get(spec) is None
        assert not os.path.exists(cache.path_for(spec.key))
        assert os.path.exists(cache.corrupt_path_for(spec.key))
        assert cache.corrupt_quarantined == 1

    def test_quarantined_bytes_preserved_for_postmortem(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        self.corrupt(cache, spec, payload="{bad bytes")
        cache.get(spec)
        with open(cache.corrupt_path_for(spec.key)) as fh:
            assert fh.read() == "{bad bytes"

    def test_second_read_is_clean_miss_not_reparse(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        self.corrupt(cache, spec)
        assert cache.get(spec) is None
        assert cache.get(spec) is None  # entry gone, plain miss
        assert cache.corrupt_quarantined == 1

    def test_schema_drift_is_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        record = make_record(spec)
        record["schema"] = RECORD_SCHEMA + 1
        with open(cache.path_for(spec.key), "w") as fh:
            json.dump(record, fh)
        assert cache.get(spec) is None
        assert os.path.exists(cache.corrupt_path_for(spec.key))
        assert cache.corrupt_quarantined == 1

    def test_collision_is_plain_miss_not_quarantine(self, tmp_path):
        # Right key, valid record, different spec: someone else's
        # valid data — must NOT be destroyed.
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        other = ScenarioSpec(packets=20)
        record = make_record(other)
        record["key"] = spec.key
        with open(cache.path_for(spec.key), "w") as fh:
            json.dump(record, fh)
        assert cache.get(spec) is None
        assert os.path.exists(cache.path_for(spec.key))
        assert cache.corrupt_quarantined == 0

    def test_get_record_quarantines_too(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with open(os.path.join(str(tmp_path), "warmkey.json"), "w") as fh:
            fh.write("not json at all")
        assert cache.get_record("warmkey") is None
        assert os.path.exists(cache.corrupt_path_for("warmkey"))
        assert cache.corrupt_quarantined == 1

    def test_keys_skip_quarantined_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        self.corrupt(cache, spec)
        cache.get(spec)
        assert cache.keys() == []
        assert len(cache) == 0

    def test_rewrite_after_quarantine_round_trips(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache.put(spec, make_record(spec))
        self.corrupt(cache, spec)
        cache.get(spec)
        cache.put(spec, make_record(spec))  # the re-run overwrites
        assert cache.get(spec) == make_record(spec)

    def test_concurrent_quarantine_counts_once(self, tmp_path):
        # Two readers race to quarantine the same entry: os.replace
        # is atomic, exactly one rename wins, the loser's OSError is
        # swallowed and not counted.
        cache_a = ResultCache(str(tmp_path))
        cache_b = ResultCache(str(tmp_path))
        spec = ScenarioSpec(packets=10)
        cache_a.put(spec, make_record(spec))
        self.corrupt(cache_a, spec)
        assert cache_a.get(spec) is None
        assert cache_b.get(spec) is None  # file already moved: miss
        assert cache_a.corrupt_quarantined == 1
        assert cache_b.corrupt_quarantined == 0

    def test_concurrent_writers_stay_atomic(self, tmp_path):
        # Many processes hammering put() on the same key must leave
        # one valid record and no droppings (atomic temp + replace).
        import multiprocessing

        spec = ScenarioSpec(packets=10)
        with multiprocessing.Pool(4) as pool:
            pool.starmap(
                _put_one, [(str(tmp_path), 10)] * 8
            )
        cache = ResultCache(str(tmp_path))
        assert cache.get(spec) == make_record(spec)
        droppings = [
            f for f in os.listdir(str(tmp_path)) if f.endswith(".tmp")
        ]
        assert droppings == []
        assert cache.corrupt_quarantined == 0

    def test_sweep_report_surfaces_corrupt_count(self, tmp_path):
        from repro.experiments import SweepRunner

        cache = ResultCache(str(tmp_path))
        spec = ScenarioSpec(topology="mesh:3:3", packets=60)
        runner = SweepRunner(cache=cache)
        runner.run([spec])
        self.corrupt(cache, spec)
        runner2 = SweepRunner(cache=cache)
        report = runner2.run([spec])
        assert report.corrupt_cache == 1
        assert runner2.last_stats.corrupt_cache == 1


def _put_one(root, packets):
    cache = ResultCache(root)
    spec = ScenarioSpec(packets=packets)
    cache.put(spec, make_record(spec))
