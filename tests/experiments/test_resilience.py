"""Crash-safe sweep execution: supervision, retries, journal, report.

The failing spec used throughout is deterministic: ``ring:6`` with
``routing="shortest"`` is refused at platform build (cyclic channel
dependency), so it raises the same ConfigError on every attempt in
every process — a reliable stand-in for a "poisoned" scenario.
"""

import json
import os

import pytest

from repro.core.errors import ConfigError, EmulationError, ScenarioTimeout
from repro.experiments import (
    FailureRecord,
    ResultCache,
    ScenarioSpec,
    SweepJournal,
    SweepReport,
    SweepRunner,
    aggregate,
    run_sweep,
)

GOOD = [
    ScenarioSpec(topology="mesh:3:3", packets=60, seed=s)
    for s in (1, 2, 3)
]
#: Deterministically refused at build: cyclic dependency on a ring.
BAD = ScenarioSpec(topology="ring:6", routing="shortest", packets=60)


def records(results):
    return [r.record() for r in results]


# ----------------------------------------------------------------------
# The bugfix: completed results survive a failing spec
# ----------------------------------------------------------------------
class TestPartialResults:
    def test_completed_results_survive_failing_spec_serial(self):
        # Regression: a worker exception used to propagate out of
        # SweepRunner.run and discard every completed ScenarioResult.
        specs = [GOOD[0], BAD, GOOD[1]]
        report = SweepRunner(retries=0).run(specs)
        assert isinstance(report, SweepReport)
        assert len(report) == 2
        assert [r.spec for r in report] == [GOOD[0], GOOD[1]]
        assert len(report.failures) == 1
        assert report.failures[0].error == "ConfigError"

    def test_completed_results_survive_failing_spec_parallel(self):
        specs = [GOOD[0], BAD, GOOD[1]]
        report = SweepRunner(workers=2, retries=0).run(specs)
        assert len(report) == 2
        assert len(report.failures) == 1
        serial = SweepRunner(retries=0).run(specs)
        assert records(report) == records(serial)

    def test_failure_never_raises_mid_sweep(self):
        report = run_sweep([BAD], retries=0)
        assert len(report) == 0
        assert not report.ok

    def test_surviving_metrics_bit_identical_to_clean_run(self):
        clean = SweepRunner().run(GOOD)
        mixed = SweepRunner(retries=0).run([GOOD[0], BAD, GOOD[1], GOOD[2]])
        assert records(mixed) == records(clean)


# ----------------------------------------------------------------------
# SweepReport protocol
# ----------------------------------------------------------------------
class TestSweepReport:
    def test_sequence_protocol(self):
        report = SweepRunner().run(GOOD[:2])
        assert len(report) == 2
        assert list(report) == report.results
        assert report[0].spec == GOOD[0]
        assert report[-1].spec == GOOD[1]
        assert report.ok
        assert report.total == 2

    def test_total_counts_failures(self):
        report = SweepRunner(retries=0).run([GOOD[0], BAD])
        assert report.total == 2
        assert len(report) == 1

    def test_duplicates_share_failure_record(self):
        report = SweepRunner(retries=0).run([BAD, GOOD[0], BAD])
        assert len(report.failures) == 2
        assert report.failures[0] is report.failures[1]
        assert report.total == 3


# ----------------------------------------------------------------------
# Retry / quarantine policy
# ----------------------------------------------------------------------
class TestRetryQuarantine:
    def test_attempts_equals_retries_plus_one(self):
        runner = SweepRunner(retries=2)
        report = runner.run([BAD])
        assert report.failures[0].attempts == 3
        assert runner.last_stats.retried == 2
        assert runner.last_stats.executed == 3

    def test_quarantine_status_default(self):
        report = SweepRunner(retries=0).run([BAD])
        assert report.failures[0].status == "quarantined"

    def test_no_quarantine_status(self):
        runner = SweepRunner(retries=0, quarantine=False)
        report = runner.run([BAD])
        assert report.failures[0].status == "failed"
        assert runner.last_stats.quarantined == 0
        assert runner.last_stats.failed == 1

    def test_progress_sees_failures(self):
        seen = []
        runner = SweepRunner(
            retries=0,
            progress=lambda done, total, r: seen.append((done, total, r)),
        )
        runner.run([GOOD[0], BAD])
        assert [s[:2] for s in seen] == [(1, 2), (2, 2)]
        kinds = [getattr(s[2], "failed", False) for s in seen]
        assert kinds == [False, True]

    def test_failure_record_duck_type(self):
        failure = SweepRunner(retries=0).run([BAD]).failures[0]
        assert failure.spec.label()
        assert failure.wall_seconds == 0.0
        assert failure.cached is False
        assert failure.key == BAD.key

    def test_validation(self):
        with pytest.raises(ConfigError):
            SweepRunner(retries=-1)
        with pytest.raises(ConfigError):
            SweepRunner(timeout=0)
        with pytest.raises(ConfigError):
            SweepRunner(resume=True)


# ----------------------------------------------------------------------
# Cooperative timeout (engine + serial runner)
# ----------------------------------------------------------------------
class TestTimeout:
    def test_engine_rejects_negative_budget(self):
        from repro.core.engine import EmulationEngine
        from repro.core.platform import build_platform

        platform = build_platform(GOOD[0].to_platform_config())
        with pytest.raises(EmulationError):
            EmulationEngine(platform).run(max_wall_seconds=-1.0)

    def test_zero_budget_times_out_immediately(self):
        from repro.experiments.runner import run_scenario

        big = ScenarioSpec(topology="mesh:6:6", packets=50_000)
        with pytest.raises(ScenarioTimeout) as err:
            run_scenario(big, timeout=1e-9)
        assert err.value.elapsed > 0.0

    def test_generous_budget_changes_nothing(self):
        from repro.experiments.runner import run_scenario

        plain = run_scenario(GOOD[0])
        budgeted = run_scenario(GOOD[0], timeout=600.0)
        assert budgeted.record() == plain.record()

    def test_serial_sweep_timeout_is_structured(self):
        # Budget generous enough for the small scenario, far too
        # small for the big one; the timeout must become a structured
        # failure record, not an exception out of run().
        big = ScenarioSpec(topology="mesh:6:6", packets=50_000)
        runner = SweepRunner(retries=1, timeout=0.5)
        report = runner.run([GOOD[0], big])
        assert len(report) == 1
        assert report[0].spec == GOOD[0]
        failure = report.failures[0]
        assert failure.error == "ScenarioTimeout"
        assert failure.attempts == 2


# ----------------------------------------------------------------------
# The sweep journal
# ----------------------------------------------------------------------
class TestSweepJournal:
    def test_write_load_round_trip(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "sweep.journal"))
        journal.write("aaa", "done", attempts=1)
        journal.write("bbb", "quarantined", error="ConfigError",
                      attempts=2)
        entries = journal.load()
        assert entries["aaa"]["status"] == "done"
        assert entries["bbb"]["error"] == "ConfigError"

    def test_last_entry_wins(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "sweep.journal"))
        journal.write("aaa", "failed", attempts=1)
        journal.write("aaa", "done", attempts=1)
        assert journal.load()["aaa"]["status"] == "done"

    def test_missing_file_loads_empty(self, tmp_path):
        assert SweepJournal(str(tmp_path / "absent.journal")).load() == {}

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "sweep.journal"))
        journal.write("aaa", "done", attempts=1)
        with open(journal.path, "a") as fh:
            fh.write('{"key": "bbb", "sta')  # crash mid-append
        entries = journal.load()
        assert list(entries) == ["aaa"]

    def test_append_after_torn_tail_heals_boundary(self, tmp_path):
        # A crash can leave the file without a trailing newline; the
        # next append must not merge into the wreckage.
        journal = SweepJournal(str(tmp_path / "sweep.journal"))
        with open(journal.path, "w") as fh:
            fh.write('{"key": "aaa", "sta')
        journal.write("bbb", "done", attempts=1)
        entries = journal.load()
        assert entries["bbb"]["status"] == "done"

    def test_lines_are_canonical_json(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "sweep.journal"))
        journal.write("aaa", "done", attempts=1)
        with open(journal.path) as fh:
            line = fh.readline().strip()
        assert line == json.dumps(
            {"attempts": 1, "key": "aaa", "status": "done"},
            sort_keys=True, separators=(",", ":"),
        )

    def test_for_sweep_is_order_insensitive(self, tmp_path):
        a = SweepJournal.for_sweep(str(tmp_path), GOOD)
        b = SweepJournal.for_sweep(str(tmp_path), list(reversed(GOOD)))
        assert a.path == b.path
        other = SweepJournal.for_sweep(str(tmp_path), GOOD[:2])
        assert other.path != a.path

    def test_reset_truncates(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "sweep.journal"))
        journal.write("aaa", "done", attempts=1)
        journal.reset()
        assert journal.load() == {}


class TestJournalResume:
    def test_fresh_run_truncates_stale_ledger(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "sweep.journal"))
        journal.write("stale", "done", attempts=1)
        SweepRunner(journal=journal).run(GOOD[:1])
        entries = journal.load()
        assert "stale" not in entries
        assert entries[GOOD[0].key]["status"] == "done"

    def test_resume_skips_done_specs_via_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        journal = SweepJournal.for_sweep(cache.root, GOOD)
        # Simulated crash: only the first two specs completed.
        SweepRunner(cache=cache, journal=journal).run(GOOD[:2])
        runner = SweepRunner(cache=cache, journal=journal, resume=True)
        report = runner.run(GOOD)
        assert len(report) == 3
        assert runner.last_stats.cached == 2
        assert runner.last_stats.executed == 1

    def test_resumed_results_bit_identical_to_serial(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        journal = SweepJournal.for_sweep(cache.root, GOOD)
        SweepRunner(cache=cache, journal=journal).run(GOOD[:2])
        resumed = SweepRunner(
            cache=cache, journal=journal, resume=True
        ).run(GOOD)
        clean = SweepRunner().run(GOOD)
        assert records(resumed) == records(clean)

    def test_done_with_cache_miss_re_runs(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        journal = SweepJournal.for_sweep(cache.root, GOOD[:1])
        SweepRunner(cache=cache, journal=journal).run(GOOD[:1])
        os.unlink(cache.path_for(GOOD[0].key))  # cache evicted
        runner = SweepRunner(cache=cache, journal=journal, resume=True)
        report = runner.run(GOOD[:1])
        assert len(report) == 1
        assert runner.last_stats.executed == 1

    def test_quarantined_specs_stay_parked(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        journal = SweepJournal(str(tmp_path / "cache" / "s.journal"))
        journal.write(
            BAD.key, "quarantined", error="ConfigError",
            message="poisoned", attempts=2,
        )
        runner = SweepRunner(cache=cache, journal=journal, resume=True)
        report = runner.run([GOOD[0], BAD])
        assert runner.last_stats.parked == 1
        assert runner.last_stats.executed == 1
        failure = report.failures[0]
        assert failure.status == "quarantined"
        assert failure.error == "ConfigError"
        assert failure.attempts == 2

    def test_failed_specs_re_run_on_resume(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        journal = SweepJournal(str(tmp_path / "cache" / "s.journal"))
        journal.write(
            GOOD[0].key, "failed", error="WorkerCrash",
            message="worker died", attempts=2,
        )
        runner = SweepRunner(cache=cache, journal=journal, resume=True)
        report = runner.run(GOOD[:1])
        assert len(report) == 1
        assert runner.last_stats.executed == 1

    def test_outcomes_are_journaled(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "sweep.journal"))
        SweepRunner(retries=0, journal=journal).run([GOOD[0], BAD])
        entries = journal.load()
        assert entries[GOOD[0].key]["status"] == "done"
        bad = entries[BAD.key]
        assert bad["status"] == "quarantined"
        assert bad["error"] == "ConfigError"
        assert bad["attempts"] == 1


# ----------------------------------------------------------------------
# aggregate() over a SweepReport
# ----------------------------------------------------------------------
class TestAggregateMissing:
    def test_missing_column_counts_failures(self):
        report = SweepRunner(retries=0).run([GOOD[0], GOOD[1], BAD])
        rows = aggregate(report, by=["topology"])
        by_topo = {row["topology"]: row for row in rows}
        assert by_topo["mesh:3:3"]["n"] == 2
        assert by_topo["mesh:3:3"]["missing"] == 0
        assert by_topo["ring:6"]["n"] == 0
        assert by_topo["ring:6"]["missing"] == 1

    def test_all_failed_group_has_none_stats(self):
        report = SweepRunner(retries=0).run([GOOD[0], BAD])
        rows = aggregate(
            report, by=["topology"], metrics=["cycles"],
        )
        failed_row = [r for r in rows if r["topology"] == "ring:6"][0]
        assert failed_row["cycles.mean"] is None

    def test_plain_list_keeps_old_schema(self):
        report = SweepRunner().run(GOOD[:2])
        rows = aggregate(list(report), by=["topology"])
        assert "missing" not in rows[0]

    def test_report_without_failures_has_zero_missing(self):
        report = SweepRunner().run(GOOD[:2])
        rows = aggregate(report, by=["topology"])
        assert rows[0]["missing"] == 0


# ----------------------------------------------------------------------
# Chaos drills: the supervised pool under real process death
# ----------------------------------------------------------------------
pytestmark_chaos = pytest.mark.chaos


@pytest.mark.chaos
class TestChaosSupervision:
    def test_sigkilled_worker_is_retried_and_sweep_completes(self):
        # Worker is SIGKILLed on the spec's first attempt; the
        # supervisor must detect the death (never hang), respawn, and
        # the retry must succeed with bit-identical metrics.
        serial = SweepRunner().run(GOOD)
        runner = SweepRunner(
            workers=2,
            retries=1,
            chaos={"kill_on": {GOOD[1].key: 1}},
        )
        report = runner.run(GOOD)
        assert report.ok
        assert runner.last_stats.retried == 1
        assert records(report) == records(serial)

    def test_crash_every_attempt_quarantines_as_worker_crash(self):
        runner = SweepRunner(
            workers=2,
            retries=1,
            chaos={"kill_on": {GOOD[1].key: 0}},
        )
        report = runner.run(GOOD)
        assert len(report) == 2
        failure = report.failures[0]
        assert failure.error == "WorkerCrash"
        assert failure.status == "quarantined"
        assert failure.attempts == 2

    def test_hung_worker_is_killed_and_quarantined(self):
        # The spec hangs outside the engine's cooperative check, so
        # only the watchdog can reclaim the worker.
        serial = SweepRunner().run(GOOD)
        runner = SweepRunner(
            workers=2,
            retries=0,
            timeout=1.0,
            chaos={"hang_on": {GOOD[1].key: 0}},
        )
        report = runner.run(GOOD)
        assert len(report) == 2
        failure = report.failures[0]
        assert failure.error == "ScenarioTimeout"
        survivors = [
            r.record() for r in serial if r.spec.key != GOOD[1].key
        ]
        assert records(report) == survivors

    def test_acceptance_kill_plus_timeout_survivors_identical(self, tmp_path):
        # The issue's acceptance drill: one worker SIGKILLed, one
        # spec forced to time out — every other spec's result must be
        # bit-identical to serial execution.
        serial = SweepRunner().run(GOOD)
        runner = SweepRunner(
            workers=2,
            retries=1,
            timeout=1.5,
            chaos={
                "kill_on": {GOOD[0].key: 1},
                "hang_on": {GOOD[2].key: 0},
            },
        )
        report = runner.run(GOOD)
        assert len(report) == 2
        assert len(report.failures) == 1
        assert report.failures[0].error == "ScenarioTimeout"
        survivors = [
            r.record() for r in serial if r.spec.key != GOOD[2].key
        ]
        assert records(report) == survivors

    def test_journal_resume_after_worker_crash(self, tmp_path):
        # Crash-then-resume: the first (journaled) run loses a spec to
        # repeated worker death; the resumed run re-runs only it.
        cache = ResultCache(str(tmp_path / "cache"))
        journal = SweepJournal.for_sweep(cache.root, GOOD)
        first = SweepRunner(
            workers=2,
            retries=0,
            quarantine=False,  # leave it re-runnable, not parked
            cache=cache,
            journal=journal,
            chaos={"kill_on": {GOOD[1].key: 0}},
        )
        report1 = first.run(GOOD)
        assert len(report1) == 2
        assert journal.load()[GOOD[1].key]["status"] == "failed"

        resumed = SweepRunner(
            cache=cache, journal=journal, resume=True
        )
        report2 = resumed.run(GOOD)
        assert report2.ok
        assert resumed.last_stats.cached == 2
        assert resumed.last_stats.executed == 1
        clean = SweepRunner().run(GOOD)
        assert records(report2) == records(clean)


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestBatchCliFlags:
    def write_sweep(self, tmp_path, specs_doc):
        from repro.util import canonical_json

        path = tmp_path / "sweep.json"
        path.write_text(canonical_json(specs_doc))
        return str(path)

    def test_resume_journal_requires_cache(self, tmp_path, capsys):
        from repro.cli import main

        sweep = self.write_sweep(
            tmp_path,
            {"base": {"topology": "mesh:3:3", "packets": 60}},
        )
        code = main(
            ["batch", sweep, "--no-cache", "--resume-journal"]
        )
        assert code == 2
        assert "--resume-journal" in capsys.readouterr().err

    def test_failures_exit_nonzero_with_summary(self, tmp_path, capsys):
        from repro.cli import main

        sweep = self.write_sweep(
            tmp_path,
            {
                "base": {"packets": 60},
                "zip": {
                    "topology": ["mesh:3:3", "ring:6"],
                    "routing": ["auto", "shortest"],
                },
            },
        )
        code = main([
            "batch", sweep, "--retries", "0",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "--- failures ---" in captured.err
        assert "quarantined" in captured.err
        assert "1 failed" in captured.err

    def test_resume_journal_reruns_only_unfinished(self, tmp_path, capsys):
        from repro.cli import main

        doc = {
            "base": {"topology": "mesh:3:3", "packets": 60},
            "grid": {"seed": [1, 2, 3]},
        }
        sweep = self.write_sweep(tmp_path, doc)
        cache_dir = str(tmp_path / "cache")
        # Full journaled run, then simulate a crash that lost one
        # spec: drop its cache entry and journal line.
        assert main(["batch", sweep, "--cache-dir", cache_dir]) == 0
        cache = ResultCache(cache_dir)
        specs = [
            ScenarioSpec(topology="mesh:3:3", packets=60, seed=s)
            for s in (1, 2, 3)
        ]
        journal = SweepJournal.for_sweep(cache_dir, specs)
        entries = journal.load()
        lost = specs[2].key
        os.unlink(cache.path_for(lost))
        journal.reset()
        for key, entry in sorted(entries.items()):
            if key != lost:
                journal.write(key, entry["status"],
                              attempts=entry.get("attempts", 1))
        capsys.readouterr()
        code = main([
            "batch", sweep, "--cache-dir", cache_dir,
            "--resume-journal", "--progress",
        ])
        captured = capsys.readouterr()
        assert code == 0
        # Only the lost spec re-ran; the others came from the cache.
        assert "2 cached" in captured.err
        assert "1 executed" in captured.err
