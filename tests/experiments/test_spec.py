"""Unit tests for ScenarioSpec and the Sweep expanders."""

import json

import pytest

from repro.core.errors import ConfigError
from repro.experiments import ScenarioSpec, Sweep


class TestScenarioSpecValidation:
    def test_defaults_valid(self):
        spec = ScenarioSpec()
        assert spec.topology == "paper"
        assert spec.routing == "auto"

    def test_unknown_traffic_rejected(self):
        with pytest.raises(ConfigError, match="traffic model"):
            ScenarioSpec(traffic="psychic")

    def test_unknown_receptors_rejected(self):
        with pytest.raises(ConfigError, match="receptor"):
            ScenarioSpec(receptors="telepathic")

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigError, match="topology"):
            ScenarioSpec(topology="klein_bottle:4")

    def test_malformed_topology_rejected(self):
        with pytest.raises(ConfigError, match="topology"):
            ScenarioSpec(topology="mesh:3")

    def test_topology_object_rejected(self):
        from repro.noc.topology import mesh

        with pytest.raises(ConfigError, match="spec string"):
            ScenarioSpec(topology=mesh(2, 2))

    def test_bad_load_rejected(self):
        with pytest.raises(ConfigError, match="load"):
            ScenarioSpec(load=0.0)
        with pytest.raises(ConfigError, match="load"):
            ScenarioSpec(load=1.5)

    def test_bad_depth_rejected(self):
        with pytest.raises(ConfigError, match="buffer depth"):
            ScenarioSpec(buffer_depth=0)

    def test_bad_packets_rejected(self):
        with pytest.raises(ConfigError, match="budget"):
            ScenarioSpec(packets=0)

    def test_unbounded_packets_allowed(self):
        assert ScenarioSpec(packets=None).packets is None

    def test_bad_routing_rejected(self):
        with pytest.raises(ConfigError, match="routing"):
            ScenarioSpec(routing="scenic")

    def test_paper_case_needs_paper_topology(self):
        with pytest.raises(ConfigError, match="paper-platform"):
            ScenarioSpec(topology="mesh:3:3", routing="overlap")

    def test_bad_switching_rejected(self):
        with pytest.raises(ConfigError, match="switching"):
            ScenarioSpec(switching="teleport")

    def test_bad_arbitration_rejected(self):
        with pytest.raises(ConfigError, match="arbitration"):
            ScenarioSpec(arbitration="coin_flip")

    def test_live_objects_in_params_rejected(self):
        with pytest.raises(ConfigError, match="JSON"):
            ScenarioSpec(traffic_params={"dst": object()})


class TestScenarioSpecIdentity:
    def test_key_stable(self):
        a = ScenarioSpec(traffic="burst", load=0.3)
        b = ScenarioSpec(traffic="burst", load=0.3)
        assert a.key == b.key
        assert len(a.key) == 16
        int(a.key, 16)  # hex

    def test_key_changes_with_any_field(self):
        base = ScenarioSpec()
        keys = {base.key}
        for variant in (
            ScenarioSpec(load=0.3),
            ScenarioSpec(buffer_depth=8),
            ScenarioSpec(seed=2),
            ScenarioSpec(traffic="poisson"),
            ScenarioSpec(topology="mesh:2:2"),
            ScenarioSpec(routing="shortest"),
            ScenarioSpec(packets=999),
            ScenarioSpec(traffic_params={"mean_burst_packets": 4}),
        ):
            keys.add(variant.key)
        assert len(keys) == 9

    def test_traffic_params_order_irrelevant(self):
        a = ScenarioSpec(traffic_params={"a": 1, "b": 2})
        b = ScenarioSpec(traffic_params={"b": 2, "a": 1})
        assert a.key == b.key

    def test_round_trip_via_dict(self):
        spec = ScenarioSpec(
            topology="torus:3:3",
            traffic="onoff",
            load=0.25,
            traffic_params={"packets_per_burst": 4},
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.key == spec.key

    def test_dict_is_json_serialisable(self):
        spec = ScenarioSpec(traffic_params={"gap": 100})
        json.dumps(spec.to_dict())

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown"):
            ScenarioSpec.from_dict({"lod": 0.3})

    def test_stream_seeds_independent(self):
        spec = ScenarioSpec()
        other = ScenarioSpec(seed=2)
        seeds = [spec.stream_seed(i) for i in range(4)]
        assert len(set(seeds)) == 4
        assert all(s != 0 for s in seeds)
        # Across scenarios the streams differ too (hash-keyed).
        assert seeds != [other.stream_seed(i) for i in range(4)]


class TestScenarioSpecElaboration:
    def test_paper_spec_elaborates(self):
        config = ScenarioSpec(traffic="burst", packets=50).to_platform_config()
        assert config.topology == "paper"
        assert config.routing == "paper_overlap"
        assert len(config.tgs) == 4
        assert [tg.max_packets for tg in config.tgs] == [50] * 4
        # Derived stream seeds, not seed+i.
        assert [tg.seed for tg in config.tgs] != [1, 2, 3, 4]

    def test_paper_routing_cases_map(self):
        config = ScenarioSpec(routing="disjoint").to_platform_config()
        assert config.routing == "paper_disjoint"

    def test_generic_spec_elaborates(self):
        spec = ScenarioSpec(
            topology="mesh:2:2", traffic="poisson", load=0.1, packets=10
        )
        config = spec.to_platform_config()
        assert config.routing == "shortest"
        assert len(config.tgs) == 4
        assert len(config.trs) == 4

    def test_cyclic_fabrics_get_updown(self):
        for topo in ("ring:5", "spidergon:8"):
            config = ScenarioSpec(
                topology=topo, packets=10
            ).to_platform_config()
            assert config.routing == "updown"

    def test_generic_platforms_build_and_run(self):
        from repro.core.engine import EmulationEngine
        from repro.core.platform import build_platform

        for topo in ("ring:4", "spidergon:8", "star:3", "tree:2:2"):
            spec = ScenarioSpec(
                topology=topo, traffic="uniform", load=0.1, packets=5
            )
            platform = build_platform(spec.to_platform_config())
            result = EmulationEngine(platform).run()
            assert result.completed
            assert result.packets_received == 5 * len(platform.generators)


class TestSweepExpanders:
    def test_grid_product_order(self):
        specs = Sweep.grid(
            ScenarioSpec(), load=(0.1, 0.2), buffer_depth=(2, 4)
        )
        assert [(s.load, s.buffer_depth) for s in specs] == [
            (0.1, 2),
            (0.1, 4),
            (0.2, 2),
            (0.2, 4),
        ]

    def test_grid_without_axes_is_single(self):
        assert Sweep.grid(ScenarioSpec()) == [ScenarioSpec()]

    def test_grid_empty_axis_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            Sweep.grid(ScenarioSpec(), load=())

    def test_grid_unknown_axis_rejected(self):
        with pytest.raises(ConfigError, match="axis"):
            Sweep.grid(ScenarioSpec(), lod=(0.1,))

    def test_grid_dotted_axis_reaches_traffic_params(self):
        specs = Sweep.grid(
            ScenarioSpec(traffic="onoff"),
            **{"traffic_params.packets_per_burst": (2, 8)},
        )
        assert [dict(s.traffic_params) for s in specs] == [
            {"packets_per_burst": 2},
            {"packets_per_burst": 8},
        ]

    def test_zip_pairs_axes(self):
        specs = Sweep.zip(
            ScenarioSpec(), load=(0.1, 0.2), seed=(7, 8)
        )
        assert [(s.load, s.seed) for s in specs] == [(0.1, 7), (0.2, 8)]

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="equal lengths"):
            Sweep.zip(ScenarioSpec(), load=(0.1, 0.2), seed=(7,))

    def test_base_accepts_mapping(self):
        specs = Sweep.grid({"traffic": "burst"}, load=(0.1,))
        assert specs[0].traffic == "burst"

    def test_invalid_axis_value_surfaces_config_error(self):
        with pytest.raises(ConfigError, match="load"):
            Sweep.grid(ScenarioSpec(), load=(0.0,))


class TestSweepFiles:
    def test_from_dict_grid(self):
        specs = Sweep.from_dict(
            {
                "base": {"traffic": "burst", "packets": 10},
                "grid": {"load": [0.1, 0.2]},
            }
        )
        assert len(specs) == 2
        assert all(s.packets == 10 for s in specs)

    def test_from_dict_zip(self):
        specs = Sweep.from_dict(
            {"zip": {"load": [0.1, 0.2], "seed": [5, 6]}}
        )
        assert [(s.load, s.seed) for s in specs] == [(0.1, 5), (0.2, 6)]

    def test_from_dict_base_only(self):
        specs = Sweep.from_dict({"base": {"traffic": "poisson"}})
        assert len(specs) == 1

    def test_from_dict_grid_and_zip_rejected(self):
        with pytest.raises(ConfigError, match="not both"):
            Sweep.from_dict(
                {"grid": {"load": [0.1]}, "zip": {"seed": [1]}}
            )

    def test_from_dict_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="sweep file"):
            Sweep.from_dict({"axes": {"load": [0.1]}})

    def test_from_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(
            json.dumps({"grid": {"buffer_depth": [2, 4, 8]}})
        )
        specs = Sweep.from_file(str(path))
        assert [s.buffer_depth for s in specs] == [2, 4, 8]

    def test_from_file_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="JSON"):
            Sweep.from_file(str(path))

    def test_from_file_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigError, match="object"):
            Sweep.from_file(str(path))


class TestRoutingSpelling:
    def test_multipath_forms_accepted(self):
        assert ScenarioSpec(routing="multipath").routing == "multipath"
        assert ScenarioSpec(routing="multipath:3").routing == "multipath:3"

    def test_multipath_typos_rejected(self):
        for bad in ("multipath4", "multipathX", "multipath:", "multipath:0"):
            with pytest.raises(ConfigError, match="routing"):
                ScenarioSpec(routing=bad)


class TestTelemetryWindowsField:
    def test_round_trip_and_key(self):
        spec = ScenarioSpec(packets=40, telemetry_windows=500)
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.telemetry_windows == 500
        assert spec.key != ScenarioSpec(packets=40).key

    def test_none_is_omitted_from_dict(self):
        """Legacy cache keys must not change when the field is unset:
        a spec without telemetry serialises exactly as before the
        field existed."""
        spec = ScenarioSpec(packets=40)
        assert "telemetry_windows" not in spec.to_dict()
        assert spec == ScenarioSpec.from_dict(spec.to_dict())

    @pytest.mark.parametrize("bad", [0, -5, 1.5, "100", True])
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ConfigError, match="telemetry_windows"):
            ScenarioSpec(telemetry_windows=bad)
