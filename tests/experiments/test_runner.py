"""Runner tests: metrics, ordering, and serial/parallel determinism."""

import json

import pytest

from repro.core.errors import ConfigError
from repro.experiments import (
    ResultCache,
    ScenarioSpec,
    Sweep,
    SweepRunner,
    run_scenario,
    run_sweep,
)

#: A small, fast sweep: 6 scenarios across traffic models and depths.
SPECS = Sweep.grid(
    ScenarioSpec(packets=40, seed=3),
    traffic=("uniform", "burst", "poisson"),
    buffer_depth=(2, 4),
)


def records(results):
    return [r.record() for r in results]


class TestRunScenario:
    def test_metrics_shape(self):
        result = run_scenario(ScenarioSpec(traffic="uniform", packets=30))
        m = result.metrics
        assert m["completed"] is True
        assert m["packets_received"] == 4 * 30
        assert m["cycles"] > 0
        assert m["mean_latency"] > 0
        assert m["p95_latency"] >= m["p50_latency"]
        assert m["min_latency"] <= m["mean_latency"] <= m["max_latency"]
        assert 0.0 <= m["congestion_rate"] <= 1.0
        assert m["accepted_flits_per_cycle"] > 0
        assert result.wall_seconds > 0
        assert not result.cached

    def test_pure_function_of_spec(self):
        spec = ScenarioSpec(traffic="burst", packets=30, seed=9)
        assert (
            run_scenario(spec).record() == run_scenario(spec).record()
        )

    def test_record_round_trip(self):
        from repro.experiments.runner import ScenarioResult

        result = run_scenario(ScenarioSpec(packets=20))
        clone = ScenarioResult.from_record(result.record())
        assert clone.spec == result.spec
        assert dict(clone.metrics) == dict(result.metrics)
        assert clone.record() == result.record()

    def test_record_excludes_wall_clock(self):
        result = run_scenario(ScenarioSpec(packets=20))
        blob = json.dumps(result.record())
        assert "wall" not in blob


class TestSweepRunnerSerial:
    def test_results_in_spec_order(self):
        results = SweepRunner().run(SPECS)
        assert [r.spec for r in results] == list(SPECS)

    def test_duplicates_share_results(self):
        spec = ScenarioSpec(packets=20)
        runner = SweepRunner()
        results = runner.run([spec, spec, spec])
        assert runner.last_stats.executed == 1
        assert records(results)[0] == records(results)[1] == records(results)[2]

    def test_stats_accounting(self):
        runner = SweepRunner()
        runner.run(SPECS)
        stats = runner.last_stats
        assert stats.scenarios == len(SPECS)
        assert stats.executed == len(SPECS)
        assert stats.cached == 0
        assert stats.wall_seconds > 0
        assert stats.scenarios_per_second > 0

    def test_progress_callback(self):
        seen = []
        runner = SweepRunner(
            progress=lambda done, total, r: seen.append((done, total))
        )
        runner.run(SPECS[:2])
        assert seen == [(1, 2), (2, 2)]

    def test_non_spec_rejected(self):
        with pytest.raises(ConfigError, match="ScenarioSpec"):
            SweepRunner().run([{"traffic": "uniform"}])

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            SweepRunner(workers=0)


class TestDeterminism:
    """Satellite: serial vs parallel vs cached are bit-identical."""

    def test_serial_vs_parallel_identical(self):
        serial = SweepRunner(workers=1).run(SPECS)
        parallel = SweepRunner(workers=4).run(SPECS)
        assert records(serial) == records(parallel)

    def test_parallel_records_canonical_bytes(self):
        serial = SweepRunner(workers=1).run(SPECS)
        parallel = SweepRunner(workers=2).run(SPECS)
        for a, b in zip(serial, parallel):
            assert json.dumps(a.record(), sort_keys=True).encode() == (
                json.dumps(b.record(), sort_keys=True).encode()
            )

    def test_cached_identical_and_byte_stable(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = SweepRunner(cache=cache).run(SPECS)
        stored = [cache.get_bytes(s.key) for s in SPECS]
        runner = SweepRunner(cache=cache)
        second = runner.run(SPECS)
        assert runner.last_stats.executed == 0
        assert runner.last_stats.cached == len(SPECS)
        assert all(r.cached for r in second)
        assert records(first) == records(second)
        # The on-disk bytes did not change across the second run.
        assert [cache.get_bytes(s.key) for s in SPECS] == stored

    def test_partial_cache_runs_only_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        SweepRunner(cache=cache).run(SPECS[:3])
        runner = SweepRunner(cache=cache)
        results = runner.run(SPECS)
        assert runner.last_stats.cached == 3
        assert runner.last_stats.executed == len(SPECS) - 3
        assert [r.cached for r in results] == [True] * 3 + [
            False
        ] * (len(SPECS) - 3)

    def test_parallel_with_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        parallel = SweepRunner(workers=3, cache=cache).run(SPECS)
        serial = SweepRunner(workers=1).run(SPECS)
        assert records(parallel) == records(serial)
        assert len(cache) == len(SPECS)

    def test_run_sweep_wrapper(self):
        results = run_sweep(SPECS[:2], workers=2)
        assert records(results) == records(SweepRunner().run(SPECS[:2]))


class TestLiveProgress:
    def test_progress_fires_during_execution(self):
        # The callback must fire as scenarios retire, not in one burst
        # after the sweep: each tick sees only the work done so far.
        executed_at_tick = []
        runner = SweepRunner(
            progress=lambda done, total, r: executed_at_tick.append(
                (done, r.cached)
            )
        )
        runner.run(SPECS[:3])
        assert executed_at_tick == [(1, False), (2, False), (3, False)]

    def test_progress_cache_hits_first(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        SweepRunner(cache=cache).run(SPECS[:2])
        order = []
        runner = SweepRunner(
            cache=cache,
            progress=lambda done, total, r: order.append(r.cached),
        )
        runner.run(SPECS[:4])
        assert order == [True, True, False, False]

    def test_parallel_cache_persists_per_completion(self, tmp_path):
        # imap + per-completion put: after a parallel run every record
        # is on disk (the interrupted-sweep resumability contract).
        cache = ResultCache(str(tmp_path))
        SweepRunner(workers=2, cache=cache).run(SPECS[:4])
        assert len(cache) == 4


class TestWindowSeries:
    def test_run_scenario_embeds_window_series(self):
        spec = ScenarioSpec(packets=40, telemetry_windows=200)
        result = run_scenario(spec)
        series = result.metrics["window_series"]
        assert series and series[0]["start"] == 0
        assert series[-1]["end"] == result.metrics["cycles"]
        assert sum(w["ejected_packets"] for w in series) == (
            result.metrics["packets_received"]
        )

    def test_window_series_deterministic_and_cacheable(self, tmp_path):
        spec = ScenarioSpec(packets=40, telemetry_windows=200)
        cache = ResultCache(str(tmp_path))
        first = SweepRunner(cache=cache).run([spec])[0]
        second = SweepRunner(cache=cache).run([spec])[0]
        assert second.cached
        assert first.metrics == second.metrics
        assert json.dumps(first.record(), sort_keys=True) == (
            json.dumps(second.record(), sort_keys=True)
        )

    def test_no_series_without_field(self):
        result = run_scenario(ScenarioSpec(packets=40))
        assert "window_series" not in result.metrics
