"""Unit tests for the six-step emulation flow and monitor."""

import pytest

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.flow import EmulationFlow
from repro.core.monitor import Monitor
from repro.core.platform import build_platform


class TestFlow:
    def test_first_run_synthesises(self):
        flow = EmulationFlow()
        report = flow.run(paper_platform_config(max_packets=50))
        assert report.resynthesized
        assert flow.synthesis_runs == 1
        assert report.result.completed

    def test_software_change_skips_synthesis(self):
        flow = EmulationFlow()
        flow.run(paper_platform_config(max_packets=50, seed=1))
        report = flow.run(
            paper_platform_config(max_packets=80, seed=9)
        )
        assert not report.resynthesized
        assert report.hardware_steps_skipped
        assert flow.synthesis_runs == 1

    def test_routing_case_change_skips_synthesis(self):
        flow = EmulationFlow()
        flow.run(paper_platform_config(max_packets=50))
        report = flow.run(
            paper_platform_config(max_packets=50,
                                  routing_case="disjoint")
        )
        assert not report.resynthesized

    def test_hardware_change_resynthesises(self):
        flow = EmulationFlow()
        flow.run(paper_platform_config(max_packets=50, buffer_depth=4))
        report = flow.run(
            paper_platform_config(max_packets=50, buffer_depth=8)
        )
        assert report.resynthesized
        assert flow.synthesis_runs == 2

    def test_traffic_family_change_keeps_hardware(self):
        # Every stochastic model runs on the same TG datapath, but the
        # TG *model tag* is part of the device mix; uniform->burst is a
        # software-visible change of the same stochastic hardware only
        # if the device mix ignores it.  Our signature includes the
        # model tag, so this documents the conservative behaviour.
        flow = EmulationFlow()
        flow.run(paper_platform_config(traffic="uniform", max_packets=50))
        report = flow.run(
            paper_platform_config(traffic="burst", max_packets=50)
        )
        assert report.resynthesized

    def test_step_timings_recorded(self):
        report = EmulationFlow().run(
            paper_platform_config(max_packets=50)
        )
        assert set(report.step_seconds) == {
            "1-2 hardware",
            "3 initialisation",
            "4 software",
            "5 emulation",
            "6 report",
        }
        assert all(t >= 0 for t in report.step_seconds.values())

    def test_sweep_reuses_hardware(self):
        flow = EmulationFlow()
        configs = [
            paper_platform_config(max_packets=30, seed=s)
            for s in range(4)
        ]
        reports = flow.run_sweep(configs)
        assert [r.resynthesized for r in reports] == [
            True, False, False, False,
        ]

    def test_report_text_contains_sections(self):
        report = EmulationFlow().run(
            paper_platform_config(max_packets=50)
        )
        assert "emulation report" in report.report_text
        assert "traffic generators:" in report.report_text
        assert "timing:" in report.report_text

    def test_synthesis_report_attached(self):
        report = EmulationFlow().run(
            paper_platform_config(max_packets=50,
                                  receptor_kind="stochastic")
        )
        assert report.synthesis.total_slices > 0
        assert report.synthesis.fits


class TestMonitor:
    @pytest.fixture
    def run_platform(self):
        platform = build_platform(paper_platform_config(max_packets=80))
        result = EmulationEngine(platform).run()
        return platform, result

    def test_device_listing(self, run_platform):
        platform, _ = run_platform
        text = Monitor(platform).device_listing()
        assert "control" in text
        assert text.count("tg ") == 4
        assert text.count("tr ") == 4

    def test_generator_section(self, run_platform):
        platform, _ = run_platform
        text = Monitor(platform).generator_section()
        assert "sent 80 packets" in text

    def test_network_section_orders_by_load(self, run_platform):
        platform, _ = run_platform
        text = Monitor(platform).network_section()
        lines = [l for l in text.splitlines() if "->" in l]
        # Hot middle links come first.
        assert "1->4" in lines[0] or "4->1" in lines[0]

    def test_timing_section(self, run_platform):
        platform, result = run_platform
        text = Monitor(platform).timing_section(result)
        assert "50 MHz" in text
        assert "cycles/sec" in text

    def test_final_report_without_result(self, run_platform):
        platform, _ = run_platform
        text = Monitor(platform).final_report()
        assert "timing:" not in text
        assert "network:" in text
