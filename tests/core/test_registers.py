"""Unit tests for registers and register banks."""

import pytest

from repro.core.registers import (
    Register,
    RegisterAccessError,
    RegisterBank,
)


class TestRegister:
    def test_read_write(self):
        r = Register("CTRL", value=5)
        assert r.read() == 5
        r.write(9)
        assert r.read() == 9

    def test_values_masked_to_32_bits(self):
        r = Register("X", value=0x1_FFFF_FFFF)
        assert r.read() == 0xFFFFFFFF
        r.write(-1)
        assert r.read() == 0xFFFFFFFF

    def test_read_only_rejects_write(self):
        r = Register("STATUS", writable=False)
        with pytest.raises(RegisterAccessError):
            r.write(1)

    def test_poke_bypasses_read_only(self):
        r = Register("STATUS", writable=False)
        r.poke(7)
        assert r.read() == 7

    def test_on_write_callback(self):
        seen = []
        r = Register("CTRL", on_write=seen.append)
        r.write(3)
        assert seen == [3]

    def test_on_read_produces_live_value(self):
        counter = {"n": 0}

        def live():
            counter["n"] += 1
            return counter["n"]

        r = Register("COUNT", writable=False, on_read=live)
        assert r.read() == 1
        assert r.read() == 2


class TestRegisterBank:
    def make_bank(self):
        bank = RegisterBank("dev")
        bank.define("A", value=1)
        bank.define("B", value=2)
        bank.define("C", value=3, writable=False)
        return bank

    def test_name_access(self):
        bank = self.make_bank()
        assert bank["B"].read() == 2
        assert "A" in bank
        assert "Z" not in bank
        assert len(bank) == 3

    def test_unknown_name_raises(self):
        with pytest.raises(RegisterAccessError):
            self.make_bank()["Z"]

    def test_duplicate_name_rejected(self):
        bank = self.make_bank()
        with pytest.raises(RegisterAccessError):
            bank.define("A")

    def test_offsets_are_word_aligned(self):
        bank = self.make_bank()
        assert bank.offset_of("A") == 0
        assert bank.offset_of("B") == 4
        assert bank.offset_of("C") == 8

    def test_offset_read_write(self):
        bank = self.make_bank()
        assert bank.read(4) == 2
        bank.write(0, 99)
        assert bank["A"].read() == 99

    def test_unaligned_access_rejected(self):
        with pytest.raises(RegisterAccessError, match="unaligned"):
            self.make_bank().read(2)

    def test_out_of_range_rejected(self):
        with pytest.raises(RegisterAccessError, match="beyond"):
            self.make_bank().read(12)

    def test_write_to_read_only_via_offset(self):
        with pytest.raises(RegisterAccessError, match="read-only"):
            self.make_bank().write(8, 1)

    def test_dump(self):
        assert self.make_bank().dump() == {"A": 1, "B": 2, "C": 3}

    def test_names_in_order(self):
        assert self.make_bank().names() == ["A", "B", "C"]
