"""Unit tests for the platform configuration and traffic-model factory."""

import pytest

from repro.core.config import (
    PlatformConfig,
    TGSpec,
    TRSpec,
    make_traffic_model,
    paper_platform_config,
)
from repro.core.errors import ConfigError
from repro.noc.routing import MultiPathTableRouting, TableRouting
from repro.noc.switch import SwitchingMode
from repro.noc.topology import mesh
from repro.traffic.burst import BurstTraffic
from repro.traffic.onoff import OnOffTraffic
from repro.traffic.poisson import PoissonTraffic
from repro.traffic.trace import TraceTraffic, synthetic_burst_trace
from repro.traffic.uniform import UniformTraffic


class TestSpecs:
    def test_tg_spec_validation(self):
        with pytest.raises(ConfigError):
            TGSpec(node=0, model="fractal")
        with pytest.raises(ConfigError):
            TGSpec(node=-1)

    def test_tr_spec_validation(self):
        with pytest.raises(ConfigError):
            TRSpec(node=0, kind="quantum")
        with pytest.raises(ConfigError):
            TRSpec(node=-2)


class TestTopologyResolution:
    def test_paper(self):
        cfg = PlatformConfig(topology="paper")
        assert cfg.resolve_topology().name == "paper6"

    def test_mesh_spec(self):
        cfg = PlatformConfig(topology="mesh:3:2")
        topo = cfg.resolve_topology()
        assert topo.n_switches == 6

    def test_torus_and_ring_specs(self):
        assert PlatformConfig(
            topology="torus:3:3"
        ).resolve_topology().n_switches == 9
        assert PlatformConfig(
            topology="ring:5"
        ).resolve_topology().n_switches == 5

    def test_topology_object_passthrough(self):
        topo = mesh(2, 2)
        assert PlatformConfig(topology=topo).resolve_topology() is topo

    def test_malformed_spec(self):
        with pytest.raises(ConfigError):
            PlatformConfig(topology="mesh:x:y").resolve_topology()
        with pytest.raises(ConfigError):
            PlatformConfig(topology="hypercube:4").resolve_topology()


class TestRoutingResolution:
    def test_paper_cases(self):
        cfg = PlatformConfig(topology="paper", routing="paper_overlap")
        r = cfg.resolve_routing(cfg.resolve_topology())
        assert isinstance(r, TableRouting)

    def test_paper_routing_on_other_topology_rejected(self):
        cfg = PlatformConfig(topology="mesh:2:2", routing="paper_overlap")
        with pytest.raises(ConfigError, match="paper"):
            cfg.resolve_routing(cfg.resolve_topology())

    def test_shortest(self):
        cfg = PlatformConfig(topology="mesh:2:2", routing="shortest")
        assert isinstance(
            cfg.resolve_routing(cfg.resolve_topology()), TableRouting
        )

    def test_multipath_with_width(self):
        cfg = PlatformConfig(topology="mesh:2:2", routing="multipath:2")
        r = cfg.resolve_routing(cfg.resolve_topology())
        assert isinstance(r, MultiPathTableRouting)

    def test_unknown_routing(self):
        cfg = PlatformConfig(topology="mesh:2:2", routing="astrology")
        with pytest.raises(ConfigError):
            cfg.resolve_routing(cfg.resolve_topology())


class TestAutoRouting:
    """routing="auto" must pick a deadlock-free family default."""

    @pytest.mark.parametrize(
        "topology, expected",
        [
            ("mesh:3:3", "shortest"),
            ("tree:2:3", "shortest"),
            ("ring:6", "updown"),
            ("spidergon:8", "updown"),
            # Torus wrap-around channels are cyclic too: BFS shortest
            # paths pass the channel-dependency check only on the
            # smallest grids, so "auto" must not pick them.
            ("torus:3:3", "updown"),
            ("torus:5:5", "updown"),
        ],
    )
    def test_family_defaults(self, topology, expected):
        from repro.core.config import generic_platform_config

        cfg = generic_platform_config(topology=topology, max_packets=10)
        assert cfg.routing == expected

    def test_torus_auto_builds_deadlock_free(self):
        """Regression: torus:5:5 with routing="auto" used to resolve to
        shortest paths, whose channel-dependency graph cycles — the
        platform build refused the tables with a ConfigError."""
        from repro.core.config import generic_platform_config
        from repro.core.platform import build_platform

        platform = build_platform(
            generic_platform_config(topology="torus:5:5", max_packets=5)
        )
        assert platform.topology.name == "torus5x5"

    def test_torus_shortest_still_refused_at_build(self):
        """The channel-dependency check keeps vetting explicit specs."""
        from repro.core.config import generic_platform_config
        from repro.core.platform import build_platform

        cfg = generic_platform_config(
            topology="torus:5:5", routing="shortest", max_packets=5
        )
        with pytest.raises(ConfigError, match="dependency cycle"):
            build_platform(cfg)


class TestSignatures:
    def test_software_change_keeps_hardware_signature(self):
        a = paper_platform_config(max_packets=100, seed=1)
        b = paper_platform_config(max_packets=9_999, seed=42)
        assert a.hardware_signature() == b.hardware_signature()
        assert a.software_signature() != b.software_signature()

    def test_buffer_depth_changes_hardware_signature(self):
        a = paper_platform_config(buffer_depth=4)
        b = paper_platform_config(buffer_depth=8)
        assert a.hardware_signature() != b.hardware_signature()

    def test_routing_case_is_software(self):
        a = paper_platform_config(routing_case="overlap")
        b = paper_platform_config(routing_case="disjoint")
        assert a.hardware_signature() == b.hardware_signature()
        assert a.software_signature() != b.software_signature()

    def test_receptor_kind_changes_hardware(self):
        a = paper_platform_config(receptor_kind="stochastic")
        b = paper_platform_config(receptor_kind="tracedriven")
        assert a.hardware_signature() != b.hardware_signature()

    def test_with_software_copies(self):
        a = paper_platform_config()
        b = a.with_software(name="other")
        assert b.name == "other"
        assert a.name != "other"

    def test_validation(self):
        with pytest.raises(ConfigError):
            PlatformConfig(buffer_depth=0)
        with pytest.raises(ConfigError):
            PlatformConfig(f_clk_hz=0)
        with pytest.raises(ConfigError):
            PlatformConfig(switching="teleport")

    def test_switching_string_accepted(self):
        cfg = PlatformConfig(switching="store_and_forward")
        assert cfg.switching is SwitchingMode.STORE_AND_FORWARD


class TestTrafficModelFactory:
    def test_uniform_by_load(self):
        spec = TGSpec(
            node=0, model="uniform",
            params={"dst": 1, "length": 8, "load": 0.45},
        )
        model = make_traffic_model(spec)
        assert isinstance(model, UniformTraffic)
        assert model.expected_load() == pytest.approx(8 / 18)

    def test_uniform_by_interval(self):
        spec = TGSpec(
            node=0, model="uniform",
            params={"dst": 1, "length": 4, "interval": 10},
        )
        assert make_traffic_model(spec).expected_load() == pytest.approx(
            0.4
        )

    def test_burst_by_probabilities(self):
        spec = TGSpec(
            node=0, model="burst",
            params={"dst": 1, "length": 4, "p_on": 0.2, "p_off": 0.3},
        )
        model = make_traffic_model(spec)
        assert isinstance(model, BurstTraffic)
        assert model.p_on == 0.2

    def test_burst_by_load(self):
        spec = TGSpec(
            node=0, model="burst",
            params={
                "dst": 1, "length": 4, "load": 0.45,
                "mean_burst_packets": 8,
            },
        )
        model = make_traffic_model(spec)
        assert model.expected_load() == pytest.approx(0.45)

    def test_poisson(self):
        spec = TGSpec(
            node=0, model="poisson",
            params={"dst": 1, "length": 4, "load": 0.3},
        )
        assert isinstance(make_traffic_model(spec), PoissonTraffic)

    def test_onoff(self):
        spec = TGSpec(
            node=0, model="onoff",
            params={
                "dst": 1, "length": 4, "packets_per_burst": 4,
                "gap": 16,
            },
        )
        assert isinstance(make_traffic_model(spec), OnOffTraffic)

    def test_trace_synthetic(self):
        spec = TGSpec(
            node=0, model="trace",
            params={
                "dst": 1, "n_bursts": 3, "packets_per_burst": 2,
                "flits_per_packet": 4,
            },
        )
        model = make_traffic_model(spec)
        assert isinstance(model, TraceTraffic)
        assert len(model.trace) == 6

    def test_trace_object(self):
        trace = synthetic_burst_trace(2, 2, 2, 0, dst=1)
        spec = TGSpec(node=0, model="trace", params={"trace": trace})
        assert make_traffic_model(spec).trace is trace

    def test_missing_parameters_reported(self):
        with pytest.raises(ConfigError, match="missing"):
            make_traffic_model(
                TGSpec(node=0, model="uniform", params={"dst": 1})
            )
        with pytest.raises(ConfigError):
            make_traffic_model(TGSpec(node=0, model="trace", params={}))

    def test_missing_dst_reported(self):
        with pytest.raises(ConfigError, match="dst"):
            make_traffic_model(
                TGSpec(node=0, model="uniform", params={"length": 4})
            )

    def test_dst_list_becomes_uniform_chooser(self):
        spec = TGSpec(
            node=0, model="uniform",
            params={"dst": [1, 2], "length": 2, "interval": 4},
        )
        model = make_traffic_model(spec)
        assert set(model.destination.destinations()) == {1, 2}


class TestPaperConfig:
    def test_default_shape(self):
        cfg = paper_platform_config()
        assert len(cfg.tgs) == 4
        assert len(cfg.trs) == 4
        assert cfg.routing == "paper_overlap"
        assert {tg.node for tg in cfg.tgs} == {0, 1, 2, 3}
        assert {tr.node for tr in cfg.trs} == {4, 5, 6, 7}

    def test_flows_match_paper_pairs(self):
        from repro.noc.topology import paper_flow_pairs

        cfg = paper_platform_config()
        pairs = {(tg.node, tg.params["dst"]) for tg in cfg.tgs}
        assert pairs == set(paper_flow_pairs())

    def test_traffic_families(self):
        for family in ("uniform", "burst", "poisson", "onoff", "trace"):
            cfg = paper_platform_config(traffic=family, max_packets=10)
            assert all(tg.model == family for tg in cfg.tgs)

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigError):
            paper_platform_config(traffic="telepathy")

    def test_traffic_params_override(self):
        cfg = paper_platform_config(
            traffic="burst", traffic_params={"mean_burst_packets": 16}
        )
        assert cfg.tgs[0].params["mean_burst_packets"] == 16

    def test_distinct_seeds_per_generator(self):
        cfg = paper_platform_config(seed=10)
        assert len({tg.seed for tg in cfg.tgs}) == 4
