"""Idle fast-forward and the deadlock guard fast-path.

The engine's stagnation detector must keep firing — and keep reporting
the O(1) ``in_flight_flits`` counter correctly — now that completion
checks run every cycle and quiescent stretches are skipped by idle
fast-forward.
"""

import re

import pytest

from repro.core.config import PlatformConfig, TGSpec, TRSpec
from repro.core.engine import EmulationEngine
from repro.core.errors import EmulationError
from repro.core.platform import build_platform
from repro.noc.routing import build_tables_from_paths
from repro.noc.topology import ring


def wedging_ring_config(max_packets=20):
    """Clockwise 4-ring flows with tiny buffers: wedges deterministically.

    Every flow's wormhole spans two switches (6-flit packets, 2-flit
    buffers), and the clockwise channel-dependency cycle closes as soon
    as all four flows saturate, so traffic "ends" with flits stuck.
    """
    topo = ring(4)
    routing = build_tables_from_paths(
        topo,
        {
            (0, 2): (0, 1, 2),
            (1, 3): (1, 2, 3),
            (2, 0): (2, 3, 0),
            (3, 1): (3, 0, 1),
        },
    )
    params = {"length": 6, "interval": 6}
    return PlatformConfig(
        topology=topo,
        routing=routing,
        buffer_depth=2,
        check_deadlock=False,
        tgs=[
            TGSpec(
                node=src,
                params={**params, "dst": dst},
                max_packets=max_packets,
            )
            for src, dst in ((0, 2), (1, 3), (2, 0), (3, 1))
        ],
        trs=[TRSpec(node=n) for n in range(4)],
    )


class TestDeadlockGuard:
    def test_stagnation_detector_fires_with_fast_forward_active(self):
        platform = build_platform(wedging_ring_config())
        engine = EmulationEngine(platform)
        with pytest.raises(EmulationError, match="routing deadlock"):
            engine.run(stagnation_cycles=3000, fast_forward=True)

    def test_detector_reports_the_incremental_in_flight_counter(self):
        platform = build_platform(wedging_ring_config())
        engine = EmulationEngine(platform)
        with pytest.raises(EmulationError) as excinfo:
            engine.run(stagnation_cycles=3000)
        reported = int(
            re.search(r"(\d+) flits stuck", str(excinfo.value)).group(1)
        )
        network = platform.network
        assert reported == network.in_flight_flits
        # The O(1) counter the guard reads agrees with a full scan.
        assert reported == network.scan_in_flight_flits()
        assert reported > 0

    def test_detector_fires_without_fast_forward_too(self):
        platform = build_platform(wedging_ring_config())
        engine = EmulationEngine(platform)
        with pytest.raises(EmulationError, match="flits stuck"):
            engine.run(stagnation_cycles=3000, fast_forward=False)

    def test_healthy_low_load_run_does_not_trip_the_guard(self):
        """Fast-forward jumps longer than the stagnation window must
        not read as stagnation (progress clock follows quiescence)."""
        from repro.core.config import paper_platform_config

        platform = build_platform(
            paper_platform_config(
                traffic="poisson", load=0.001, max_packets=20
            )
        )
        result = EmulationEngine(platform).run(stagnation_cycles=2000)
        assert result.completed
        assert result.packets_received == 80


class TestIdleFastForward:
    def test_quiescent_platform_jumps_to_next_emission(self):
        from repro.core.config import paper_platform_config

        platform = build_platform(
            paper_platform_config(
                traffic="onoff", load=0.01, max_packets=50
            )
        )
        # Drain the first burst completely, then the fabric is idle.
        guard = 0
        while True:
            platform.step()
            guard += 1
            assert guard < 50_000
            if (
                platform.network.quiescent
                and platform.cycle >= platform._next_gen_poll - 1
            ):
                pass
            if platform.network.quiescent and platform._next_gen_poll > (
                platform.cycle + 1
            ):
                break
        before = platform.cycle
        skipped = platform.idle_fast_forward()
        assert skipped > 0
        assert platform.cycle == before + skipped
        # The jump lands exactly on the next mandatory generator poll.
        assert platform.cycle == platform._next_gen_poll

    def test_no_jump_while_flits_in_flight(self):
        from repro.core.config import paper_platform_config

        platform = build_platform(
            paper_platform_config(
                traffic="uniform", load=0.45, max_packets=100
            )
        )
        for _ in range(40):
            platform.step()
        assert not platform.network.quiescent
        assert platform.idle_fast_forward() == 0

    def test_no_jump_when_sampling_buffers(self):
        from repro.core.config import paper_platform_config

        cfg = paper_platform_config(
            traffic="onoff", load=0.01, max_packets=50
        )
        cfg.sample_buffers = True
        platform = build_platform(cfg)
        for _ in range(2000):
            platform.step()
        # Occupancy sampling must observe every idle cycle.
        assert platform.idle_fast_forward() == 0

    def test_exhausted_generators_do_not_fast_forward_forever(self):
        from repro.core.config import paper_platform_config

        platform = build_platform(
            paper_platform_config(
                traffic="uniform", load=0.45, max_packets=5
            )
        )
        result = EmulationEngine(platform).run()
        assert result.completed
        # After completion nothing remains to jump to.
        assert platform.idle_fast_forward() == 0
