"""Unit tests for the 4-bus / 1024-device fabric (Slide 8)."""

import pytest

from repro.core.bus import (
    AddressError,
    BusFabric,
    DEVICES_PER_BUS,
    Device,
    N_BUSES,
    make_address,
    split_address,
)


class Dummy(Device):
    kind = "dummy"

    def __init__(self, name="d"):
        super().__init__(name)
        self.bank.define("R0", value=0xAA)
        self.bank.define("R1", value=0xBB)


class TestAddressCodec:
    def test_round_trip(self):
        addr = make_address(2, 513, 0x10)
        assert split_address(addr) == (2, 513, 0x10)

    def test_fields_do_not_alias(self):
        a = make_address(0, 1, 0)
        b = make_address(1, 0, 0)
        c = make_address(0, 0, 4)
        assert len({a, b, c}) == 3

    def test_limits(self):
        make_address(N_BUSES - 1, DEVICES_PER_BUS - 1, 4095)
        with pytest.raises(AddressError):
            make_address(N_BUSES, 0, 0)
        with pytest.raises(AddressError):
            make_address(0, DEVICES_PER_BUS, 0)
        with pytest.raises(AddressError):
            make_address(0, 0, 4096)

    def test_split_rejects_out_of_space(self):
        with pytest.raises(AddressError):
            split_address(1 << 24)
        with pytest.raises(AddressError):
            split_address(-1)


class TestAttachment:
    def test_auto_slot_allocation(self):
        fabric = BusFabric()
        a, b = Dummy("a"), Dummy("b")
        base_a = fabric.attach(a)
        base_b = fabric.attach(b)
        assert split_address(base_a)[1] == 0
        assert split_address(base_b)[1] == 1

    def test_explicit_slot(self):
        fabric = BusFabric()
        d = Dummy()
        base = fabric.attach(d, bus=1, slot=7)
        assert split_address(base) == (1, 7, 0)

    def test_occupied_slot_rejected(self):
        fabric = BusFabric()
        fabric.attach(Dummy("a"), slot=0)
        with pytest.raises(AddressError, match="occupied"):
            fabric.attach(Dummy("b"), slot=0)

    def test_double_attach_rejected(self):
        fabric = BusFabric()
        d = Dummy()
        fabric.attach(d)
        with pytest.raises(AddressError, match="already attached"):
            fabric.attach(d)

    def test_bad_bus_rejected(self):
        with pytest.raises(AddressError):
            BusFabric().attach(Dummy(), bus=9)

    def test_devices_listing_ordered(self):
        fabric = BusFabric()
        a = Dummy("a")
        b = Dummy("b")
        fabric.attach(a, bus=1)
        fabric.attach(b, bus=0)
        assert fabric.devices() == [b, a]


class TestAccess:
    def test_read_write_through_fabric(self):
        fabric = BusFabric()
        d = Dummy()
        base = fabric.attach(d)
        assert fabric.read(base) == 0xAA
        fabric.write(base + 4, 0x123)
        assert d.bank["R1"].read() == 0x123

    def test_unmapped_device_raises(self):
        fabric = BusFabric()
        with pytest.raises(AddressError, match="no device"):
            fabric.read(make_address(0, 3, 0))

    def test_access_counters(self):
        fabric = BusFabric()
        base = fabric.attach(Dummy())
        fabric.read(base)
        fabric.read(base)
        fabric.write(base, 1)
        assert fabric.reads[0] == 2
        assert fabric.writes[0] == 1
        assert fabric.total_accesses == 3

    def test_register_address_helper(self):
        fabric = BusFabric()
        d = Dummy()
        fabric.attach(d)
        assert fabric.read(d.register_address("R1")) == 0xBB

    def test_register_address_requires_attachment(self):
        with pytest.raises(AddressError, match="not attached"):
            Dummy().register_address("R0")
