"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.traffic == "uniform"
        assert args.packets == 2000
        assert args.routing == "overlap"

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--traffic", "psychic"])


class TestCommands:
    def test_run_prints_report(self, capsys):
        code = main(
            ["run", "--packets", "100", "--traffic", "uniform"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "emulation report" in out
        assert "traffic generators:" in out

    def test_run_burst_with_options(self, capsys):
        code = main(
            [
                "run",
                "--packets", "60",
                "--traffic", "burst",
                "--routing", "disjoint",
                "--depth", "8",
                "--seed", "3",
            ]
        )
        assert code == 0
        assert "received 240" in capsys.readouterr().out

    def test_synth_prints_table(self, capsys):
        code = main(["synth", "--receptors", "stochastic"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Number of slices" in out
        assert "XC2VP20" in out

    def test_synth_overflow_exit_code(self, capsys):
        # Deep buffers blow past the XC2VP20 -> non-zero exit.
        code = main(["synth", "--depth", "64"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DOES NOT FIT" in out

    def test_synth_auto_part_recovers(self, capsys):
        code = main(["synth", "--depth", "64", "--auto-part"])
        assert code == 0

    def test_sweep_prints_series(self, capsys):
        code = main(
            ["sweep", "--metric", "congestion", "--budget", "64"]
        )
        out = capsys.readouterr().out
        assert code == 0
        lines = [
            l for l in out.splitlines() if l.strip()[:1].isdigit()
        ]
        assert len(lines) == 7  # ppb in 1..64
