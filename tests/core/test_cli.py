"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.traffic == "uniform"
        assert args.packets == 2000
        assert args.routing == "overlap"

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--traffic", "psychic"])


class TestCommands:
    def test_run_prints_report(self, capsys):
        code = main(
            ["run", "--packets", "100", "--traffic", "uniform"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "emulation report" in out
        assert "traffic generators:" in out

    def test_run_burst_with_options(self, capsys):
        code = main(
            [
                "run",
                "--packets", "60",
                "--traffic", "burst",
                "--routing", "disjoint",
                "--depth", "8",
                "--seed", "3",
            ]
        )
        assert code == 0
        assert "received 240" in capsys.readouterr().out

    def test_run_profile_prints_hot_spots(self, capsys):
        code = main(["run", "--packets", "40", "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        # The emulation report still prints, followed by the profile.
        assert "emulation report" in out
        assert "profile: top 20 by cumulative time" in out
        assert "cumtime" in out
        # The engine loop itself must show up as a hot spot.
        assert "engine" in out

    def test_run_profile_generic_topology(self, capsys):
        code = main(
            [
                "run",
                "--topology", "mesh:2:2",
                "--packets", "30",
                "--profile",
                "--profile-top", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "profile: top 5 by cumulative time" in out
        assert "cumtime" in out

    def test_synth_prints_table(self, capsys):
        code = main(["synth", "--receptors", "stochastic"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Number of slices" in out
        assert "XC2VP20" in out

    def test_synth_overflow_exit_code(self, capsys):
        # Deep buffers blow past the XC2VP20 -> non-zero exit.
        code = main(["synth", "--depth", "64"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DOES NOT FIT" in out

    def test_synth_auto_part_recovers(self, capsys):
        code = main(["synth", "--depth", "64", "--auto-part"])
        assert code == 0

    def test_sweep_prints_series(self, capsys):
        code = main(
            ["sweep", "--metric", "congestion", "--budget", "64"]
        )
        out = capsys.readouterr().out
        assert code == 0
        lines = [
            l for l in out.splitlines() if l.strip()[:1].isdigit()
        ]
        assert len(lines) == 7  # ppb in 1..64


class TestTopologyOptions:
    def test_run_generic_topology(self, capsys):
        code = main(
            [
                "run",
                "--topology", "mesh:2:2",
                "--traffic", "poisson",
                "--load", "0.1",
                "--packets", "20",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "emulation report" in out
        assert "mesh2x2" in out

    def test_run_cyclic_topology_deadlock_free(self, capsys):
        code = main(
            [
                "run",
                "--topology", "spidergon:8",
                "--load", "0.1",
                "--packets", "10",
            ]
        )
        assert code == 0
        assert "spidergon8" in capsys.readouterr().out

    def test_run_paper_default_unchanged(self):
        args = build_parser().parse_args(["run"])
        assert args.topology == "paper"
        assert args.routing == "overlap"

    def test_synth_generic_topology(self, capsys):
        code = main(["synth", "--topology", "ring:4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Number of slices" in out

    def test_run_malformed_topology_clean_error(self, capsys):
        code = main(["run", "--topology", "mesh:bad", "--packets", "5"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "Traceback" not in captured.err

    def test_synth_malformed_topology_clean_error(self, capsys):
        code = main(["synth", "--topology", "ring:0"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err


class TestBatchCommand:
    def make_sweep(self, tmp_path, payload=None):
        import json

        path = tmp_path / "sweep.json"
        path.write_text(
            json.dumps(
                payload
                or {
                    "base": {"traffic": "uniform", "packets": 30},
                    "grid": {"load": [0.15, 0.3], "buffer_depth": [2, 4]},
                }
            )
        )
        return str(path)

    def test_batch_runs_grid(self, tmp_path, capsys):
        sweep = self.make_sweep(tmp_path)
        code = main(
            ["batch", sweep, "--cache-dir", str(tmp_path / "cache")]
        )
        captured = capsys.readouterr()
        assert code == 0
        # 4 scenario rows + header + rule.
        assert len(captured.out.strip().splitlines()) == 6
        assert "mean_latency" in captured.out
        assert "4 scenario(s): 4 executed, 0 cached" in captured.err

    def test_batch_second_run_cached(self, tmp_path, capsys):
        sweep = self.make_sweep(tmp_path)
        cache = str(tmp_path / "cache")
        main(["batch", sweep, "--cache-dir", cache])
        first = capsys.readouterr().out
        code = main(["batch", sweep, "--cache-dir", cache])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == first  # cached rows render identically
        assert "0 executed, 4 cached" in captured.err

    def test_batch_no_cache(self, tmp_path, capsys, monkeypatch):
        # The default cache dir is relative to the working directory;
        # run from tmp_path so a --no-cache regression would be seen.
        monkeypatch.chdir(tmp_path)
        sweep = self.make_sweep(tmp_path)
        code = main(["batch", sweep, "--no-cache"])
        captured = capsys.readouterr()
        assert code == 0
        assert "4 executed" in captured.err
        assert not (tmp_path / ".repro-cache").exists()

    def test_batch_default_cache_dir(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        sweep = self.make_sweep(tmp_path)
        code = main(["batch", sweep])
        capsys.readouterr()
        assert code == 0
        assert len(list((tmp_path / ".repro-cache").glob("*.json"))) == 4

    def test_batch_group_by_and_exports(self, tmp_path, capsys):
        import csv
        import json

        sweep = self.make_sweep(tmp_path)
        csv_path = tmp_path / "rows.csv"
        json_path = tmp_path / "rows.json"
        code = main(
            [
                "batch", sweep,
                "--cache-dir", str(tmp_path / "cache"),
                "--group-by", "load",
                "--metrics", "cycles,mean_latency",
                "--csv", str(csv_path),
                "--json", str(json_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cycles.mean" in out
        with open(csv_path, newline="") as fh:
            assert len(list(csv.DictReader(fh))) == 4
        assert len(json.loads(json_path.read_text())) == 4

    def test_batch_workers_match_serial(self, tmp_path, capsys):
        sweep = self.make_sweep(tmp_path)
        main(["batch", sweep, "--no-cache"])
        serial = capsys.readouterr().out
        code = main(["batch", sweep, "--no-cache", "--workers", "2"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == serial

    def test_batch_missing_file(self, tmp_path, capsys):
        code = main(["batch", str(tmp_path / "absent.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_batch_bad_sweep_document(self, tmp_path, capsys):
        sweep = self.make_sweep(
            tmp_path, {"grid": {"warp": [1, 2]}}
        )
        code = main(["batch", sweep])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_batch_bad_group_by(self, tmp_path, capsys):
        sweep = self.make_sweep(tmp_path)
        code = main(
            [
                "batch", sweep,
                "--no-cache",
                "--group-by", "flux_capacitor",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_batch_verbose_progress(self, tmp_path, capsys):
        sweep = self.make_sweep(tmp_path)
        code = main(["batch", sweep, "--no-cache", "--verbose"])
        captured = capsys.readouterr()
        assert code == 0
        assert "[4/4]" in captured.err


class TestTelemetryFlags:
    def test_progress_prints_live_lines(self, capsys):
        code = main(["run", "--packets", "60", "--progress"])
        captured = capsys.readouterr()
        assert code == 0
        assert "emulation report" in captured.out
        lines = [
            l for l in captured.err.splitlines() if l.startswith("cycle")
        ]
        assert lines and lines[-1].endswith("done")

    def test_windows_flag_prints_series(self, capsys):
        code = main(["run", "--packets", "60", "--windows", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry windows:" in out
        assert "in-flight" in out

    def test_windows_out_writes_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "windows.json"
        code = main(
            [
                "run", "--packets", "60",
                "--windows", "200", "--windows-out", str(path),
            ]
        )
        assert code == 0
        series = json.loads(path.read_text())
        assert series and series[0]["index"] == 0
        assert all(w["end"] > w["start"] for w in series)

    def test_windows_out_requires_windows(self, capsys):
        code = main(
            ["run", "--packets", "60", "--windows-out", "w.json"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "--windows" in captured.err

    def test_trace_writes_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "flits.jsonl"
        code = main(
            ["run", "--packets", "40", "--trace", str(path)]
        )
        assert code == 0
        lines = path.read_text().splitlines()
        assert lines
        kinds = {json.loads(l)["kind"] for l in lines}
        assert {"inject", "hop", "eject", "packet"} <= kinds

    def test_trace_perfetto_writes_trace_events(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        code = main(
            ["run", "--packets", "40", "--trace-perfetto", str(path)]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "b", "e"} <= phases

    def test_profile_out_dumps_loadable_stats(self, tmp_path, capsys):
        import pstats

        path = tmp_path / "run.pstats"
        code = main(
            ["run", "--packets", "40", "--profile-out", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "profile: top 20" in out  # --profile implied
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0

    def test_profile_out_on_paper_flow_path(self, tmp_path, capsys):
        import pstats

        path = tmp_path / "paper.pstats"
        code = main(
            [
                "run", "--packets", "40", "--traffic", "burst",
                "--profile-out", str(path),
            ]
        )
        assert code == 0
        assert pstats.Stats(str(path)).total_calls > 0

    def test_telemetry_with_faults_and_saturation(self, tmp_path, capsys):
        """All flags at once on a faulted run: the flags compose."""
        import json

        wpath = tmp_path / "w.json"
        code = main(
            [
                "run", "--packets", "150", "--load", "0.9",
                "--fail-link", "1:4@300",
                "--windows", "250", "--windows-out", str(wpath),
                "--progress",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "faults:" in captured.out  # monitor section
        assert "--- faults ---" in captured.out  # terse summary
        series = json.loads(wpath.read_text())
        assert sum(w["fault_dropped_flits"] for w in series) > 0

    def test_batch_progress_prints_wall_seconds(self, tmp_path, capsys):
        import json

        path = tmp_path / "sweep.json"
        path.write_text(
            json.dumps(
                {
                    "base": {"traffic": "uniform", "packets": 30},
                    "grid": {"load": [0.15, 0.3]},
                }
            )
        )
        code = main(["batch", str(path), "--no-cache", "--progress"])
        captured = capsys.readouterr()
        assert code == 0
        assert "[2/2]" in captured.err
        assert "s)" in captured.err  # wall-clock suffix on each line
