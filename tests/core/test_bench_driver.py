"""Unit tests for the one-command bench driver (benchmarks/run_all.py).

Running the perf benches themselves stays out of tier-1 (they are
``-m perf``); these tests cover the driver's selection, collection and
summary logic, which must not rot between perf PRs.
"""

import json

import pytest

from benchmarks import run_all


class TestDiscovery:
    def test_discovers_every_bench_file(self):
        names = [p.rsplit("/", 1)[-1] for p in run_all.discover_benches()]
        assert "bench_kernel_speed.py" in names
        assert "bench_batch_throughput.py" in names
        assert all(n.startswith("bench_") for n in names)
        assert names == sorted(names)

    def test_only_filters_by_substring(self):
        names = [
            p.rsplit("/", 1)[-1]
            for p in run_all.discover_benches(["kernel", "batch"])
        ]
        assert names == [
            "bench_kernel_speed.py",
            "bench_batch_throughput.py",
        ]

    def test_unknown_filter_is_loud(self):
        with pytest.raises(SystemExit, match="matches no bench file"):
            run_all.discover_benches(["definitely_not_a_bench"])

    def test_duplicate_matches_deduplicated(self):
        paths = run_all.discover_benches(["kernel", "kernel_speed"])
        assert len(paths) == 1


class TestCollection:
    def test_collect_records_reads_bench_json(self, tmp_path, monkeypatch):
        record = {"scenario": {"event_cps": 123}}
        (tmp_path / "BENCH_demo.json").write_text(json.dumps(record))
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        (tmp_path / "other.txt").write_text("ignored")
        monkeypatch.setattr(run_all, "RESULTS_DIR", str(tmp_path))
        records = run_all.collect_records()
        assert set(records) == {"BENCH_demo.json", "BENCH_broken.json"}
        assert records["BENCH_demo.json"] == record
        assert "error" in records["BENCH_broken.json"]

    def test_summary_renders_scenarios_and_errors(self):
        text = run_all.render_summary(
            {
                "BENCH_a.json": {
                    "sat": {"event_cps": 5, "note": "str skipped"},
                    "flat": 7,
                },
                "BENCH_b.json": {"error": "boom"},
            }
        )
        assert "BENCH_a.json" in text
        assert "sat: event_cps=5" in text
        assert "flat: 7" in text
        assert "unreadable (boom)" in text

    def test_summary_with_no_records(self):
        assert "none found" in run_all.render_summary({})


class TestMain:
    def test_list_prints_plan_without_running(self, capsys):
        code = run_all.main(["--list", "--only", "kernel"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.strip() == "bench_kernel_speed.py"

    def test_collect_only_skips_pytest(self, capsys):
        code = run_all.main(["--collect-only"])
        out = capsys.readouterr().out
        assert code == 0
        assert "collected perf records:" in out
