"""Unit tests for the memory-mapped processor orchestration."""

import pytest

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.errors import EmulationError
from repro.core.platform import build_platform
from repro.core.processor import Processor


@pytest.fixture
def platform():
    return build_platform(
        paper_platform_config(max_packets=100, receptor_kind="tracedriven")
    )


@pytest.fixture
def processor(platform):
    return Processor(platform)


class TestRunControl:
    def test_start_stop(self, platform, processor):
        processor.start()
        assert platform.control.running
        assert processor.running
        processor.stop()
        assert not platform.control.running

    def test_progress_poll(self, platform, processor):
        platform.run(1000)
        progress = processor.progress()
        assert progress["cycles"] == 1000
        assert progress["sent"] == platform.packets_sent
        assert progress["received"] == platform.packets_received

    def test_done_bit(self, platform, processor):
        platform.run(12_000)
        assert processor.done

    def test_cycles_reassembled_from_words(self, platform, processor):
        platform.run(123)
        assert processor.cycles() == 123


class TestInitialisation:
    def test_initialise_generator_applies_settings(
        self, platform, processor
    ):
        processor.initialise_generator(0, seed=999, max_packets=7)
        gen = platform.generators[0]
        assert gen.max_packets == 7
        assert gen.model._seed == 999
        assert gen.packets_sent == 0

    def test_initialise_with_params(self, platform, processor):
        processor.initialise_generator(0, params={0: 16, 1: 40})
        model = platform.generators[0].model
        assert model._length_range == (16, 16)
        assert model._interval_range == (40, 40)

    def test_unknown_tg_node(self, processor):
        with pytest.raises(EmulationError, match="no TG"):
            processor.initialise_generator(7)

    def test_reset_statistics(self, platform, processor):
        platform.run(3000)
        processor.reset_statistics()
        assert platform.packets_received == 0


class TestStatisticsReadout:
    def test_generator_counters(self, platform, processor):
        platform.run(2000)
        counters = processor.read_generator_counters(0)
        assert counters["SENT"] == platform.generators[0].packets_sent
        assert counters["FLITS"] == platform.generators[0].flits_sent

    def test_receptor_counters(self, platform, processor):
        platform.run(5000)
        counters = processor.read_receptor_counters(4)
        receptor = next(
            r for r in platform.receptors if r.node == 4
        )
        assert counters["PACKETS"] == receptor.packets_received

    def test_latency_summary(self, platform, processor):
        platform.run(12_000)
        summary = processor.read_latency_summary(4)
        receptor = next(r for r in platform.receptors if r.node == 4)
        assert summary["count"] == receptor.latency.count
        assert summary["mean"] == pytest.approx(
            receptor.latency.mean_latency
        )
        assert summary["min"] <= summary["max"]

    def test_congestion_summary(self, platform, processor):
        platform.run(12_000)
        summary = processor.read_congestion_summary(4)
        receptor = next(r for r in platform.receptors if r.node == 4)
        assert (
            summary["stall_cycles"]
            == receptor.congestion.total_stall_cycles
        )

    def test_unknown_tr_node(self, processor):
        with pytest.raises(EmulationError, match="no TR"):
            processor.read_receptor_counters(0)


class TestHistogramDrain:
    def test_drain_matches_device_state(self):
        platform = build_platform(
            paper_platform_config(
                max_packets=100, receptor_kind="stochastic"
            )
        )
        platform.run(12_000)
        processor = Processor(platform)
        counts = processor.drain_histogram(4, which=0)
        receptor = next(r for r in platform.receptors if r.node == 4)
        assert counts == receptor.length_histogram.counts

    def test_bus_only_orchestration_counts_accesses(self, platform):
        processor = Processor(platform)
        before = platform.fabric.total_accesses
        processor.start()
        processor.progress()
        processor.stop()
        assert platform.fabric.total_accesses > before
