"""Unit tests for the emulation engine."""

import pytest

from repro.core.config import TGSpec, PlatformConfig, paper_platform_config
from repro.core.engine import EmulationEngine, EngineResult
from repro.core.errors import EmulationError
from repro.core.platform import build_platform


def engine_for(max_packets=50, **kwargs):
    cfg = paper_platform_config(max_packets=max_packets, **kwargs)
    return EmulationEngine(build_platform(cfg))


class TestRun:
    def test_runs_to_completion(self):
        result = engine_for(max_packets=50).run()
        assert result.completed
        assert result.packets_sent == 200
        assert result.packets_received == 200
        assert result.cycles > 0

    def test_max_cycles_limit(self):
        result = engine_for(max_packets=10_000).run(max_cycles=500)
        assert result.cycles == 500
        assert not result.completed

    def test_max_packets_limit(self):
        result = engine_for(max_packets=10_000).run(max_packets=100)
        assert result.packets_received >= 100
        # It stopped long before the generators were done.
        assert result.packets_sent < 40_000

    def test_max_packets_not_quantised_by_check_interval(self):
        """Regression: the packet-budget stop used to live behind the
        check_interval gate, overshooting by up to check_interval - 1
        deliveries.  It must now stop within the delivery cycle: the
        only overshoot left is same-cycle completions (at most one per
        receptor, and the paper platform has 4)."""
        result = engine_for(max_packets=10_000).run(
            max_packets=100, check_interval=64
        )
        assert result.packets_received >= 100
        assert result.packets_received - 100 < 4

    def test_no_drain_mode_stops_at_emission_end(self):
        with_drain = engine_for(max_packets=100).run()
        without = engine_for(max_packets=100).run(drain=False)
        assert without.cycles <= with_drain.cycles

    def test_completed_semantics_are_honest(self):
        """Regression: drain=False used to report completed=True with
        flits still in flight, contradicting the EngineResult contract
        (budget exhausted *and* network drained)."""
        engine = engine_for(max_packets=100, load=0.9)
        result = engine.run(drain=False)
        assert result.budget_done
        # Emission just ended at 90% load: flits are still in flight.
        assert engine.platform.network.in_flight_flits > 0
        assert not result.drained
        assert not result.completed

    def test_completed_flags_on_full_run(self):
        result = engine_for(max_packets=50).run()
        assert result.budget_done and result.drained and result.completed

    def test_limit_stop_reports_budget_not_done(self):
        result = engine_for(max_packets=10_000).run(max_cycles=500)
        assert not result.budget_done
        assert not result.completed

    def test_unbounded_run_rejected(self):
        cfg = paper_platform_config(max_packets=None)
        engine = EmulationEngine(build_platform(cfg))
        with pytest.raises(EmulationError, match="unbounded"):
            engine.run()

    def test_trace_generators_count_as_bounded(self):
        cfg = paper_platform_config(
            traffic="trace",
            max_packets=None,
            traffic_params={"n_bursts": 5, "packets_per_burst": 2},
        )
        result = EmulationEngine(build_platform(cfg)).run()
        assert result.completed

    def test_control_module_reflects_run_state(self):
        engine = engine_for(max_packets=20)
        platform = engine.platform
        assert not platform.control.running
        engine.run()
        assert not platform.control.running  # stopped at the end


class TestEngineResult:
    def test_derived_quantities(self):
        result = EngineResult(
            cycles=50_000_000,
            packets_sent=100,
            packets_received=100,
            wall_seconds=2.0,
            f_clk_hz=50e6,
            completed=True,
        )
        assert result.emulated_seconds == pytest.approx(1.0)
        assert result.engine_cycles_per_sec == pytest.approx(25e6)
        assert result.cycles_per_packet == pytest.approx(500_000.0)

    def test_zero_guards(self):
        result = EngineResult(
            cycles=10,
            packets_sent=0,
            packets_received=0,
            wall_seconds=0.0,
            f_clk_hz=50e6,
            completed=False,
        )
        assert result.engine_cycles_per_sec == 0.0
        assert result.cycles_per_packet == 0.0

    def test_emulated_time_matches_modelled_50mhz(self):
        result = engine_for(max_packets=100).run()
        assert result.emulated_seconds == pytest.approx(
            result.cycles / 50e6
        )


class TestRepeatability:
    def test_same_seed_same_run(self):
        a = engine_for(max_packets=200, seed=5).run()
        b = engine_for(max_packets=200, seed=5).run()
        assert a.cycles == b.cycles
        assert a.packets_received == b.packets_received

    def test_different_seed_different_run(self):
        # Completion checks are quantised (check_interval), so compare
        # the traffic itself rather than the rounded cycle count.
        ea = engine_for(max_packets=200, traffic="burst", seed=5)
        eb = engine_for(max_packets=200, traffic="burst", seed=6)
        ea.run()
        eb.run()
        assert ea.platform.mean_latency() != eb.platform.mean_latency()
