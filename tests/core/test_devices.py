"""Unit tests for the TG/TR register-bench devices and control module."""

import pytest

from repro.core.control import (
    CTRL_RUN,
    CTRL_STAT_RESET,
    ControlDevice,
    STATUS_DONE,
    STATUS_RUNNING,
)
from repro.core.devices import (
    TGDevice,
    TG_CTRL_ENABLE,
    TG_CTRL_RESET,
    TRDevice,
    from_q16,
    to_q16,
)
from repro.core.errors import EmulationError
from repro.noc.flit import Packet
from repro.noc.link import Link
from repro.noc.ni import NetworkInterface
from repro.receptors.stochastic import StochasticReceptor
from repro.receptors.tracedriven import TraceDrivenReceptor
from repro.traffic.base import FixedDestination
from repro.traffic.burst import BurstTraffic
from repro.traffic.generator import TrafficGenerator
from repro.traffic.uniform import UniformTraffic


def make_tg(model=None):
    ni = NetworkInterface(0)
    ni.connect(Link(), credits=1000)
    model = model or UniformTraffic(
        length=4, interval=8, destination=FixedDestination(3)
    )
    gen = TrafficGenerator(0, model, ni, max_packets=10)
    return TGDevice("tg0", gen), gen


class TestQ16:
    def test_round_trip(self):
        assert from_q16(to_q16(0.45)) == pytest.approx(0.45, abs=1e-4)

    def test_edges(self):
        assert to_q16(0.0) == 0
        assert to_q16(1.0) == 1 << 16
        with pytest.raises(ValueError):
            to_q16(1.5)


class TestTGDevice:
    def test_model_type_register(self):
        device, _ = make_tg()
        assert device.bank["MODEL_TYPE"].read() == 1  # uniform

    def test_counters_live(self):
        device, gen = make_tg()
        gen.step(0)
        assert device.bank["SENT"].read() == 1
        assert device.bank["FLITS"].read() == 4

    def test_ctrl_enable_disable(self):
        device, gen = make_tg()
        device.bank["CTRL"].write(0)
        assert not gen.enabled
        device.bank["CTRL"].write(TG_CTRL_ENABLE)
        assert gen.enabled

    def test_ctrl_reset_applies_seed(self):
        device, gen = make_tg()
        gen.step(0)
        device.bank["SEED"].write(777)
        device.bank["CTRL"].write(TG_CTRL_ENABLE | TG_CTRL_RESET)
        assert gen.packets_sent == 0
        assert gen.model._seed == 777
        # The reset bit self-clears.
        assert not device.bank["CTRL"].read() & TG_CTRL_RESET

    def test_max_packets_register(self):
        device, gen = make_tg()
        device.bank["MAX_PKTS"].write(3)
        assert gen.max_packets == 3
        device.bank["MAX_PKTS"].write(0)
        assert gen.max_packets is None

    def test_uniform_params_via_registers(self):
        device, gen = make_tg()
        assert device.bank["PARAM0"].read() == 4  # length
        device.bank["PARAM0"].write(6)
        device.bank["PARAM1"].write(12)
        assert gen.model._length_range == (6, 6)
        assert gen.model._interval_range == (12, 12)

    def test_burst_params_q16(self):
        model = BurstTraffic(
            p_on=0.25, p_off=0.5, length=4,
            destination=FixedDestination(3),
        )
        device, gen = make_tg(model)
        assert device.bank["MODEL_TYPE"].read() == 2
        assert from_q16(device.bank["PARAM1"].read()) == pytest.approx(
            0.25, abs=1e-4
        )
        device.bank["PARAM2"].write(to_q16(0.125))
        assert gen.model.p_off == pytest.approx(0.125, abs=1e-4)

    def test_invalid_uniform_param_rejected(self):
        device, _ = make_tg()
        with pytest.raises(EmulationError):
            device.bank["PARAM0"].write(0)

    def test_backpressure_counter_exposed(self):
        device, gen = make_tg()
        assert device.bank["BACKPRES"].read() == 0

    def test_describe(self):
        device, _ = make_tg()
        assert "tg0" in device.describe()


class TestTRDevice:
    def deliver(self, receptor, at=10, stall=0, length=2):
        p = Packet(src=0, dst=1, length=length, injection_cycle=0)
        flits = p.flit_list()
        for f in flits:
            f.stall_cycles = stall
        receptor.on_packet(p, at, flits)

    def test_tracedriven_registers(self):
        r = TraceDrivenReceptor(1)
        device = TRDevice("tr1", r)
        assert device.bank["KIND"].read() == 2
        self.deliver(r, at=25, stall=3)
        assert device.bank["PACKETS"].read() == 1
        assert device.bank["LAT_COUNT"].read() == 1
        assert device.bank["LAT_MIN"].read() == 25
        assert device.bank["LAT_MAX"].read() == 25
        assert device.bank["STALL_LO"].read() == 6
        assert device.bank["CONGESTED"].read() == 1

    def test_latency_sum_split_across_words(self):
        r = TraceDrivenReceptor(1)
        device = TRDevice("tr1", r)
        self.deliver(r, at=100)
        lo = device.bank["LAT_SUM_LO"].read()
        hi = device.bank["LAT_SUM_HI"].read()
        assert (hi << 32) | lo == 100

    def test_stochastic_histogram_window(self):
        r = StochasticReceptor(1, length_bins=8, length_bin_width=1)
        device = TRDevice("tr1", r)
        assert device.bank["KIND"].read() == 1
        self.deliver(r, length=3)
        self.deliver(r, length=3)
        device.bank["HIST_SELECT"].write(0)  # length histogram
        device.bank["HIST_INDEX"].write(2)  # bin for value 3 (origin 1)
        assert device.bank["HIST_DATA"].read() == 2
        assert device.bank["HIST_TOTAL"].read() == 2

    def test_histogram_window_bounds_checked(self):
        r = StochasticReceptor(1, length_bins=4, length_bin_width=1)
        device = TRDevice("tr1", r)
        device.bank["HIST_INDEX"].write(99)
        with pytest.raises(EmulationError):
            device.bank["HIST_DATA"].read()

    def test_bad_hist_select_rejected(self):
        r = StochasticReceptor(1)
        device = TRDevice("tr1", r)
        device.bank["HIST_SELECT"].write(9)
        with pytest.raises(EmulationError):
            device.bank["HIST_DATA"].read()

    def test_ctrl_reset_clears(self):
        r = TraceDrivenReceptor(1)
        device = TRDevice("tr1", r)
        self.deliver(r)
        device.bank["CTRL"].write(3)  # enable + reset
        assert r.packets_received == 0


class TestControlDevice:
    def test_start_stop_via_register(self):
        c = ControlDevice()
        c.bank["CTRL"].write(CTRL_RUN)
        assert c.running
        assert c.bank["STATUS"].read() & STATUS_RUNNING
        c.bank["CTRL"].write(0)
        assert not c.running

    def test_done_status_probe(self):
        c = ControlDevice()
        c.is_done = lambda: True
        assert c.bank["STATUS"].read() & STATUS_DONE

    def test_cycle_counter_split(self):
        c = ControlDevice()
        c.get_cycles = lambda: (3 << 32) | 7
        assert c.bank["CYCLES_LO"].read() == 7
        assert c.bank["CYCLES_HI"].read() == 3

    def test_progress_counters(self):
        c = ControlDevice()
        c.get_sent = lambda: 11
        c.get_received = lambda: 9
        assert c.bank["SENT"].read() == 11
        assert c.bank["RECEIVED"].read() == 9

    def test_stat_reset_callback(self):
        c = ControlDevice()
        fired = []
        c.on_stat_reset = lambda: fired.append(True)
        c.bank["CTRL"].write(CTRL_RUN | CTRL_STAT_RESET)
        assert fired == [True]
        assert c.running  # run bit preserved
        assert not c.bank["CTRL"].read() & CTRL_STAT_RESET

    def test_direct_start_stop(self):
        c = ControlDevice()
        c.start()
        assert c.bank["CTRL"].read() & CTRL_RUN
        c.stop()
        assert not c.running
