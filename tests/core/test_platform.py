"""Unit/integration tests for platform building and execution."""

import pytest

from repro.core.config import (
    PlatformConfig,
    TGSpec,
    TRSpec,
    paper_platform_config,
)
from repro.core.errors import ConfigError
from repro.core.platform import build_platform


class TestBuildValidation:
    def test_requires_generators(self):
        with pytest.raises(ConfigError, match="no traffic generators"):
            build_platform(PlatformConfig(topology="mesh:2:2",
                                          routing="shortest"))

    def test_tg_node_must_exist(self):
        cfg = PlatformConfig(
            topology="mesh:2:2",
            routing="shortest",
            tgs=[TGSpec(node=99, params={"dst": 1, "length": 2,
                                         "interval": 4})],
        )
        with pytest.raises(ConfigError, match="does not exist"):
            build_platform(cfg)

    def test_tr_node_must_exist(self):
        cfg = PlatformConfig(
            topology="mesh:2:2",
            routing="shortest",
            tgs=[TGSpec(node=0, params={"dst": 1, "length": 2,
                                        "interval": 4})],
            trs=[TRSpec(node=50)],
        )
        with pytest.raises(ConfigError, match="does not exist"):
            build_platform(cfg)

    def test_duplicate_tg_node_rejected(self):
        params = {"dst": 1, "length": 2, "interval": 4}
        cfg = PlatformConfig(
            topology="mesh:2:2",
            routing="shortest",
            tgs=[TGSpec(node=0, params=params),
                 TGSpec(node=0, params=params)],
        )
        with pytest.raises(ConfigError, match="two traffic generators"):
            build_platform(cfg)

    def test_duplicate_tr_node_rejected(self):
        cfg = PlatformConfig(
            topology="mesh:2:2",
            routing="shortest",
            tgs=[TGSpec(node=0, params={"dst": 1, "length": 2,
                                        "interval": 4})],
            trs=[TRSpec(node=1), TRSpec(node=1)],
        )
        with pytest.raises(ConfigError, match="two receptors"):
            build_platform(cfg)

    def test_unroutable_destination_rejected(self):
        # Paper routing tables only cover the four paper flows.
        cfg = paper_platform_config()
        cfg.tgs[0].params["dst"] = 5  # not flow 0's receptor
        with pytest.raises(ConfigError, match="no entry"):
            build_platform(cfg)


class TestDeviceMap:
    def test_all_devices_attached(self, small_paper_platform):
        p = small_paper_platform
        devices = p.fabric.devices()
        # 1 control + 4 TG + 4 TR.
        assert len(devices) == 9
        assert devices[0] is p.control

    def test_device_base_addresses_unique(self, small_paper_platform):
        bases = [
            d.base_address for d in small_paper_platform.fabric.devices()
        ]
        assert len(set(bases)) == len(bases)

    def test_control_probes_wired(self, small_paper_platform):
        p = small_paper_platform
        p.run(50)
        assert p.control.get_cycles() == p.cycle
        assert p.control.get_sent() == p.packets_sent


class TestExecution:
    def test_step_advances_cycle(self, small_paper_platform):
        p = small_paper_platform
        p.step()
        assert p.cycle == 1

    def test_traffic_flows(self, small_paper_platform):
        p = small_paper_platform
        p.run(2000)
        assert p.packets_sent > 0
        assert p.packets_received > 0

    def test_runs_to_completion(self, small_paper_platform):
        p = small_paper_platform
        p.run(12_000)
        assert p.generators_done
        assert p.is_done
        assert p.packets_received == 400  # 4 TGs x 100 packets

    def test_latency_positive_under_way(self, small_paper_platform):
        p = small_paper_platform
        p.run(12_000)
        assert p.mean_latency() > 0
        assert p.max_latency() >= p.mean_latency()

    def test_congestion_rate_in_unit_interval(self, small_paper_platform):
        p = small_paper_platform
        p.run(5000)
        assert 0.0 <= p.congestion_rate() < 1.0

    def test_hot_link_loads_keys(self, small_paper_platform):
        p = small_paper_platform
        p.run(3000)
        loads = p.hot_link_loads()
        assert "1->4" in loads
        assert "4->1" in loads

    def test_reset_statistics(self, small_paper_platform):
        p = small_paper_platform
        p.run(3000)
        p.reset_statistics()
        assert p.packets_received == 0
        assert p.congestion_rate() == 0.0


class TestTrafficFamilies:
    @pytest.mark.parametrize(
        "family", ["uniform", "burst", "poisson", "onoff"]
    )
    def test_stochastic_families_run(self, family):
        p = build_platform(
            paper_platform_config(traffic=family, max_packets=50)
        )
        p.run(20_000)
        assert p.packets_received == 200

    def test_trace_family_runs_to_exhaustion(self):
        p = build_platform(
            paper_platform_config(
                traffic="trace",
                max_packets=None,
                traffic_params={"n_bursts": 10, "packets_per_burst": 4},
            )
        )
        p.run(30_000)
        assert p.generators_done
        assert p.packets_received == 4 * 10 * 4
