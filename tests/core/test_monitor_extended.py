"""Tests for the monitor's occupancy and power sections."""

import pytest

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.monitor import Monitor
from repro.core.platform import build_platform


def run_platform(sample_buffers=False):
    config = paper_platform_config(max_packets=300)
    config.sample_buffers = sample_buffers
    platform = build_platform(config)
    result = EmulationEngine(platform).run()
    return platform, result


class TestOccupancySection:
    def test_section_renders_when_sampled(self):
        platform, _ = run_platform(sample_buffers=True)
        text = Monitor(platform).occupancy_section()
        assert "peak depth used" in text
        assert "hottest buffers" in text

    def test_section_rejected_without_sampling(self):
        platform, _ = run_platform(sample_buffers=False)
        with pytest.raises(ValueError):
            Monitor(platform).occupancy_section()

    def test_final_report_includes_occupancy_when_sampled(self):
        platform, result = run_platform(sample_buffers=True)
        text = Monitor(platform).final_report(result)
        assert "buffer occupancy:" in text

    def test_final_report_skips_occupancy_otherwise(self):
        platform, result = run_platform(sample_buffers=False)
        text = Monitor(platform).final_report(result)
        assert "buffer occupancy:" not in text


class TestPowerSection:
    def test_power_section_renders(self):
        platform, _ = run_platform()
        text = Monitor(platform).power_section()
        assert "Power estimate" in text
        assert "switch0" in text
        assert "control" in text
