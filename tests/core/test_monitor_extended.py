"""Tests for the monitor's occupancy and power sections."""

import pytest

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.monitor import Monitor
from repro.core.platform import build_platform


def run_platform(sample_buffers=False):
    config = paper_platform_config(max_packets=300)
    config.sample_buffers = sample_buffers
    platform = build_platform(config)
    result = EmulationEngine(platform).run()
    return platform, result


class TestOccupancySection:
    def test_section_renders_when_sampled(self):
        platform, _ = run_platform(sample_buffers=True)
        text = Monitor(platform).occupancy_section()
        assert "peak depth used" in text
        assert "hottest buffers" in text

    def test_section_rejected_without_sampling(self):
        platform, _ = run_platform(sample_buffers=False)
        with pytest.raises(ValueError):
            Monitor(platform).occupancy_section()

    def test_final_report_includes_occupancy_when_sampled(self):
        platform, result = run_platform(sample_buffers=True)
        text = Monitor(platform).final_report(result)
        assert "buffer occupancy:" in text

    def test_final_report_skips_occupancy_otherwise(self):
        platform, result = run_platform(sample_buffers=False)
        text = Monitor(platform).final_report(result)
        assert "buffer occupancy:" not in text


class TestPowerSection:
    def test_power_section_renders(self):
        platform, _ = run_platform()
        text = Monitor(platform).power_section()
        assert "Power estimate" in text
        assert "switch0" in text
        assert "control" in text


class TestFaultsSection:
    def faulted_run(self, repair=True):
        from repro.faults import FaultSchedule, link_down

        config = paper_platform_config(
            max_packets=300, routing_case="overlap", load=0.9
        )
        platform = build_platform(config)
        schedule = FaultSchedule.of(
            link_down(400, 1, 4), link_down(400, 4, 1), repair=repair
        )
        result = EmulationEngine(platform, faults=schedule).run()
        return platform, result

    def test_section_renders_events_and_drops(self):
        platform, result = self.faulted_run()
        text = Monitor(platform).faults_section(result)
        assert text.startswith("faults:")
        assert "dropped" in text
        assert "@400" in text and "link_down" in text
        assert "rerouted, " in text
        assert "throughput windows:" in text

    def test_degraded_run_flagged(self):
        platform, result = self.faulted_run(repair=False)
        if result.faults.degraded:
            text = Monitor(platform).faults_section(result)
            assert "DEGRADED" in text

    def test_final_report_embeds_faults(self):
        platform, result = self.faulted_run()
        text = Monitor(platform).final_report(result)
        assert "faults:" in text

    def test_final_report_omits_faults_without_schedule(self):
        platform, result = run_platform()
        text = Monitor(platform).final_report(result)
        assert "faults:" not in text


class TestWindowsSection:
    def windowed_run(self):
        from repro.telemetry import WindowedMetrics

        config = paper_platform_config(max_packets=300)
        platform = build_platform(config)
        telemetry = WindowedMetrics(platform, 200)
        result = EmulationEngine(platform, telemetry=telemetry).run()
        return platform, result

    def test_final_report_embeds_window_table(self):
        platform, result = self.windowed_run()
        text = Monitor(platform).final_report(result)
        assert "telemetry windows:" in text
        assert "in-flight" in text  # table header made it through

    def test_final_report_omits_windows_without_telemetry(self):
        platform, result = run_platform()
        text = Monitor(platform).final_report(result)
        assert "telemetry windows:" not in text
