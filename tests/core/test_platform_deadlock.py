"""Platform compilation refuses deadlock-capable routing tables."""

import pytest

from repro.core.config import PlatformConfig, TGSpec, TRSpec
from repro.core.errors import ConfigError
from repro.core.platform import build_platform
from repro.noc.routing import build_tables_from_paths
from repro.noc.topology import ring


def cyclic_ring_config(check_deadlock=True):
    """Four clockwise flows around a 4-ring: a classic CDG cycle."""
    topo = ring(4)
    routing = build_tables_from_paths(
        topo,
        {
            (0, 2): (0, 1, 2),
            (1, 3): (1, 2, 3),
            (2, 0): (2, 3, 0),
            (3, 1): (3, 0, 1),
        },
    )
    params = {"length": 6, "interval": 8}
    return PlatformConfig(
        topology=topo,
        routing=routing,
        buffer_depth=4,
        check_deadlock=check_deadlock,
        tgs=[
            TGSpec(node=src, params={**params, "dst": dst})
            for src, dst in ((0, 2), (1, 3), (2, 0), (3, 1))
        ],
        trs=[TRSpec(node=n) for n in range(4)],
    )


class TestDeadlockGate:
    def test_cyclic_tables_rejected_at_compile_time(self):
        with pytest.raises(ConfigError, match="dependency cycle"):
            build_platform(cyclic_ring_config())

    def test_gate_can_be_disabled(self):
        # Opting out compiles fine (and documents the risk).
        platform = build_platform(
            cyclic_ring_config(check_deadlock=False)
        )
        assert platform.topology.n_switches == 4

    def test_paper_platform_passes_the_gate(self):
        from repro.core.config import paper_platform_config

        for case in ("overlap", "disjoint", "split"):
            config = paper_platform_config(
                max_packets=10, routing_case=case
            )
            assert config.check_deadlock
            build_platform(config)  # must not raise

    def test_cyclic_tables_actually_deadlock_when_forced(self):
        """The gate protects against a real hang: with the gate off
        and long packets, the clockwise ring wedges."""
        from repro.core.engine import EmulationEngine
        from repro.core.errors import EmulationError

        config = cyclic_ring_config(check_deadlock=False)
        for tg in config.tgs:
            tg.max_packets = 50
            tg.params["interval"] = 6  # saturate: packets back to back
        platform = build_platform(config)
        platform.run(5_000)
        # Not every seedless schedule wedges instantly, but the
        # network must show sustained blocking on the ring.
        assert platform.network.total_blocked_flit_cycles > 0
