"""Acceptance parity: telemetry must be kernel-invisible.

The event-driven kernel and the scan-everything oracle must produce
bit-identical window series and trace streams on a saturated, faulted
run — and turning telemetry on must leave idle fast-forward and input
parking engaged (the whole point of boundary differencing over
per-cycle sampling).
"""

import io
import itertools

import pytest

import repro.noc.flit as flit_mod
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.experiments.spec import ScenarioSpec
from repro.faults import FaultInjector, FaultSchedule, link_down
from repro.telemetry import FlitTracer, WindowedMetrics

pytestmark = pytest.mark.chaos

SCHEDULE = FaultSchedule.of(link_down(600, 1, 4), link_down(600, 4, 1))


def fresh_platform(**kwargs):
    flit_mod._packet_ids = itertools.count()
    spec = ScenarioSpec(topology="paper", **kwargs)
    return build_platform(spec.to_platform_config())


def instrumented_run(reference, cycles, window, **kwargs):
    """One kernel, stepped in the engine's order with telemetry on."""
    platform = fresh_platform(**kwargs)
    telemetry = WindowedMetrics(platform, window)
    stream = io.StringIO()
    tracer = FlitTracer(stream=stream)
    platform.network.attach_tracer(tracer)
    injector = FaultInjector(SCHEDULE, platform)
    injector.begin(platform.cycle)
    step = platform.step_reference if reference else platform.step
    net = platform.network
    tel_next = telemetry.begin(net.cycle)
    for _ in range(cycles):
        now = net.cycle
        if now >= tel_next:
            tel_next = telemetry.advance(now)
        injector.tick(now)
        step()
    telemetry.finish(net.cycle)
    platform.network.detach_tracer()
    tracer.close()
    assert net.in_flight_flits == net.scan_in_flight_flits()
    return telemetry.records, tracer.events, stream.getvalue()


class TestKernelParity:
    def test_saturated_faulted_run_bit_identical(self):
        """The ISSUE's acceptance scenario: saturation + fault, both
        kernels, identical windows AND identical trace streams."""
        kwargs = dict(packets=200, load=0.9)
        event = instrumented_run(False, 4000, window=257, **kwargs)
        reference = instrumented_run(True, 4000, window=257, **kwargs)
        assert event[0] == reference[0]  # window records
        assert event[1] == reference[1]  # trace event dicts
        assert event[2] == reference[2]  # raw JSONL text
        # Non-vacuity: the fault really fired and parking really shows.
        assert any(
            e["kind"] == "fault" for e in event[1]
        )
        assert any(w.parked_inputs > 0 for w in event[0])
        assert any(w.fault_dropped_flits > 0 for w in event[0])


class TestOptimisationsStayEngaged:
    BURSTY = dict(
        packets=None,
        traffic="trace",
        traffic_params={
            "n_bursts": 8,
            "packets_per_burst": 4,
            "gap": 5000,
        },
    )

    def run_counting(self, telemetry_factory):
        """Engine run with network.step calls counted."""
        platform = fresh_platform(**self.BURSTY)
        steps = [0]
        inner = platform.network.step

        def counting():
            steps[0] += 1
            inner()

        platform.network.step = counting
        telemetry = telemetry_factory(platform)
        result = EmulationEngine(platform, telemetry=telemetry).run()
        return platform, result, steps[0]

    def test_fast_forward_engaged_with_windows_on(self):
        _, result, steps = self.run_counting(
            lambda p: WindowedMetrics(p, 300)
        )
        # 8 bursts separated by 5000 idle cycles: fast-forward must
        # skip the bulk of the run even though every window boundary
        # is honoured.
        assert result.cycles > 20_000
        assert steps < result.cycles / 2
        assert result.windows[-1].end == result.cycles

    def test_fast_forward_identical_without_telemetry(self):
        """Telemetry must not change what the run computes."""
        _, with_tel, _ = self.run_counting(
            lambda p: WindowedMetrics(p, 300)
        )
        _, without, _ = self.run_counting(lambda p: None)
        assert with_tel.cycles == without.cycles
        assert with_tel.packets_received == without.packets_received

    def test_parking_engaged_with_windows_on(self):
        platform = fresh_platform(packets=400, load=0.9)
        saw_parked = [0]
        inner = platform.network.step

        def watching():
            inner()
            parked = sum(
                sw._parked_count for sw in platform.network.switches
            )
            if parked > saw_parked[0]:
                saw_parked[0] = parked
        platform.network.step = watching
        telemetry = WindowedMetrics(platform, 100)
        result = EmulationEngine(platform, telemetry=telemetry).run()
        # The kernel's own parking counters engaged mid-run, and the
        # window series reported it.
        assert saw_parked[0] > 0
        assert any(w.parked_inputs > 0 for w in result.windows)


class TestSampleBuffersPin:
    """Satellite: per-cycle occupancy sampling is the one feature that
    legitimately disables idle fast-forward — pin that, and pin that
    windowed telemetry does not."""

    BURSTY = dict(
        packets=None,
        traffic="trace",
        traffic_params={
            "n_bursts": 4,
            "packets_per_burst": 3,
            "gap": 1500,
        },
    )

    def counting_run(self, sample_buffers):
        spec = ScenarioSpec(topology="paper", **self.BURSTY)
        config = spec.to_platform_config()
        config.sample_buffers = sample_buffers
        flit_mod._packet_ids = itertools.count()
        platform = build_platform(config)
        steps = [0]
        inner = platform.network.step

        def counting():
            steps[0] += 1
            inner()

        platform.network.step = counting
        result = EmulationEngine(platform).run()
        return platform, result, steps[0]

    def test_sampling_disables_fast_forward(self):
        platform, result, steps = self.counting_run(True)
        assert not platform.idle_fast_forward()  # hard-disabled
        assert steps == result.cycles  # every idle cycle executed

    def test_without_sampling_fast_forward_engages(self):
        _, result, steps = self.counting_run(False)
        assert steps < result.cycles / 2

    def test_occupancy_error_points_at_windowed_series(self):
        from repro.stats.occupancy import OccupancyReport

        platform = fresh_platform(packets=50)
        with pytest.raises(ValueError, match="WindowedMetrics"):
            OccupancyReport(platform.network)
