"""Windowed metrics: boundary differencing, zero-delta windows,
fast-forward landing, determinism and rendering."""

import itertools

import pytest

import repro.noc.flit as flit_mod
from repro.core.engine import EmulationEngine
from repro.core.errors import ConfigError
from repro.core.platform import build_platform
from repro.experiments.spec import ScenarioSpec
from repro.telemetry import (
    WindowedMetrics,
    WindowRecord,
    format_window_table,
)


def fresh_platform(spec):
    flit_mod._packet_ids = itertools.count()
    return build_platform(spec.to_platform_config())


def uniform_spec(**kwargs):
    kwargs.setdefault("packets", 150)
    return ScenarioSpec(topology="paper", **kwargs)


def bursty_spec(n_bursts=6, packets_per_burst=4, gap=4000, **kwargs):
    """Long idle gaps between bursts: the idle fast-forward workload."""
    return ScenarioSpec(
        topology="paper",
        packets=None,
        traffic="trace",
        traffic_params={
            "n_bursts": n_bursts,
            "packets_per_burst": packets_per_burst,
            "gap": gap,
        },
        **kwargs,
    )


def run_with_windows(spec, window_cycles):
    platform = fresh_platform(spec)
    telemetry = WindowedMetrics(platform, window_cycles)
    result = EmulationEngine(platform, telemetry=telemetry).run()
    return platform, result


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, 2.5, "100", None, True])
    def test_rejects_bad_window_cycles(self, bad):
        platform = fresh_platform(uniform_spec())
        with pytest.raises(ConfigError):
            WindowedMetrics(platform, bad)

    def test_begin_is_idempotent(self):
        platform = fresh_platform(uniform_spec())
        telemetry = WindowedMetrics(platform, 100)
        first = telemetry.begin(0)
        assert first == 100
        assert telemetry.begin(37) == first  # second begin: no restart


class TestSeries:
    def test_conservation_and_contiguity(self):
        platform, result = run_with_windows(uniform_spec(), 200)
        windows = result.windows
        assert windows, "bounded run must produce windows"
        # Deltas over all windows sum to the platform totals.
        assert sum(w.injected_flits for w in windows) == sum(
            ni.injected_flits for ni in platform.network.nis
        )
        assert sum(w.ejected_flits for w in windows) == sum(
            rx.received_flits for rx in platform.network.rx
        )
        assert sum(w.ejected_packets for w in windows) == (
            platform.packets_received
        )
        # Windows tile [0, cycles) without gaps or overlaps.
        assert windows[0].start == 0
        assert windows[-1].end == result.cycles
        for i, w in enumerate(windows):
            assert w.index == i
            assert w.end > w.start
            if i:
                assert w.start == windows[i - 1].end
        # Per-switch tuples sum to the network-wide fields.
        for w in windows:
            assert sum(w.switch_forwarded) == w.forwarded_flits
            assert sum(w.switch_blocked) == w.blocked_flit_cycles
            assert sum(w.switch_credit_stalls) == w.credit_stall_cycles

    def test_final_window_is_partial_when_run_ends_midwindow(self):
        platform, result = run_with_windows(uniform_spec(), 10_000)
        # One giant window: the run is shorter than the window length,
        # so finish() must emit the partial [0, cycles) record.
        assert len(result.windows) == 1
        assert result.windows[0].cycles == result.cycles

    def test_window_cycles_one(self):
        platform, result = run_with_windows(
            uniform_spec(packets=20), 1
        )
        windows = result.windows
        assert len(windows) == result.cycles
        assert all(w.cycles == 1 for w in windows)

    def test_idle_gaps_emit_zero_delta_windows(self):
        platform, result = run_with_windows(bursty_spec(), 300)
        windows = result.windows
        zero = [
            w
            for w in windows
            if w.injected_flits == 0
            and w.ejected_flits == 0
            and w.forwarded_flits == 0
        ]
        # The 4000-cycle gaps dwarf the 300-cycle windows: most of the
        # series must be zero-delta records emitted in O(1) from the
        # fast-forward landing, not per-cycle execution.
        assert len(zero) > len(windows) // 2
        for w in zero:
            assert w.in_flight_flits == 0
            assert w.parked_inputs == 0
            assert w.switch_buffered == (0,) * 6
            assert w.link_flits == {}
        # Conservation still holds across the jumps.
        assert sum(w.injected_flits for w in windows) == sum(
            ni.injected_flits for ni in platform.network.nis
        )

    def test_series_is_deterministic(self):
        _, first = run_with_windows(bursty_spec(), 300)
        _, second = run_with_windows(bursty_spec(), 300)
        assert first.windows == second.windows

    def test_parking_reported_at_saturation(self):
        _, result = run_with_windows(
            uniform_spec(load=0.9, packets=400), 100
        )
        assert any(w.parked_inputs > 0 for w in result.windows)
        assert any(w.blocked_flit_cycles > 0 for w in result.windows)


class TestFFLanding:
    def make(self, window_cycles=100):
        platform = fresh_platform(uniform_spec())
        telemetry = WindowedMetrics(platform, window_cycles)
        telemetry.begin(0)
        return telemetry

    def test_target_inside_window_unchanged(self):
        telemetry = self.make()
        assert telemetry.ff_landing(40) == 40
        assert telemetry.ff_landing(100) == 100  # exact boundary

    def test_target_past_boundary_lands_on_boundary(self):
        telemetry = self.make()
        assert telemetry.ff_landing(150) == 100
        assert telemetry.ff_landing(199) == 100
        assert telemetry.ff_landing(200) == 200
        assert telemetry.ff_landing(1234) == 1200

    def test_multi_window_jump_emits_skipped_windows(self):
        telemetry = self.make()
        # Simulate a quiescent jump 0 -> 500: advance at the landing.
        boundary = telemetry.ff_landing(512)
        assert boundary == 500
        assert telemetry.advance(boundary) == 600
        assert [
            (w.start, w.end) for w in telemetry.records
        ] == [(0, 100), (100, 200), (200, 300), (300, 400), (400, 500)]


class TestRecord:
    def test_to_dict_round_trip_shape(self):
        _, result = run_with_windows(uniform_spec(), 200)
        d = result.windows[0].to_dict()
        assert d["index"] == 0
        assert d["end"] - d["start"] == result.windows[0].cycles
        assert isinstance(d["switch_forwarded"], list)
        assert list(d["link_flits"]) == sorted(d["link_flits"])
        # Deterministic record: no wall-clock anywhere.
        assert not any("wall" in k or "seconds" in k for k in d)

    def test_link_utilization(self):
        rec = WindowRecord(
            index=0,
            start=0,
            end=100,
            injected_flits=0,
            injected_packets=0,
            ejected_flits=0,
            ejected_packets=0,
            forwarded_flits=0,
            blocked_flit_cycles=0,
            credit_stall_cycles=0,
            ni_stall_cycles=0,
            backpressure_cycles=0,
            fault_dropped_flits=0,
            switch_forwarded=(),
            switch_blocked=(),
            switch_credit_stalls=(),
            link_flits={"sw0->sw1": 25},
        )
        assert rec.link_utilization("sw0->sw1") == 0.25
        assert rec.link_utilization("sw1->sw0") == 0.0
        assert rec.cycles == 100


class TestFormatting:
    def test_table_lists_all_rows_when_short(self):
        _, result = run_with_windows(uniform_spec(), 500)
        table = format_window_table(list(result.windows))
        lines = table.splitlines()
        assert lines[0].split() == [
            "win", "cycles", "inj", "ej", "blocked", "credit",
            "parked", "in-flight",
        ]
        assert len(lines) == 1 + len(result.windows)
        assert "..." not in table

    def test_table_elides_long_series(self):
        _, result = run_with_windows(bursty_spec(), 100)
        records = list(result.windows)
        assert len(records) > 12
        table = format_window_table(records, limit=12)
        lines = table.splitlines()
        assert len(lines) == 1 + 12 + 1  # header + rows + ellipsis
        assert any(line.strip().startswith("...") for line in lines)
        assert f"{records[-1].start}-{records[-1].end}" in lines[-1]
