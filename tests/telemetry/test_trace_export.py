"""Flit tracer: JSONL canonical stream, attach/detach contract,
fault/abort events and the Perfetto export."""

import io
import itertools
import json

import pytest

import repro.noc.flit as flit_mod
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.experiments.spec import ScenarioSpec
from repro.faults import FaultSchedule, link_down
from repro.telemetry import FlitTracer
from repro.telemetry.trace import _KIND_ORDER


def fresh_platform(**kwargs):
    flit_mod._packet_ids = itertools.count()
    kwargs.setdefault("packets", 60)
    spec = ScenarioSpec(topology="paper", **kwargs)
    return build_platform(spec.to_platform_config())


def traced_run(faults=None, keep=True, **kwargs):
    platform = fresh_platform(**kwargs)
    stream = io.StringIO()
    tracer = FlitTracer(stream=stream, keep=keep)
    platform.network.attach_tracer(tracer)
    result = EmulationEngine(platform, faults=faults).run()
    platform.network.detach_tracer()
    tracer.close()
    return platform, result, tracer, stream.getvalue()


class TestAttachment:
    def test_double_attach_rejected(self):
        platform = fresh_platform()
        platform.network.attach_tracer(FlitTracer())
        with pytest.raises(RuntimeError):
            platform.network.attach_tracer(FlitTracer())

    def test_detach_returns_tracer(self):
        platform = fresh_platform()
        tracer = FlitTracer()
        platform.network.attach_tracer(tracer)
        assert platform.network.detach_tracer() is tracer

    def test_close_is_idempotent(self):
        _, _, tracer, _ = traced_run()
        n = len(tracer.events)
        tracer.close()
        tracer.close()
        assert len(tracer.events) == n


class TestStream:
    def test_jsonl_lines_match_kept_events(self):
        _, _, tracer, text = traced_run()
        lines = text.splitlines()
        assert lines
        parsed = [json.loads(line) for line in lines]
        assert parsed == tracer.events

    def test_lines_are_canonical_json(self):
        _, _, _, text = traced_run()
        for line in text.splitlines():
            event = json.loads(line)
            assert line == json.dumps(
                event, sort_keys=True, separators=(",", ":")
            )

    def test_keep_false_streams_without_retaining(self):
        _, _, tracer, text = traced_run(keep=False)
        assert tracer.events == []
        assert text.splitlines()

    def test_events_sorted_within_each_cycle(self):
        _, _, tracer, _ = traced_run()
        for _, group in itertools.groupby(
            tracer.events, key=lambda e: e["cycle"]
        ):
            keys = [
                (_KIND_ORDER[e["kind"]], e["where"], e["pid"], e["seq"])
                for e in group
            ]
            assert keys == sorted(keys)

    def test_every_flit_fully_accounted(self):
        platform, _, tracer, _ = traced_run()
        kinds = {}
        for e in tracer.events:
            kinds[e["kind"]] = kinds.get(e["kind"], 0) + 1
        injected = sum(
            ni.injected_flits for ni in platform.network.nis
        )
        ejected = sum(rx.received_flits for rx in platform.network.rx)
        assert kinds["inject"] == injected
        assert kinds["eject"] == ejected
        assert kinds["packet"] == platform.packets_received
        assert kinds["hop"] > 0
        # Every hop and eject reports its link's flight time.
        assert all(
            e["dur"] >= 1
            for e in tracer.events
            if e["kind"] in ("hop", "eject")
        )


class TestFaultEvents:
    SCHEDULE = FaultSchedule.of(
        link_down(300, 1, 4), link_down(300, 4, 1)
    )

    def test_fault_and_abort_events_recorded(self):
        platform, result, tracer, _ = traced_run(
            faults=self.SCHEDULE, packets=200, load=0.9
        )
        faults = [e for e in tracer.events if e["kind"] == "fault"]
        assert [e["fault"] for e in faults] == [
            "link_down", "link_down"
        ]
        assert all(e["cycle"] == 300 for e in faults)
        aborts = [e for e in tracer.events if e["kind"] == "abort"]
        assert len(aborts) == result.faults.dropped_packets
        assert [e["pid"] for e in aborts] == sorted(
            e["pid"] for e in aborts
        )


class TestPerfetto:
    def test_structure(self):
        _, _, tracer, _ = traced_run()
        doc = tracer.to_perfetto()
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        meta = [e for e in events if e["ph"] == "M"]
        tracks = {e["where"] for e in tracer.events if e["where"]}
        # One process_name plus one thread_name per track.
        assert len(meta) == 1 + len(tracks)
        names = {
            e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert names == tracks
        # Async packet spans balance: every open has a close.
        opens = [e for e in events if e["ph"] == "b"]
        closes = [e for e in events if e["ph"] == "e"]
        assert {e["id"] for e in opens} == {e["id"] for e in closes}
        # Complete slices span the link flight.
        slices = [e for e in events if e["ph"] == "X"]
        assert slices
        for e in slices:
            assert e["dur"] >= 1 and e["ts"] >= 0

    def test_aborted_packets_close_with_outcome(self):
        _, result, tracer, _ = traced_run(
            faults=TestFaultEvents.SCHEDULE, packets=200, load=0.9
        )
        assert result.faults.dropped_packets > 0
        closes = {
            e["id"]: e["args"]["outcome"]
            for e in tracer.to_perfetto()["traceEvents"]
            if e["ph"] == "e"
        }
        assert "abort" in closes.values()
        aborted = {
            e["pid"] for e in tracer.events if e["kind"] == "abort"
        }
        for pid in aborted:
            if pid in closes:
                assert closes[pid] == "abort"

    def test_write_perfetto(self, tmp_path):
        _, _, tracer, _ = traced_run()
        path = tmp_path / "trace.json"
        tracer.write_perfetto(str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
