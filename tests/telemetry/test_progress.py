"""Progress meter: sampling, adaptive interval, budget fraction."""

import itertools

import pytest

import repro.noc.flit as flit_mod
import repro.telemetry.progress as progress_mod
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.experiments.spec import ScenarioSpec
from repro.telemetry import (
    ProgressMeter,
    ProgressSample,
    format_progress,
)


def fresh_platform(**kwargs):
    flit_mod._packet_ids = itertools.count()
    kwargs.setdefault("packets", 80)
    spec = ScenarioSpec(topology="paper", **kwargs)
    return build_platform(spec.to_platform_config())


class FakeClock:
    """Deterministic stand-in for time.perf_counter."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestMeter:
    def test_rejects_nonpositive_interval(self):
        platform = fresh_platform()
        with pytest.raises(ValueError):
            ProgressMeter(platform, lambda s: None, interval_seconds=0)

    def test_engine_run_emits_samples_with_final(self):
        platform = fresh_platform()
        samples = []
        result = EmulationEngine(platform).run(progress=samples.append)
        assert samples, "run must emit at least the final sample"
        assert samples[-1].final
        assert all(not s.final for s in samples[:-1])
        assert samples[-1].cycle == result.cycles
        assert samples[-1].packets_received == platform.packets_received
        # Bounded generators: the budget fraction ends at 100%.
        assert samples[-1].budget_fraction == 1.0
        cycles = [s.cycle for s in samples]
        assert cycles == sorted(cycles)

    def test_interval_adapts_to_measured_speed(self, monkeypatch):
        clock = FakeClock()
        monkeypatch.setattr(progress_mod.time, "perf_counter", clock)
        platform = fresh_platform()
        meter = ProgressMeter(
            platform, lambda s: None, interval_seconds=1.0
        )
        check = meter.start(0)
        assert check == ProgressMeter.INITIAL_CYCLES
        # 256 cycles took 0.1s -> ~2560 cycles per second target.
        clock.now = 0.1
        check = meter.tick(256)
        assert check == 256 + 2560
        # A crawling stretch shrinks the interval down to the floor.
        clock.now = 10.1
        check = meter.tick(320)
        assert check == 320 + ProgressMeter.MIN_CYCLES

    def test_final_sample_does_not_retune(self, monkeypatch):
        clock = FakeClock()
        monkeypatch.setattr(progress_mod.time, "perf_counter", clock)
        platform = fresh_platform()
        samples = []
        meter = ProgressMeter(platform, samples.append)
        meter.start(0)
        before = meter._interval_cycles
        clock.now = 5.0
        meter.finish(100, faulted=True)
        assert meter._interval_cycles == before
        assert samples[-1].final and samples[-1].faulted
        assert samples[-1].wall_seconds == 5.0

    def test_budget_fraction_from_cycle_limit(self, monkeypatch):
        clock = FakeClock()
        monkeypatch.setattr(progress_mod.time, "perf_counter", clock)
        platform = fresh_platform()
        samples = []
        meter = ProgressMeter(
            platform, samples.append, limit_cycle=1000
        )
        meter.start(0)
        clock.now = 0.1
        meter.tick(250)
        assert samples[-1].budget_fraction == 0.25

    def test_budget_none_when_a_generator_is_unbounded(self):
        platform = fresh_platform(
            packets=None,
            traffic="trace",
            traffic_params={
                "n_bursts": 2,
                "packets_per_burst": 2,
                "gap": 50,
            },
        )
        bounded = all(
            g.max_packets is not None for g in platform.generators
        )
        meter = ProgressMeter(platform, lambda s: None)
        if bounded:
            assert meter._packet_budget is not None
        else:
            assert meter._packet_budget is None

    def test_engine_progress_interval_validated(self):
        platform = fresh_platform()
        with pytest.raises(ValueError):
            EmulationEngine(platform).run(
                progress=lambda s: None, progress_interval=-1
            )


class TestFormatting:
    def sample(self, **kwargs):
        base = dict(
            cycle=12345,
            wall_seconds=1.5,
            cycles_per_sec=8230.0,
            packets_sent=40,
            packets_received=31,
            in_flight_flits=9,
            budget_fraction=0.775,
        )
        base.update(kwargs)
        return ProgressSample(**base)

    def test_plain_line(self):
        line = format_progress(self.sample())
        assert "cycle 12,345" in line
        assert "8,230 c/s" in line
        assert "31/40 pkts" in line
        assert "9 in flight" in line
        assert "78%" in line
        assert "FAULTED" not in line and "done" not in line

    def test_flags_and_unbounded(self):
        line = format_progress(
            self.sample(budget_fraction=None, faulted=True, final=True)
        )
        assert "%" not in line
        assert line.endswith("FAULTED  done")
