"""Reporter output: JSON schema stability and the text summary."""

import json
import textwrap

from repro.analysis import run_lint
from repro.analysis.reporters import (
    LINT_REPORT_SCHEMA,
    render_json,
    render_text,
)
from repro.util import canonical_json

VIOLATING = """
import time

def measure():
    return time.time()  # repro: allow[wall-clock] harness timing

def stamp():
    return time.time()
"""


def lint():
    return run_lint(
        [],
        rule_ids=["wall-clock"],
        overlay={"pkg/mod.py": textwrap.dedent(VIOLATING)},
    )


def test_json_schema_is_exactly_the_documented_keys():
    report = json.loads(render_json(lint()))
    assert set(report) == {
        "schema",
        "ok",
        "files",
        "rules",
        "findings",
        "suppressed",
    }
    assert report["schema"] == LINT_REPORT_SCHEMA
    assert report["ok"] is False
    assert report["files"] == 1
    assert report["rules"] == ["wall-clock"]
    assert report["suppressed"] == 1
    (finding,) = report["findings"]
    assert set(finding) == {"rule", "path", "line", "message"}
    assert finding["rule"] == "wall-clock"
    assert finding["path"] == "pkg/mod.py"
    assert isinstance(finding["line"], int)


def test_json_is_canonical_and_deterministic():
    text = render_json(lint())
    assert text == render_json(lint())
    assert text == canonical_json(json.loads(text))


def test_text_report_lines_and_summary():
    out = render_text(lint())
    lines = out.splitlines()
    assert lines[0].startswith("pkg/mod.py:")
    assert "[wall-clock]" in lines[0]
    assert lines[-1] == "1 finding (1 suppressed) in 1 files across 1 rules"


def test_text_verbose_lists_suppressions():
    out = render_text(lint(), verbose=True)
    assert "suppressed (pragma: harness timing):" in out


def test_clean_run_reports_ok():
    result = run_lint(
        [],
        rule_ids=["wall-clock"],
        overlay={"pkg/mod.py": "def f(clock):\n    return clock()\n"},
    )
    assert result.ok
    report = json.loads(render_json(result))
    assert report["ok"] is True
    assert report["findings"] == []
