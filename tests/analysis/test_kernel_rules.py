"""Fixture pairs for the kernel-convention rules.

settle-on-read, parking-wake and state-coverage are the rules that
encode *this* codebase's invariants; their fixtures mirror the real
code shapes in ``noc/switch.py``, ``noc/ni.py`` and
``traffic/generator.py``.
"""

import textwrap

from repro.analysis import run_lint


def lint(overlay, rules):
    return run_lint(
        [],
        rule_ids=rules,
        overlay={
            path: textwrap.dedent(src) for path, src in overlay.items()
        },
    )


# ----------------------------------------------------------------------
# settle-on-read
# ----------------------------------------------------------------------
def test_settle_flags_foreign_raw_read():
    result = lint(
        {
            "repro/stats/peek.py": """
            def stalls(ni):
                return ni._stall_cycles
            """
        },
        rules=["settle-on-read"],
    )
    assert len(result.findings) == 1
    assert "stall_cycles" in result.findings[0].message


def test_settle_owner_and_checkpoint_are_sanctioned():
    source = """
    def stalls(ni):
        return ni._stall_cycles
    """
    for path in (
        "repro/noc/ni.py",
        "repro/noc/network.py",
        "repro/checkpoint/capture.py",
        "repro/checkpoint/restore.py",
    ):
        result = lint({path: source}, rules=["settle-on-read"])
        assert result.findings == [], path


def test_settle_clean_property_read():
    result = lint(
        {
            "repro/stats/peek.py": """
            def stalls(ni):
                return ni.stall_cycles
            """
        },
        rules=["settle-on-read"],
    )
    assert result.findings == []


# ----------------------------------------------------------------------
# parking-wake
# ----------------------------------------------------------------------
def test_park_input_without_waiter_registration_fires():
    result = lint(
        {
            "repro/noc/switch.py": """
            class Switch:
                def traverse(self, i, now, flit, out):
                    self._park_input(i, now, flit, True)
            """
        },
        rules=["parking-wake"],
    )
    assert len(result.findings) == 1
    assert "credit_waiters" in result.findings[0].message


def test_park_input_with_waiter_registration_is_clean():
    result = lint(
        {
            "repro/noc/switch.py": """
            class Switch:
                def traverse(self, i, now, flit, out):
                    self._park_input(i, now, flit, True)
                    out.credit_waiters.append(i)

                def traverse_lock(self, i, now, flit, out):
                    self._park_input(i, now, flit, False)
                    out.lock_waiters.append(i)
            """
        },
        rules=["parking-wake"],
    )
    assert result.findings == []


def test_park_input_none_head_needs_no_waiter():
    result = lint(
        {
            "repro/noc/switch.py": """
            class Switch:
                def accumulate(self, i, now):
                    self._park_input(i, now, None, False)
            """
        },
        rules=["parking-wake"],
    )
    assert result.findings == []


def test_ni_park_outside_credit_guard_fires():
    result = lint(
        {
            "repro/noc/network.py": """
            def inject(ni, now):
                ni._park(now)
            """
        },
        rules=["parking-wake"],
    )
    assert len(result.findings) == 1
    assert "_credits" in result.findings[0].message


def test_ni_park_under_credit_guard_is_clean():
    result = lint(
        {
            "repro/noc/network.py": """
            def inject(ni, now):
                if ni._credits <= 0:
                    ni._stall_cycles += 1
                    ni._park(now)
            """
        },
        rules=["parking-wake"],
    )
    assert result.findings == []


def test_bp_since_without_watch_drain_fires():
    result = lint(
        {
            "repro/traffic/generator.py": """
            class TrafficGenerator:
                def poll(self, now):
                    if self.blocked(now):
                        self._bp_since = now
            """
        },
        rules=["parking-wake"],
    )
    assert len(result.findings) == 1
    assert "watch_drain" in result.findings[0].message


def test_bp_since_with_watch_drain_is_clean():
    result = lint(
        {
            "repro/traffic/generator.py": """
            class TrafficGenerator:
                def poll(self, now):
                    if self.blocked(now):
                        self._bp_since = now
                        self.ni.watch_drain(self.queue_limit, self._cb)

                def reset(self):
                    self._bp_since = None
            """
        },
        rules=["parking-wake"],
    )
    assert result.findings == []


# ----------------------------------------------------------------------
# state-coverage (fixture-scale; the real-tree gate has its own file)
# ----------------------------------------------------------------------
CAPTURE_OK = """
def snapshot(sw):
    return {"foo": sw._foo, "bar": sw._bar}
"""
RESTORE_OK = """
def restore(sw, state):
    sw._foo = state["foo"]
    sw._bar = state["bar"]
"""
SWITCH_FIXTURE = """
class Switch:
    __slots__ = (
        "_foo",
        "_bar",
    )
"""


def test_state_coverage_clean_when_both_sides_cover():
    result = lint(
        {
            "repro/checkpoint/capture.py": CAPTURE_OK,
            "repro/checkpoint/restore.py": RESTORE_OK,
            "repro/noc/switch.py": SWITCH_FIXTURE,
        },
        rules=["state-coverage"],
    )
    assert result.findings == []


def test_state_coverage_fires_when_capture_misses_a_field():
    result = lint(
        {
            "repro/checkpoint/capture.py": """
            def snapshot(sw):
                return {"foo": sw._foo}
            """,
            "repro/checkpoint/restore.py": RESTORE_OK,
            "repro/noc/switch.py": SWITCH_FIXTURE,
        },
        rules=["state-coverage"],
    )
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert "Switch._bar" in finding.message
    assert "capture" in finding.message
    assert "restore" not in finding.message


def test_state_coverage_fires_when_restore_misses_a_field():
    result = lint(
        {
            "repro/checkpoint/capture.py": CAPTURE_OK,
            "repro/checkpoint/restore.py": """
            def restore(sw, state):
                sw._foo = state["foo"]
            """,
            "repro/noc/switch.py": SWITCH_FIXTURE,
        },
        rules=["state-coverage"],
    )
    assert len(result.findings) == 1
    assert "Switch._bar" in result.findings[0].message


def test_state_coverage_restore_kwargs_count_as_coverage():
    result = lint(
        {
            "repro/checkpoint/capture.py": """
            def snapshot(rec):
                return rec.to_dict()
            """,
            "repro/checkpoint/restore.py": """
            def restore(state):
                from repro.telemetry.windows import WindowRecord
                return WindowRecord(index=state["index"])
            """,
            "repro/telemetry/windows.py": """
            from dataclasses import dataclass

            @dataclass
            class WindowRecord:
                index: int

                def to_dict(self):
                    return {"index": self.index}
            """,
        },
        rules=["state-coverage"],
    )
    assert result.findings == []


def test_state_coverage_pragma_documents_rebuilt_fields():
    result = lint(
        {
            "repro/checkpoint/capture.py": CAPTURE_OK,
            "repro/checkpoint/restore.py": RESTORE_OK,
            "repro/noc/switch.py": """
            class Switch:
                __slots__ = (
                    "_foo",
                    "_bar",
                    "_wiring",  # repro: allow[state-coverage] rebuilt by the network
                )
            """,
        },
        rules=["state-coverage"],
    )
    assert result.findings == []
    assert len(result.suppressed) == 1


def test_state_coverage_skipped_without_checkpoint_modules():
    # A partial lint (no capture/restore in scope) cannot judge
    # coverage and must stay silent rather than flag everything.
    result = lint(
        {"repro/noc/switch.py": SWITCH_FIXTURE},
        rules=["state-coverage"],
    )
    assert result.findings == []
