"""The ``repro lint`` subcommand: flags, exit codes, JSON output."""

import json
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES
from repro.analysis.reporters import LINT_REPORT_SCHEMA
from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
SRC = str(REPO / "src" / "repro")


def test_lint_src_repro_exits_zero(capsys):
    assert main(["lint", SRC]) == 0
    out = capsys.readouterr().out
    assert out.strip().endswith("rules")
    assert out.startswith("0 findings")


def test_lint_default_paths_cover_the_installed_package(capsys):
    assert main(["lint"]) == 0
    capsys.readouterr()


def test_lint_json_report(capsys):
    assert main(["lint", SRC, "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == LINT_REPORT_SCHEMA
    assert report["ok"] is True
    assert report["findings"] == []
    assert report["rules"] == sorted(rule.id for rule in ALL_RULES)


def test_lint_single_rule_selection(capsys):
    assert main(["lint", SRC, "--rule", "wall-clock", "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["rules"] == ["wall-clock"]


def test_lint_finds_violations_and_exits_one(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import time\n\ndef f():\n    return time.time()\n",
        encoding="utf-8",
    )
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "[wall-clock]" in out


def test_lint_unknown_rule_exits_two(capsys):
    assert main(["lint", SRC, "--rule", "no-such-rule"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err
    assert "wall-clock" in err  # the known-rule list is printed


def test_lint_missing_baseline_exits_two(tmp_path, capsys):
    missing = str(tmp_path / "nope.json")
    assert main(["lint", SRC, "--baseline", missing]) == 2
    assert "error:" in capsys.readouterr().err


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert f"{rule.id}:" in out


def test_lint_verbose_shows_suppressions(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text(
        "import time\n\n"
        "def f():\n"
        "    return time.time()  # repro: allow[wall-clock] test harness\n",
        encoding="utf-8",
    )
    assert main(["lint", str(mod), "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "suppressed (pragma: test harness)" in out


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_lint_output_is_deterministic(fmt, capsys):
    assert main(["lint", SRC, "--format", fmt]) == 0
    first = capsys.readouterr().out
    assert main(["lint", SRC, "--format", fmt]) == 0
    assert capsys.readouterr().out == first
