"""Tier-1 gate: ``repro lint`` over the whole tree must be clean.

This is the test that makes the analyzer *enforcing* rather than
advisory — any unsuppressed finding in ``src/repro`` fails the suite.
A failure message prints the findings verbatim; fix the code, or (for
a deliberate exception) add a ``# repro: allow[rule-id] reason``
pragma at the site.
"""

from pathlib import Path

from repro.analysis import ALL_RULES, run_lint
from repro.analysis.reporters import render_text

REPO = Path(__file__).resolve().parents[2]
SRC = str(REPO / "src" / "repro")


def test_src_repro_has_no_unsuppressed_findings():
    result = run_lint([SRC])
    assert result.ok, "\n" + render_text(result)


def test_every_rule_actually_ran():
    result = run_lint([SRC])
    assert result.rules == sorted(rule.id for rule in ALL_RULES)
    assert result.files > 50  # the whole package, not a subset


def test_analyzer_lints_itself_clean():
    # Self-application: the analysis package obeys the conventions it
    # enforces (no wall-clock, no raw json.dumps, ...).
    result = run_lint([str(Path(SRC) / "analysis")])
    assert result.ok, "\n" + render_text(result)
    assert result.suppressed == [], (
        "the analyzer itself should need no suppressions"
    )
