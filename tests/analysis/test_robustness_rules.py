"""Violating/clean fixture pairs for the robustness rule family.

Same overlay technique as the determinism fixtures: every module is
virtual, each pair pins detection (the violating twin fires) and
precision (the clean twin stays silent).
"""

import textwrap

from repro.analysis import run_lint


def lint_src(source, path="pkg/mod.py", rules=None):
    return run_lint(
        [], rule_ids=rules, overlay={path: textwrap.dedent(source)}
    )


def rules_fired(result):
    return sorted({f.rule for f in result.findings})


# ----------------------------------------------------------------------
# swallowed-exception
# ----------------------------------------------------------------------
def test_bare_except_pass_fires():
    result = lint_src(
        """
        def fragile():
            try:
                risky()
            except:
                pass
        """,
        rules=["swallowed-exception"],
    )
    assert rules_fired(result) == ["swallowed-exception"]


def test_base_exception_swallow_fires():
    result = lint_src(
        """
        def fragile():
            try:
                risky()
            except BaseException:
                log("oops")
        """,
        rules=["swallowed-exception"],
    )
    assert rules_fired(result) == ["swallowed-exception"]


def test_base_exception_in_tuple_fires():
    result = lint_src(
        """
        def fragile():
            try:
                risky()
            except (ValueError, BaseException):
                cleanup()
        """,
        rules=["swallowed-exception"],
    )
    assert rules_fired(result) == ["swallowed-exception"]


def test_reraise_is_clean():
    # The atomic-write cleanup pattern: catch everything, undo, and
    # re-raise — the failure still surfaces.
    result = lint_src(
        """
        def atomic_write(tmp):
            try:
                commit(tmp)
            except BaseException:
                unlink(tmp)
                raise
        """,
        rules=["swallowed-exception"],
    )
    assert result.findings == []


def test_structured_error_construction_is_clean():
    result = lint_src(
        """
        def supervise():
            try:
                run()
            except BaseException as exc:
                return FailureRecord(error=str(exc))
        """,
        rules=["swallowed-exception"],
    )
    assert result.findings == []


def test_narrow_exception_is_clean():
    # Catching a specific type is a decision, not a swallow; the
    # rule only polices catch-everything handlers.
    result = lint_src(
        """
        def tolerant():
            try:
                risky()
            except ValueError:
                pass
        """,
        rules=["swallowed-exception"],
    )
    assert result.findings == []


def test_nested_raise_counts_as_handled():
    result = lint_src(
        """
        def fragile():
            try:
                risky()
            except:
                if fatal():
                    raise
        """,
        rules=["swallowed-exception"],
    )
    assert result.findings == []


def test_pragma_suppresses():
    result = lint_src(
        """
        def best_effort():
            try:
                optional_cleanup()
            except:  # repro: allow[swallowed-exception] best-effort cleanup; nothing to report
                pass
        """,
        rules=["swallowed-exception"],
    )
    assert result.findings == []
    assert len(result.suppressed) == 1


def test_rule_is_registered():
    from repro.analysis.rules import RULES_BY_ID

    assert "swallowed-exception" in RULES_BY_ID
