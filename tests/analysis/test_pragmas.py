"""Pragma parsing, placement and hygiene round-trips."""

import textwrap

from repro.analysis import run_lint
from repro.analysis.pragmas import parse_pragmas


def lint_src(source, path="pkg/mod.py", rules=None):
    return run_lint(
        [], rule_ids=rules, overlay={path: textwrap.dedent(source)}
    )


def parse(source):
    text = textwrap.dedent(source)
    return parse_pragmas(text, text.splitlines())


def test_trailing_pragma_suppresses_its_line():
    result = lint_src(
        """
        import time

        def measure():
            return time.time()  # repro: allow[wall-clock] benchmark harness
        """,
        rules=["wall-clock"],
    )
    assert result.findings == []
    assert len(result.suppressed) == 1
    finding, how = result.suppressed[0]
    assert finding.rule == "wall-clock"
    assert how == "pragma: benchmark harness"


def test_comment_only_pragma_covers_next_code_line():
    result = lint_src(
        """
        import time

        def measure():
            # repro: allow[wall-clock] benchmark harness

            # an unrelated comment between pragma and code is fine
            return time.time()
        """,
        rules=["wall-clock"],
    )
    assert result.findings == []
    assert len(result.suppressed) == 1


def test_pragma_for_wrong_rule_does_not_suppress():
    result = lint_src(
        """
        import time

        def measure():
            return time.time()  # repro: allow[canonical-json] wrong rule
        """,
        rules=["wall-clock"],
    )
    assert [f.rule for f in result.findings] == ["wall-clock"]
    assert result.suppressed == []


def test_missing_reason_is_a_hygiene_finding():
    result = lint_src(
        """
        import time

        def measure():
            return time.time()  # repro: allow[wall-clock]
        """,
        rules=["wall-clock"],
    )
    assert [f.rule for f in result.findings] == ["pragma-hygiene"]
    assert "no reason" in result.findings[0].message


def test_near_miss_spelling_is_a_hygiene_finding():
    result = lint_src(
        """
        import time

        def measure():
            return time.time()  # repro allow[wall-clock] missing colon
        """,
        rules=["wall-clock"],
    )
    rules = sorted(f.rule for f in result.findings)
    # The typo'd pragma suppresses nothing AND is reported itself.
    assert rules == ["pragma-hygiene", "wall-clock"]


def test_unknown_rule_id_is_a_hygiene_finding():
    result = lint_src(
        """
        x = 1  # repro: allow[no-such-rule] reason text
        """
    )
    assert [f.rule for f in result.findings] == ["pragma-hygiene"]
    assert "does not exist" in result.findings[0].message


def test_pragma_text_inside_string_literal_is_inert():
    pragmas = parse(
        '''
        DOC = """
        example: # repro: allow[wall-clock] not a real pragma
        """
        LIT = "# repro: allow[wall-clock] also not real"
        '''
    )
    assert pragmas.allow == {}
    assert pragmas.problems == []


def test_unparseable_file_is_reported_not_skipped():
    result = lint_src(
        """
        def broken(:
        """
    )
    assert [f.rule for f in result.findings] == ["parse-error"]
