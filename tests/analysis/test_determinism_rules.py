"""Violating/clean fixture pairs for the determinism rule family.

Every fixture is a virtual module injected through the project
overlay — nothing touches the real tree, and each pair pins both the
detection (the violating twin fires) and the precision (the clean
twin stays silent).
"""

import textwrap

from repro.analysis import run_lint


def lint_src(source, path="pkg/mod.py", rules=None):
    return run_lint(
        [], rule_ids=rules, overlay={path: textwrap.dedent(source)}
    )


def rules_fired(result):
    return sorted({f.rule for f in result.findings})


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------
def test_wall_clock_flags_time_calls():
    result = lint_src(
        """
        import time

        def measure():
            return time.perf_counter()
        """,
        rules=["wall-clock"],
    )
    assert rules_fired(result) == ["wall-clock"]
    assert "time.perf_counter" in result.findings[0].message


def test_wall_clock_flags_from_import_alias():
    result = lint_src(
        """
        from time import perf_counter as pc

        def measure():
            return pc()
        """,
        rules=["wall-clock"],
    )
    assert len(result.findings) == 1


def test_wall_clock_flags_datetime_now():
    result = lint_src(
        """
        from datetime import datetime

        def stamp():
            return datetime.now()
        """,
        rules=["wall-clock"],
    )
    assert len(result.findings) == 1


def test_wall_clock_clean_twin():
    result = lint_src(
        """
        def measure(clock):
            return clock()  # cycle counter, not the host clock

        class Thing:
            def time(self):
                return 0

        def use(t):
            return t.time()
        """,
        rules=["wall-clock"],
    )
    assert result.findings == []


# ----------------------------------------------------------------------
# unseeded-rng
# ----------------------------------------------------------------------
def test_rng_flags_random_module():
    result = lint_src(
        """
        import os
        import random

        def choose(xs):
            return random.choice(xs) if os.urandom(1) else xs[0]
        """,
        rules=["unseeded-rng"],
    )
    assert len(result.findings) == 2


def test_rng_home_module_is_exempt():
    result = lint_src(
        """
        import random

        def reference_stream(seed):
            random.seed(seed)
            return random.random()
        """,
        path="repro/traffic/rng.py",
        rules=["unseeded-rng"],
    )
    assert result.findings == []


def test_rng_clean_twin():
    result = lint_src(
        """
        from repro.traffic.rng import LfsrRandom

        def choose(xs, seed):
            return xs[LfsrRandom(seed).randrange(len(xs))]
        """,
        rules=["unseeded-rng"],
    )
    assert result.findings == []


# ----------------------------------------------------------------------
# unsorted-set-iter
# ----------------------------------------------------------------------
def test_set_iter_flags_for_loop_and_list():
    result = lint_src(
        """
        def emit(xs, out):
            for x in set(xs):
                out.append(x)
            return list({1, 2, 3})
        """,
        rules=["unsorted-set-iter"],
    )
    assert len(result.findings) == 2


def test_set_iter_flags_comprehension_and_join():
    result = lint_src(
        """
        def emit(xs):
            names = [n for n in {x.name for x in xs}]
            return ",".join(set(names))
        """,
        rules=["unsorted-set-iter"],
    )
    assert len(result.findings) == 2


def test_set_iter_clean_when_sorted():
    result = lint_src(
        """
        def emit(xs, out):
            for x in sorted(set(xs)):
                out.append(x)
            return list(sorted({1, 2, 3}))
        """,
        rules=["unsorted-set-iter"],
    )
    assert result.findings == []


# ----------------------------------------------------------------------
# id-ordering
# ----------------------------------------------------------------------
def test_id_ordering_flags_key_id():
    result = lint_src(
        """
        def order(xs):
            return sorted(xs, key=id)
        """,
        rules=["id-ordering"],
    )
    assert len(result.findings) == 1


def test_id_ordering_flags_lambda_id():
    result = lint_src(
        """
        def order(xs):
            xs.sort(key=lambda x: id(x))
        """,
        rules=["id-ordering"],
    )
    assert len(result.findings) == 1


def test_id_ordering_clean_twin():
    result = lint_src(
        """
        def order(xs, registry):
            # identity *lookup* by id() is fine; only ordering is not
            registry[id(xs)] = xs
            return sorted(xs, key=lambda x: x.pid)
        """,
        rules=["id-ordering"],
    )
    assert result.findings == []


# ----------------------------------------------------------------------
# canonical-json
# ----------------------------------------------------------------------
def test_canonical_json_flags_dumps_and_dump():
    result = lint_src(
        """
        import json

        def save(record, fh):
            json.dump(record, fh)
            return json.dumps(record, sort_keys=True)
        """,
        rules=["canonical-json"],
    )
    assert len(result.findings) == 2


def test_canonical_json_encoder_home_is_exempt():
    result = lint_src(
        """
        import json

        def canonical_json(payload):
            return json.dumps(payload, sort_keys=True)
        """,
        path="repro/util.py",
        rules=["canonical-json"],
    )
    assert result.findings == []


def test_canonical_json_clean_twin():
    result = lint_src(
        """
        from repro.util import canonical_json

        def save(record, fh):
            fh.write(canonical_json(record))
        """,
        rules=["canonical-json"],
    )
    assert result.findings == []
