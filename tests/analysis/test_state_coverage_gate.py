"""Acceptance tests for the state-coverage gate against the REAL tree.

ISSUE 9's acceptance criterion: deleting any single captured field
from ``checkpoint/capture.py``, or adding a new ``__slots__`` entry to
``Switch``, must turn the lint gate red.  These tests perform exactly
those mutations — through the project overlay, never touching disk —
and assert the gate fires with an actionable message.
"""

from pathlib import Path

from repro.analysis import run_lint

REPO = Path(__file__).resolve().parents[2]
SRC = str(REPO / "src" / "repro")
CAPTURE = REPO / "src" / "repro" / "checkpoint" / "capture.py"
RESTORE = REPO / "src" / "repro" / "checkpoint" / "restore.py"
SWITCH = REPO / "src" / "repro" / "noc" / "switch.py"


def coverage_findings(overlay):
    result = run_lint([SRC], rule_ids=["state-coverage"], overlay=overlay)
    return [f for f in result.findings if f.rule == "state-coverage"]


def drop_line(path, needle):
    """The file's text minus the single line containing ``needle``."""
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    hits = [ln for ln in lines if needle in ln]
    assert len(hits) == 1, f"{needle!r} must identify one line"
    return "".join(ln for ln in lines if needle not in ln)


def test_real_tree_is_currently_covered():
    assert coverage_findings(None) == []


def test_deleting_a_captured_field_fails_the_gate():
    # capture.py reads Switch._in_parked exactly once; delete it.
    mutated = drop_line(CAPTURE, '"parked": sw._in_parked[i],')
    findings = coverage_findings(
        {"repro/checkpoint/capture.py": mutated}
    )
    assert any(
        "Switch._in_parked" in f.message
        and "not read by checkpoint/capture.py" in f.message
        for f in findings
    ), [f.render() for f in findings]


def test_deleting_a_restored_field_fails_the_gate():
    # restore.py writes Switch._parked_count exactly once; delete it.
    mutated = drop_line(RESTORE, 'sw._parked_count = state["parked_count"]')
    findings = coverage_findings(
        {"repro/checkpoint/restore.py": mutated}
    )
    assert any(
        "Switch._parked_count" in f.message
        and "not written by checkpoint/restore.py" in f.message
        for f in findings
    ), [f.render() for f in findings]


def test_adding_a_switch_slot_fails_the_gate():
    text = SWITCH.read_text(encoding="utf-8")
    grown = text.replace(
        '__slots__ = (\n        "switch_id",',
        '__slots__ = (\n        "_brand_new_counter",\n        "switch_id",',
        1,
    )
    assert grown != text
    findings = coverage_findings({"repro/noc/switch.py": grown})
    assert any(
        "Switch._brand_new_counter" in f.message for f in findings
    ), [f.render() for f in findings]


def test_new_slot_with_pragma_passes_the_gate():
    # The documented escape hatch: a new structural field carries an
    # allow-pragma naming the rebuild path instead of serialization.
    text = SWITCH.read_text(encoding="utf-8")
    grown = text.replace(
        '__slots__ = (\n        "switch_id",',
        '__slots__ = (\n'
        '        "_route_scratch",'
        '  # repro: allow[state-coverage] rebuilt by _compile_routes\n'
        '        "switch_id",',
        1,
    )
    assert grown != text
    assert coverage_findings({"repro/noc/switch.py": grown}) == []
