"""Baseline round-trip: render -> load -> suppress; stale detection."""

import textwrap

import pytest

from repro.analysis import run_lint
from repro.analysis.baseline import (
    BASELINE_VERSION,
    load_baseline,
    render_baseline,
)

VIOLATING = """
import time

def measure():
    return time.time()
"""


def lint(baseline=None):
    return run_lint(
        [],
        rule_ids=["wall-clock"],
        baseline=baseline,
        overlay={"pkg/mod.py": textwrap.dedent(VIOLATING)},
    )


def test_round_trip_suppresses_exactly_the_baselined_findings(tmp_path):
    first = lint()
    assert len(first.findings) == 1

    path = tmp_path / "lint_baseline.json"
    path.write_text(render_baseline(first.findings), encoding="utf-8")

    second = lint(baseline=str(path))
    assert second.findings == []
    assert [how for _, how in second.suppressed] == ["baseline"]


def test_baseline_matching_ignores_line_numbers(tmp_path):
    first = lint()
    path = tmp_path / "lint_baseline.json"
    path.write_text(render_baseline(first.findings), encoding="utf-8")

    shifted = run_lint(
        [],
        rule_ids=["wall-clock"],
        baseline=str(path),
        overlay={
            "pkg/mod.py": "# a new comment shifts every line\n"
            + textwrap.dedent(VIOLATING)
        },
    )
    assert shifted.findings == []


def test_stale_entry_is_reported(tmp_path):
    path = tmp_path / "lint_baseline.json"
    path.write_text(
        render_baseline(lint().findings), encoding="utf-8"
    )
    clean = run_lint(
        [],
        rule_ids=["wall-clock"],
        baseline=str(path),
        overlay={"pkg/mod.py": "def measure(clock):\n    return clock()\n"},
    )
    assert [f.rule for f in clean.findings] == ["pragma-hygiene"]
    assert "stale baseline entry" in clean.findings[0].message


def test_render_is_canonical_and_versioned(tmp_path):
    text = render_baseline(lint().findings)
    assert f'"version":{BASELINE_VERSION}' in text
    assert text == render_baseline(lint().findings)

    path = tmp_path / "lint_baseline.json"
    path.write_text(text, encoding="utf-8")
    baseline = load_baseline(str(path))
    assert len(baseline.entries) == 1


def test_load_rejects_malformed_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"version":99,"entries":[]}', encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(str(bad))

    bad.write_text(
        '{"entries":[{"rule":"x","path":"y"}],"version":1}',
        encoding="utf-8",
    )
    with pytest.raises(ValueError):
        load_baseline(str(bad))
