"""Ablation — arbitration policy under the 90%-loaded links.

The platform switch uses round-robin arbitration.  This bench swaps in
fixed-priority and matrix arbitration on the paper's overlap setup and
measures per-flow fairness and latency.  Expected: round-robin and
matrix share the hot links evenly; fixed priority starves the
lower-priority flow, visible as a latency spread between flows.
"""

import pytest

from benchmarks.conftest import emit, format_table
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.receptors.tracedriven import TraceDrivenReceptor

pytestmark = pytest.mark.perf

POLICIES = ("round_robin", "fixed_priority", "matrix")
PACKETS = 1500


def run_policy(policy: str):
    # Burst traffic: while two bursts collide on a middle link the
    # offered load doubles the link capacity, which is when the
    # arbitration policy decides who waits.  (At the steady 45%/flow
    # uniform load the link is never oversubscribed and every policy
    # behaves identically.)
    cfg = paper_platform_config(
        traffic="burst",
        max_packets=PACKETS,
        seed=2,
        traffic_params={"mean_burst_packets": 16},
    )
    cfg.arbitration = policy
    platform = build_platform(cfg)
    EmulationEngine(platform).run()
    per_flow = {
        r.node: r.latency.mean_latency
        for r in platform.receptors
        if isinstance(r, TraceDrivenReceptor)
    }
    latencies = list(per_flow.values())
    return {
        "mean": platform.mean_latency(),
        "spread": max(latencies) - min(latencies),
        "max": platform.max_latency(),
        "congestion": platform.congestion_rate(),
    }


def test_ablation_arbitration(benchmark):
    results = {policy: run_policy(policy) for policy in POLICIES}
    rows = [
        (
            policy,
            f"{r['mean']:.1f}",
            f"{r['spread']:.1f}",
            r["max"],
            f"{r['congestion']:.4f}",
        )
        for policy, r in results.items()
    ]
    emit(
        "ablation_arbitration",
        format_table(
            [
                "policy",
                "mean latency",
                "flow latency spread",
                "max latency",
                "congestion",
            ],
            rows,
        ),
    )

    # Fair arbiters keep the flows close; fixed priority skews them.
    assert (
        results["fixed_priority"]["spread"]
        > results["round_robin"]["spread"]
    )
    assert (
        results["fixed_priority"]["spread"]
        > results["matrix"]["spread"]
    )
    # All policies deliver the same traffic volume (checked by the
    # engine's completed flag inside run_policy).

    benchmark(lambda: run_policy("round_robin"))
