"""Ablation — the "two routing possibilities" (Slide 19).

Runs the paper workload under all three route cases the platform's
tables can express: overlap (all flows through the middle links),
disjoint (dimension-ordered, no sharing) and split (per-packet choice
between the two).  Expected: disjoint < split < overlap in congestion
and latency; the hot-link load halves from overlap (~90%) to split
(~45%).
"""

import pytest

from benchmarks.conftest import emit, format_table
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.noc.topology import paper_hot_links

pytestmark = pytest.mark.perf

CASES = ("overlap", "split", "disjoint")
PACKETS = 1500


def run_case(case: str):
    platform = build_platform(
        paper_platform_config(
            max_packets=PACKETS, routing_case=case, seed=6
        )
    )
    result = EmulationEngine(platform).run()
    assert result.completed
    loads = platform.network.link_loads()
    hot = max(loads[pair] for pair in paper_hot_links())
    return {
        "hot_link": hot,
        "congestion": platform.congestion_rate(),
        "latency": platform.mean_latency(),
        "cycles": result.cycles,
    }


def test_ablation_routing_cases(benchmark):
    results = {case: run_case(case) for case in CASES}
    rows = [
        (
            case,
            f"{r['hot_link']:.2f}",
            f"{r['congestion']:.4f}",
            f"{r['latency']:.1f}",
            r["cycles"],
        )
        for case, r in results.items()
    ]
    emit(
        "ablation_routing",
        format_table(
            [
                "route case",
                "middle link load",
                "congestion",
                "mean latency",
                "cycles",
            ],
            rows,
        ),
    )

    # Hot-link load: overlap ~0.9, split ~0.45, disjoint ~0 (unused).
    assert results["overlap"]["hot_link"] == pytest.approx(0.9, abs=0.05)
    assert results["split"]["hot_link"] == pytest.approx(0.45, abs=0.08)
    assert results["disjoint"]["hot_link"] < 0.05

    # Congestion/latency ordering across the cases.
    assert (
        results["disjoint"]["congestion"]
        <= results["split"]["congestion"]
        <= results["overlap"]["congestion"]
    )
    assert (
        results["disjoint"]["latency"] < results["overlap"]["latency"]
    )

    benchmark(lambda: run_case("disjoint"))
