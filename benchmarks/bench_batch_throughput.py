"""Batch-runner throughput smoke: serial vs parallel vs cached.

The experiments subsystem exists to push *scenarios per second*, the
sweep-level analogue of the paper's cycles-per-second claim (Table 2's
point is that fast single runs make design-space sweeps tractable).
This bench runs one 12-scenario grid three ways — serially, on a
4-worker process pool, and from a warm result cache — asserts all
three produce bit-identical records, and emits
``benchmarks/results/BENCH_batch.json`` with the measured
scenarios/sec so every future PR has a comparable record of sweep
throughput.

Speedup floors are asserted only where the machine can deliver them:
the parallel floor needs >= 4 usable cores (a process pool cannot beat
serial execution on a single-core container — it still must produce
identical results there, which *is* asserted).  The cache floor holds
everywhere: serving 12 records from disk must be at least 5x faster
than emulating them.
"""

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, emit, format_table
from repro.experiments import (
    ResultCache,
    ScenarioSpec,
    Sweep,
    SweepRunner,
)

pytestmark = pytest.mark.perf

#: 12 scenarios: saturation-region uniform traffic on the paper
#: platform, load x depth.  Uniform keeps per-scenario cost flat so
#: the pool's load balance doesn't dominate the measurement.
GRID = dict(
    load=(0.15, 0.30, 0.45, 0.60),
    buffer_depth=(2, 4, 8),
)
BASE = ScenarioSpec(traffic="uniform", packets=900, seed=11)

PARALLEL_WORKERS = 4
#: Conservative floors (see module docstring).
PARALLEL_FLOOR = 2.0
CACHE_FLOOR = 5.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _measure(runner: SweepRunner, specs):
    started = time.perf_counter()
    results = runner.run(specs)
    wall = time.perf_counter() - started
    return [r.record() for r in results], wall


def test_batch_throughput_smoke(tmp_path):
    specs = Sweep.grid(BASE, **GRID)
    n = len(specs)
    assert n == 12

    serial_records, serial_wall = _measure(SweepRunner(workers=1), specs)
    parallel_records, parallel_wall = _measure(
        SweepRunner(workers=PARALLEL_WORKERS), specs
    )
    cache = ResultCache(str(tmp_path / "cache"))
    _measure(SweepRunner(workers=1, cache=cache), specs)  # warm
    cached_runner = SweepRunner(workers=1, cache=cache)
    cached_records, cached_wall = _measure(cached_runner, specs)

    # Correctness first: all three paths must be bit-identical.
    assert parallel_records == serial_records
    assert cached_records == serial_records
    assert cached_runner.last_stats.executed == 0
    assert cached_runner.last_stats.cached == n

    cores = _usable_cores()
    report = {
        "scenarios": n,
        "usable_cores": cores,
        "serial_sps": round(n / serial_wall, 2),
        "parallel_sps": round(n / parallel_wall, 2),
        "cached_sps": round(n / cached_wall, 2),
        "parallel_speedup": round(serial_wall / parallel_wall, 2),
        "cache_speedup": round(serial_wall / cached_wall, 2),
        "parallel_workers": PARALLEL_WORKERS,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_batch.json"),
        "w",
        encoding="utf-8",
    ) as fh:
        json.dump(report, fh, indent=2)
    emit(
        "batch_throughput",
        format_table(
            ["path", "scenarios/s", "speedup vs serial"],
            [
                ("serial", report["serial_sps"], "1.00x"),
                (
                    f"parallel (x{PARALLEL_WORKERS})",
                    report["parallel_sps"],
                    f"{report['parallel_speedup']:.2f}x",
                ),
                (
                    "cached",
                    report["cached_sps"],
                    f"{report['cache_speedup']:.2f}x",
                ),
            ],
        ),
    )

    assert report["cache_speedup"] >= CACHE_FLOOR, (
        f"warm cache only {report['cache_speedup']}x faster than"
        f" executing (floor {CACHE_FLOOR}x)"
    )
    if cores >= PARALLEL_WORKERS:
        assert report["parallel_speedup"] >= PARALLEL_FLOOR, (
            f"{PARALLEL_WORKERS} workers on {cores} cores only"
            f" {report['parallel_speedup']}x faster than serial"
            f" (floor {PARALLEL_FLOOR}x)"
        )
