"""Ablation — switching mode: wormhole vs store-and-forward.

The platform emulates "any NoC packet-switching intercommunication
scheme" (Slide 13); this bench compares the two classical disciplines
on the paper workload.  Store-and-forward needs buffers at least one
packet deep and pays a full serialisation delay per hop, so wormhole
must win on latency at equal (sufficient) buffering.
"""

import pytest

from benchmarks.conftest import emit, format_table
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform

pytestmark = pytest.mark.perf

PACKETS = 800
LENGTH = 6
DEPTH = 8  # >= packet length, as store-and-forward requires

MODES = ("wormhole", "store_and_forward")


def run_mode(mode: str):
    cfg = paper_platform_config(
        max_packets=PACKETS,
        length=LENGTH,
        buffer_depth=DEPTH,
        seed=8,
    )
    cfg.switching = mode
    platform = build_platform(cfg)
    result = EmulationEngine(platform).run()
    assert result.completed
    return {
        "latency": platform.mean_latency(),
        "max": platform.max_latency(),
        "cycles": result.cycles,
        "congestion": platform.congestion_rate(),
    }


def test_ablation_switching_mode(benchmark):
    results = {mode: run_mode(mode) for mode in MODES}
    rows = [
        (
            mode,
            f"{r['latency']:.1f}",
            r["max"],
            r["cycles"],
            f"{r['congestion']:.4f}",
        )
        for mode, r in results.items()
    ]
    emit(
        "ablation_switching",
        format_table(
            [
                "switching",
                "mean latency",
                "max latency",
                "cycles",
                "congestion",
            ],
            rows,
        ),
    )

    # Wormhole pipelines flits across hops: strictly lower latency.
    assert (
        results["wormhole"]["latency"]
        < results["store_and_forward"]["latency"]
    )
    # Both deliver the full budget (asserted inside run_mode).

    benchmark(lambda: run_mode("wormhole"))
