"""Sweep-resilience bench: supervision overhead and journal resume.

The supervised worker pool replaced the bare ``multiprocessing.Pool``
under every parallel sweep, so its price must stay measured: this
bench runs one 12-scenario grid on a plain pool (``pool.imap``, the
pre-supervision execution path, reproduced here) and on the
supervised pool, asserts bit-identical records, and enforces a <= 5%
overhead ceiling on healthy sweeps.  It then prices what the crash
machinery buys: resuming a half-completed journaled sweep must
execute exactly the unfinished half and beat re-running the whole
sweep from scratch.

``benchmarks/results/BENCH_resilience.json`` carries the measurements;
its ``deterministic`` sub-record (record hash, executed counts) is
drift-guarded — the bench fails *before overwriting* if supervised
execution ever changes the bits a sweep produces.

Wall-clock floors are asserted only where the machine can deliver
them (>= 4 usable cores); determinism and the executed-count
accounting are asserted everywhere.
"""

import hashlib
import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, emit, format_table
from repro.experiments import (
    ResultCache,
    ScenarioSpec,
    Sweep,
    SweepJournal,
    SweepRunner,
)
from repro.experiments.runner import _run_record
from repro.util import canonical_json_bytes

pytestmark = pytest.mark.perf

GRID = dict(
    load=(0.15, 0.30, 0.45, 0.60),
    buffer_depth=(2, 4, 8),
)
BASE = ScenarioSpec(traffic="uniform", packets=900, seed=11)

WORKERS = 4
#: Supervision must cost <= 5% wall-clock on a healthy sweep.
OVERHEAD_CEILING = 1.05
#: Resuming a half-done sweep must beat a cold sweep by >= 1.4x
#: (half the work plus journal/cache bookkeeping).
RESUME_FLOOR = 1.4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _bare_pool(specs):
    """The pre-supervision execution path: bare ``pool.imap``."""
    import multiprocessing

    payloads = [spec.to_dict() for spec in specs]
    started = time.perf_counter()
    with multiprocessing.Pool(processes=WORKERS) as pool:
        outcomes = list(pool.imap(_run_record, payloads, chunksize=1))
    wall = time.perf_counter() - started
    return [record for record, _ in outcomes], wall


def _supervised(specs):
    runner = SweepRunner(workers=WORKERS)
    started = time.perf_counter()
    report = runner.run(specs)
    wall = time.perf_counter() - started
    assert report.ok
    return [r.record() for r in report], wall


def _sweep_hash(records):
    return hashlib.sha256(
        canonical_json_bytes(records)
    ).hexdigest()[:16]


def check_no_drift(report, baseline_path):
    """Fail before overwriting when deterministic fields changed."""
    if not os.path.exists(baseline_path):
        return
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            committed = json.load(fh)
    except (OSError, ValueError):
        return  # unreadable record: nothing to guard against
    old = committed.get("deterministic")
    if old is None:
        return
    new = report["deterministic"]
    assert new == old, (
        f"deterministic resilience record drifted from the committed"
        f" {os.path.basename(baseline_path)} — refusing to"
        f" overwrite; investigate (or delete the record to"
        f" re-baseline deliberately).\n"
        f"committed: {json.dumps(old, sort_keys=True)}\n"
        f"measured:  {json.dumps(new, sort_keys=True)}"
    )


def test_sweep_resilience_bench(tmp_path):
    specs = Sweep.grid(BASE, **GRID)
    n = len(specs)
    assert n == 12

    # --- supervision overhead vs the bare pool -----------------------
    bare_records, bare_wall = _bare_pool(specs)
    supervised_records, supervised_wall = _supervised(specs)
    assert supervised_records == bare_records
    overhead = supervised_wall / bare_wall

    # --- journal resume on a half-completed sweep --------------------
    cache = ResultCache(str(tmp_path / "cache"))
    journal = SweepJournal.for_sweep(cache.root, specs)
    half = specs[: n // 2]
    SweepRunner(
        workers=WORKERS, cache=cache, journal=journal
    ).run(half)  # the "crashed" first run finished half the sweep

    resumed = SweepRunner(
        workers=WORKERS, cache=cache, journal=journal, resume=True
    )
    started = time.perf_counter()
    resumed_report = resumed.run(specs)
    resume_wall = time.perf_counter() - started
    assert resumed_report.ok
    assert resumed.last_stats.cached == n // 2
    assert resumed.last_stats.executed == n - n // 2
    resumed_records = [r.record() for r in resumed_report]
    assert resumed_records == bare_records
    cold_wall = supervised_wall  # same sweep, no cache/journal
    resume_speedup = cold_wall / resume_wall

    cores = _usable_cores()
    report = {
        "deterministic": {
            "scenarios": n,
            "sweep_hash": _sweep_hash(bare_records),
            "resumed_executed": resumed.last_stats.executed,
            "resumed_cached": resumed.last_stats.cached,
        },
        "usable_cores": cores,
        "workers": WORKERS,
        "bare_pool_sps": round(n / bare_wall, 2),
        "supervised_sps": round(n / supervised_wall, 2),
        "supervision_overhead": round(overhead, 3),
        "resume_sps": round(n / resume_wall, 2),
        "resume_speedup": round(resume_speedup, 2),
    }

    baseline_path = os.path.join(RESULTS_DIR, "BENCH_resilience.json")
    check_no_drift(report, baseline_path)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    emit(
        "sweep_resilience",
        format_table(
            ["path", "scenarios/s", "note"],
            [
                ("bare pool", report["bare_pool_sps"], "1.00x"),
                (
                    "supervised",
                    report["supervised_sps"],
                    f"{report['supervision_overhead']:.3f}x wall",
                ),
                (
                    "journal resume",
                    report["resume_sps"],
                    f"{report['resume_speedup']:.2f}x vs cold",
                ),
            ],
        ),
    )

    if cores >= WORKERS:
        assert overhead <= OVERHEAD_CEILING, (
            f"supervised pool costs {overhead:.3f}x the bare pool"
            f" wall-clock (ceiling {OVERHEAD_CEILING}x)"
        )
        assert resume_speedup >= RESUME_FLOOR, (
            f"journal resume of a half-done sweep only"
            f" {resume_speedup:.2f}x faster than cold"
            f" (floor {RESUME_FLOOR}x)"
        )
