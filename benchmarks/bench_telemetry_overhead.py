"""Telemetry overhead smoke: windows and tracing vs a bare run.

The windowed collector's design claim is that observation costs the
hot loop one integer comparison per cycle — metrics come from counter
snapshots at window boundaries, never per-cycle sampling, so idle
fast-forward and parking stay engaged.  This bench measures that claim
on the saturation operating point (the paper's 45% load, where every
boundary snapshot is real work) and the idle-heavy burst shape (where
fast-forward dominates and skipped windows must be O(1)), and emits
``BENCH_telemetry.json``:

* ``off_cps`` — engine speed with no telemetry attached; must stay
  within 2% of the committed ``BENCH_kernel.json`` figure for the same
  scenario, pinning that the telemetry hooks cost nothing when unused.
* ``windows_cps`` — with a :class:`WindowedMetrics` attached; the
  boundary-differencing overhead must stay under a few percent.
* ``trace_cps`` — with a :class:`FlitTracer` streaming every flit
  event to the null device (``keep=False``).  Tracing is the expensive
  opt-in (one event per flit per hop); no floor beyond the regression
  guard, the number is recorded so the cost stays visible.

Like ``bench_kernel_speed``, the bench fails loudly *before*
overwriting the committed record when any figure regresses beyond its
tolerance.
"""

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, emit, format_table
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.telemetry import FlitTracer, WindowedMetrics

pytestmark = pytest.mark.perf

SCENARIOS = {
    # Same shapes as bench_kernel_speed so off_cps is directly
    # comparable with the committed BENCH_kernel.json event_cps.
    "saturation": dict(traffic="uniform", load=0.45, max_packets=1500),
    "burst": dict(
        traffic="trace",
        max_packets=None,
        traffic_params={
            "n_bursts": 40,
            "packets_per_burst": 8,
            "gap": 6000,
        },
    ),
}

WINDOW_CYCLES = 2000

#: Telemetry disabled must track the committed kernel bench within
#: this band (the ISSUE's acceptance bar): the hooks are one dormant
#: comparison per cycle, so any drift here is a real hot-loop cost.
OFF_VS_KERNEL_TOLERANCE = 0.02
#: Measurement noise allowance on top: off_cps and the kernel bench
#: run in different processes and possibly different container CPU
#: weather — interleaved A/B timings of identical code have been
#: observed swinging 47k-90k c/s on the reference container, so the
#: hard gate must leave room for a best-of-N that lands in a trough.
#: The recorded ``off_vs_kernel_bench`` ratio is the precise signal.
NOISE_TOLERANCE = 0.20

#: Windowed metrics must stay cheap.  The real cost is one integer
#: comparison per cycle plus ~a dozen boundary snapshots (it does not
#: even register under cProfile); the asserted ceiling is set by
#: container CPU swings between interleaved best-of-N runs, not by the
#: collector — the recorded ``windows_overhead`` is the signal.
WINDOWS_OVERHEAD_CEILING = 0.10

REGRESSION_TOLERANCES = {
    "saturation": {"off_cps": 0.10, "windows_cps": 0.10},
    "burst": {"off_cps": 0.15, "windows_cps": 0.15},
}


def run_once(kwargs, mode):
    platform = build_platform(paper_platform_config(**kwargs))
    telemetry = None
    tracer = None
    sink = None
    if mode == "windows":
        telemetry = WindowedMetrics(platform, WINDOW_CYCLES)
    elif mode == "trace":
        sink = open(os.devnull, "w", encoding="utf-8")
        tracer = FlitTracer(stream=sink, keep=False)
        platform.network.attach_tracer(tracer)
    engine = EmulationEngine(platform, telemetry=telemetry)
    start = time.process_time()
    result = engine.run()
    wall = time.process_time() - start
    if tracer is not None:
        platform.network.detach_tracer()
        tracer.close()
        sink.close()
    return result, wall


def measure(name, reps=5):
    kwargs = SCENARIOS[name]
    best = {"off": float("inf"), "windows": float("inf"),
            "trace": float("inf")}
    outcomes = {}
    # Interleave the modes across reps so CPU frequency drift hits
    # all three equally.
    for _ in range(reps):
        for mode in best:
            result, wall = run_once(kwargs, mode)
            best[mode] = min(best[mode], wall)
            outcomes[mode] = result
    # Telemetry must not change the emulation itself.
    cycles = outcomes["off"].cycles
    for mode in ("windows", "trace"):
        assert outcomes[mode].cycles == cycles, (name, mode)
        assert (
            outcomes[mode].packets_received
            == outcomes["off"].packets_received
        ), (name, mode)
    windows = outcomes["windows"].windows
    assert windows and windows[-1].end == cycles
    record = {
        "cycles": cycles,
        "windows": len(windows),
        "off_cps": round(cycles / best["off"]),
        "windows_cps": round(cycles / best["windows"]),
        "trace_cps": round(cycles / best["trace"]),
        "windows_overhead": round(
            best["windows"] / best["off"] - 1.0, 4
        ),
        "trace_overhead": round(best["trace"] / best["off"] - 1.0, 4),
    }
    return record


def check_no_regression(report, baseline_path):
    """Fail before overwriting when any figure regresses too far."""
    if not os.path.exists(baseline_path):
        return
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            committed = json.load(fh)
    except (OSError, ValueError):
        return  # unreadable record: nothing to guard against
    for name, fields in REGRESSION_TOLERANCES.items():
        for field, tolerance in fields.items():
            old = committed.get(name, {}).get(field)
            if not old:
                continue
            new = report[name][field]
            floor = old * (1.0 - tolerance)
            assert new >= floor, (
                f"{name}.{field}: regressed to {new:,} c/s, more than"
                f" {tolerance:.0%} below the committed {old:,} c/s —"
                f" refusing to overwrite"
                f" {os.path.basename(baseline_path)}; investigate (or"
                f" delete the record to re-baseline deliberately)"
            )


def check_off_vs_kernel_bench(report):
    """Telemetry-off speed must track the committed kernel bench."""
    kernel_path = os.path.join(RESULTS_DIR, "BENCH_kernel.json")
    if not os.path.exists(kernel_path):
        return
    with open(kernel_path, encoding="utf-8") as fh:
        kernel = json.load(fh)
    band = 1.0 - OFF_VS_KERNEL_TOLERANCE - NOISE_TOLERANCE
    for name in SCENARIOS:
        committed = kernel.get(name, {}).get("event_cps")
        if not committed:
            continue
        off = report[name]["off_cps"]
        report[name]["off_vs_kernel_bench"] = round(
            off / committed, 3
        )
        assert off >= committed * band, (
            f"{name}: telemetry-off run at {off:,} c/s vs the"
            f" committed kernel bench's {committed:,} — beyond the"
            f" {OFF_VS_KERNEL_TOLERANCE:.0%} acceptance band plus"
            f" {NOISE_TOLERANCE:.0%} measurement noise; the dormant"
            f" telemetry hooks are not free"
        )


def test_telemetry_overhead_smoke():
    report = {name: measure(name) for name in SCENARIOS}

    baseline_path = os.path.join(RESULTS_DIR, "BENCH_telemetry.json")
    check_no_regression(report, baseline_path)
    check_off_vs_kernel_bench(report)

    for name, record in report.items():
        assert record["windows_overhead"] <= WINDOWS_OVERHEAD_CEILING, (
            f"{name}: windowed metrics cost"
            f" {record['windows_overhead']:.1%} of the run (ceiling"
            f" {WINDOWS_OVERHEAD_CEILING:.0%}); boundary differencing"
            f" is no longer cheap"
        )

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    rows = [
        (
            name,
            f"{r['off_cps']:,}",
            f"{r['windows_cps']:,}",
            f"{r['trace_cps']:,}",
            f"{r['windows_overhead']:+.1%}",
            f"{r['trace_overhead']:+.1%}",
            r["windows"],
        )
        for name, r in report.items()
    ]
    emit(
        "telemetry_overhead",
        format_table(
            [
                "scenario",
                "off c/s",
                "windows c/s",
                "trace c/s",
                "windows cost",
                "trace cost",
                "windows",
            ],
            rows,
        ),
    )
