"""F2 — run-time vs number of sent packets (Slide 20).

The paper's first experimental figure runs the stochastic platform and
plots emulation run-time against the number of sent packets for the
uniform and burst traffic models, observing that run-time is linear in
the packet count and that "burst traffic creates more congestion on
the NoC than uniform traffic".

The regenerated series reports, per (model, packets) point: emulated
cycles, emulated time at the 50 MHz platform clock, and the measured
congestion rate.
"""

import pytest

from benchmarks.conftest import emit, format_table
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.stats.runtime import format_duration

pytestmark = pytest.mark.perf

#: Packets per generator at each sweep point (x-axis).
SWEEP_PACKETS = (250, 500, 1000, 2000, 4000)


def run_point(traffic: str, packets: int):
    platform = build_platform(
        paper_platform_config(
            traffic=traffic, max_packets=packets, seed=3
        )
    )
    result = EmulationEngine(platform).run()
    assert result.completed
    return platform, result


def sweep(traffic: str):
    series = []
    for packets in SWEEP_PACKETS:
        platform, result = run_point(traffic, packets)
        series.append(
            {
                "packets": 4 * packets,  # platform-wide sent packets
                "cycles": result.cycles,
                "emulated": format_duration(result.emulated_seconds),
                "congestion": platform.congestion_rate(),
            }
        )
    return series


def test_fig_runtime_vs_packets(benchmark):
    uniform = sweep("uniform")
    burst = sweep("burst")

    rows = []
    for u, b in zip(uniform, burst):
        rows.append(
            (
                u["packets"],
                u["cycles"],
                u["emulated"],
                f"{u['congestion']:.4f}",
                b["cycles"],
                b["emulated"],
                f"{b['congestion']:.4f}",
            )
        )
    emit(
        "fig_runtime_vs_packets",
        format_table(
            [
                "sent packets",
                "uniform cycles",
                "uniform @50MHz",
                "uniform congestion",
                "burst cycles",
                "burst @50MHz",
                "burst congestion",
            ],
            rows,
        ),
    )

    # Shape 1: run-time linear in sent packets (both models).
    for series in (uniform, burst):
        cycles = [p["cycles"] for p in series]
        for i in range(len(cycles) - 1):
            growth = cycles[i + 1] / cycles[i]
            assert growth == pytest.approx(2.0, rel=0.25), series

    # Shape 2: burst congests more than uniform at every point.
    for u, b in zip(uniform, burst):
        assert b["congestion"] > u["congestion"]

    # Timed kernel: the smallest sweep point, uniform model.
    benchmark(lambda: run_point("uniform", SWEEP_PACKETS[0]))


def test_fig_runtime_burst_tail_is_longer(benchmark):
    """Bursts also stretch the drain tail: same packet budget takes
    more cycles end-to-end under burst traffic."""

    def both():
        _, u = run_point("uniform", 500)
        _, b = run_point("burst", 500)
        return u, b

    u, b = benchmark.pedantic(both, rounds=1, iterations=1)
    assert b.cycles > u.cycles * 0.95  # never meaningfully faster
