"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper.  The
rendered artefact is printed to the terminal *and* written to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference a
stable file regardless of pytest's output capturing.
"""

from __future__ import annotations

import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: performance smoke benches (excluded from tier-1; run"
        " explicitly or with -m perf)",
    )


def emit(name: str, text: str) -> None:
    """Print an artefact and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    # Bypass pytest capture so the artefact is visible live with -s
    # and still lands in the results file either way.
    sys.stderr.write(f"\n[{name}] -> {path}\n{text}\n")


def format_table(headers, rows) -> str:
    """Minimal fixed-width table renderer for figure data."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
