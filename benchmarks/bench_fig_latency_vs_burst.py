"""F4 — average latency vs packets/burst (Slide 22).

Trace-driven experiment: average packet latency (generation to
reception, the latency analyzer's definition) against packets per
burst.  The paper observes that "the latency reaches a maximum [which]
is a function of the congestion rate (90%)": with finite TG queues the
worst-case sojourn is bounded by queue depth over the drain rate of
the 90%-loaded links, so the curve rises and then flattens.

The regenerated series reports mean and max latency per point plus the
hot-link load that sets the ceiling.
"""

import pytest

from benchmarks.conftest import emit, format_table
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.noc.topology import paper_hot_links

pytestmark = pytest.mark.perf

PACKETS_PER_BURST = (1, 2, 4, 8, 16, 32, 64, 128)
FLITS_PER_PACKET = 8
PACKET_BUDGET = 1024


def run_point(ppb: int):
    n_bursts = max(1, PACKET_BUDGET // ppb)
    gap = round(ppb * FLITS_PER_PACKET * 0.55 / 0.45)
    platform = build_platform(
        paper_platform_config(
            traffic="trace",
            max_packets=None,
            length=FLITS_PER_PACKET,
            traffic_params={
                "n_bursts": n_bursts,
                "packets_per_burst": ppb,
                "flits_per_packet": FLITS_PER_PACKET,
                "gap": gap,
            },
        )
    )
    result = EmulationEngine(platform).run()
    assert result.completed
    loads = platform.network.link_loads()
    hot = max(loads[pair] for pair in paper_hot_links())
    return {
        "mean": platform.mean_latency(),
        "max": platform.max_latency(),
        "hot_link": hot,
    }


def test_fig_latency_vs_packets_per_burst(benchmark):
    series = [run_point(ppb) for ppb in PACKETS_PER_BURST]
    rows = [
        (
            ppb,
            f"{p['mean']:.1f}",
            p["max"],
            f"{p['hot_link']:.2f}",
        )
        for ppb, p in zip(PACKETS_PER_BURST, series)
    ]
    emit(
        "fig_latency_vs_burst",
        format_table(
            [
                "packets/burst",
                "mean latency (cycles)",
                "max latency",
                "hot link load",
            ],
            rows,
        ),
    )

    means = [p["mean"] for p in series]
    # Shape 1: latency rises monotonically with burst length.
    assert all(a < b for a, b in zip(means, means[1:]))
    # Shape 1b: ...and saturates at the tail — the last doubling gains
    # far less than the steepest doubling in the middle of the curve.
    gains = [b - a for a, b in zip(means, means[1:])]
    assert gains[-1] < max(gains) * 0.5
    # The *maximum* latency hits its hard ceiling outright.
    maxima = [p["max"] for p in series]
    assert maxima[-1] == maxima[-2]

    # Shape 2: the ceiling appears while the hot links run near the
    # paper's 90% operating point during bursts.
    assert series[-1]["hot_link"] > 0.3

    # Shape 3: the saturated mean stays bounded by the structural
    # maximum (source queue + worst drain), not growing without limit.
    assert means[-1] < means[-2] * 1.5

    benchmark(lambda: run_point(PACKETS_PER_BURST[0]))


def test_fig_latency_max_bounded_by_queue_depth(benchmark):
    """Halving the TG queue lowers the latency ceiling — the
    mechanism behind the paper's saturating maximum."""

    def at_queue(limit):
        platform = build_platform(
            paper_platform_config(
                traffic="trace",
                max_packets=None,
                length=FLITS_PER_PACKET,
                traffic_params={
                    "n_bursts": 16,
                    "packets_per_burst": 64,
                    "flits_per_packet": FLITS_PER_PACKET,
                    "gap": round(64 * FLITS_PER_PACKET * 0.55 / 0.45),
                },
            )
        )
        for generator in platform.generators:
            generator.queue_limit = limit
        EmulationEngine(platform).run()
        return platform.mean_latency()

    def both():
        return at_queue(32), at_queue(128)

    small, large = benchmark.pedantic(both, rounds=1, iterations=1)
    assert small < large
