"""Fault-injection bench: repair latency and degraded throughput.

Runs the paper platform through three fault stories — a mid-run hot
link cut that heals later, a flaky window, and an unrepaired cut that
degrades — and emits ``BENCH_faults.json``: the wall-clock cost of an
online routing repair (rebuild + deadlock vet + dense recompile, the
software-only reconfiguration Slide 13 sells) next to the per-window
throughput the fault cost the fabric.

The guard is exactness, not speed: every field except the wall-clock
repair latencies is a deterministic function of the schedule, so if
*any* deterministic field differs from the committed record the bench
**fails loudly before overwriting it** — drift in drop accounting or
reroute behaviour can never silently rewrite its own baseline.
"""

import itertools
import json
import os

import pytest

import repro.noc.flit as flit_mod
from benchmarks.conftest import RESULTS_DIR, emit, format_table
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.experiments.spec import ScenarioSpec
from repro.faults import (
    FaultSchedule,
    flaky,
    link_down,
    link_up,
)

pytestmark = pytest.mark.perf

SCENARIOS = {
    # Cut both directions of a hot middle link mid-run, heal them
    # later: two repairs (around the cut, back after the heal) with a
    # long degraded window between.
    "reroute": FaultSchedule.of(
        link_down(3000, 1, 4),
        link_down(3000, 4, 1),
        link_up(9000, 1, 4),
        link_up(9000, 4, 1),
    ),
    # A lossy window on the same pair: per-flit seeded drops, one
    # abort settlement per hit.
    "flaky": FaultSchedule.of(
        flaky(2000, 1, 4, until=6000, drop_p=0.1, seed=3),
        flaky(2000, 4, 1, until=6000, drop_p=0.1, seed=4),
    ),
    # No repair: the cut stays, the watchdog escalates to a structured
    # DegradedResult instead of a deadlock error.
    "degraded": FaultSchedule.of(
        link_down(3000, 1, 4), link_down(3000, 4, 1), repair=False
    ),
}

PACKETS = {"reroute": 1200, "flaky": 1200, "degraded": 600}
STAGNATION = 20_000


def run_one(name):
    schedule = SCENARIOS[name]
    # Packet ids feed the flaky drop RNG: rewind the allocator so the
    # deterministic record is a pure function of the schedule.
    flit_mod._packet_ids = itertools.count()
    spec = ScenarioSpec(topology="paper", packets=PACKETS[name], seed=1)
    platform = build_platform(spec.to_platform_config())
    result = EmulationEngine(platform, faults=schedule).run(
        stagnation_cycles=STAGNATION
    )
    report = result.faults
    record = {
        # Deterministic: guarded for exact equality below.
        "deterministic": {
            "cycles": result.cycles,
            "packets_sent": result.packets_sent,
            "packets_received": result.packets_received,
            "completed": result.completed,
            "degraded": report.degraded,
            "dropped_flits": report.dropped_flits,
            "dropped_packets": report.dropped_packets,
            "reroutes": len(report.reroutes),
            "recovery_cycles": [
                e.recovery_cycles for e in report.events
            ],
            "windows": [
                {
                    "label": w.label,
                    "cycles": w.cycles,
                    "packets_received": w.packets_received,
                    "throughput": round(w.throughput, 6),
                }
                for w in report.windows
            ],
        },
        # Informational: host wall time of the online repairs.
        "repair_wall_ms": [
            round(e.repair_wall_seconds * 1e3, 3)
            for e in report.events
            if e.repaired
        ],
    }
    return record


def check_no_drift(report, baseline_path):
    """Fail before overwriting when deterministic fields changed."""
    if not os.path.exists(baseline_path):
        return
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            committed = json.load(fh)
    except (OSError, ValueError):
        return  # unreadable record: nothing to guard against
    for name, record in report.items():
        old = committed.get(name, {}).get("deterministic")
        if old is None:
            continue
        new = record["deterministic"]
        assert new == old, (
            f"{name}: deterministic fault record drifted from the"
            f" committed {os.path.basename(baseline_path)} —"
            f" refusing to overwrite; investigate (or delete the"
            f" record to re-baseline deliberately).\n"
            f"committed: {json.dumps(old, sort_keys=True)}\n"
            f"measured:  {json.dumps(new, sort_keys=True)}"
        )


def test_fault_repair_bench():
    report = {name: run_one(name) for name in SCENARIOS}

    baseline_path = os.path.join(RESULTS_DIR, "BENCH_faults.json")
    check_no_drift(report, baseline_path)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    rows = []
    for name, record in report.items():
        det = record["deterministic"]
        walls = record["repair_wall_ms"]
        during = [
            w
            for w in det["windows"]
            if w["label"].startswith("after")
        ]
        rows.append(
            (
                name,
                det["cycles"],
                det["dropped_flits"],
                det["reroutes"],
                (
                    f"{max(walls):.2f}" if walls else "-"
                ),
                (
                    f"{min(w['throughput'] for w in during):.4f}"
                    if during
                    else "-"
                ),
                "yes" if det["degraded"] else "no",
            )
        )
    emit(
        "fault_repair",
        format_table(
            [
                "scenario",
                "cycles",
                "dropped",
                "reroutes",
                "repair ms (max)",
                "min window tput",
                "degraded",
            ],
            rows,
        ),
    )

    # Sanity floors: the repaired runs finish, the unrepaired one
    # degrades structurally.
    assert report["reroute"]["deterministic"]["completed"]
    assert report["flaky"]["deterministic"]["completed"]
    assert report["degraded"]["deterministic"]["degraded"]
    assert not report["degraded"]["deterministic"]["completed"]
