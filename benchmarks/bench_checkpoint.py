"""Checkpoint bench: snapshot/restore cost and the warm-start payoff.

Emits ``BENCH_checkpoint.json``: the wall cost of capturing and
restoring a complete warmed-up platform state, and the end-to-end
speedup of a warm-started load sweep (ramp once, fork per point)
against the cold equivalent (re-ramp every point) — with the warm
points' metrics asserted bit-identical to the cold ones, because the
whole point of resume parity is that the speedup costs nothing.

The drift guard is exactness: the ramp checkpoint's content hash and
every warm metric record are deterministic functions of the spec, so
if any of them differ from the committed record the bench **fails
loudly before overwriting it** — a silent change in captured state or
in restore semantics can never rewrite its own baseline.
"""

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, emit, format_table
from repro.checkpoint import Checkpoint, restore, snapshot
from repro.experiments import (
    ScenarioSpec,
    make_ramp_checkpoint,
    run_cold_point,
    run_warm_point,
)

pytestmark = pytest.mark.perf

SPEC = ScenarioSpec(load=0.45, packets=None, seed=5)
RAMP_CYCLES = 8000
HORIZON = 2500
LOADS = (0.2, 0.4, 0.6, 0.8)
REPS = 5


def best_of(fn, reps=REPS):
    """Best-of-N wall seconds of ``fn()`` (returns last result too)."""
    best = None
    result = None
    for _ in range(reps):
        started = time.process_time()
        result = fn()
        elapsed = time.process_time() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run_bench():
    ramp_started = time.process_time()
    checkpoint = make_ramp_checkpoint(SPEC, ramp_cycles=RAMP_CYCLES)
    ramp_wall = time.process_time() - ramp_started

    # Capture / restore / serialise costs on the warmed state.
    platform, _ = restore(checkpoint)
    snap_wall, cp2 = best_of(lambda: snapshot(platform, SPEC))
    restore_wall, _ = best_of(lambda: restore(checkpoint))
    blob = json.dumps(cp2.to_dict())
    parse_wall, _ = best_of(
        lambda: Checkpoint.from_dict(json.loads(blob))
    )

    # Warm vs cold sweep over the load grid.
    warm_wall = ramp_wall
    cold_wall = 0.0
    points = []
    for load in LOADS:
        warm = run_warm_point(checkpoint, load, HORIZON)
        cold = run_cold_point(SPEC, RAMP_CYCLES, load, HORIZON)
        assert warm.metrics == cold.metrics, (
            f"warm point load={load} diverged from its cold twin —"
            f" resume parity broken, refusing to report a speedup"
            f" bought with wrong numbers"
        )
        warm_wall += warm.wall_seconds
        cold_wall += cold.wall_seconds
        points.append(
            {
                "load": load,
                "warm_s": round(warm.wall_seconds, 4),
                "cold_s": round(cold.wall_seconds, 4),
                "metrics": {
                    "mean_latency": warm.metrics["mean_latency"],
                    "accepted_flits_per_cycle": warm.metrics[
                        "accepted_flits_per_cycle"
                    ],
                    "packets_received": warm.metrics[
                        "packets_received"
                    ],
                },
            }
        )
    speedup = cold_wall / warm_wall if warm_wall else 0.0
    assert speedup > 1.0, (
        f"warm sweep ({warm_wall:.2f}s incl. ramp) did not beat cold"
        f" ({cold_wall:.2f}s) — the fork is supposed to be cheaper"
        f" than a {RAMP_CYCLES}-cycle ramp"
    )

    return {
        "deterministic": {
            "checkpoint_hash": checkpoint.content_hash,
            "checkpoint_cycle": checkpoint.cycle,
            "points": [
                {"load": p["load"], "metrics": p["metrics"]}
                for p in points
            ],
        },
        "wall": {
            "ramp_s": round(ramp_wall, 4),
            "snapshot_s": round(snap_wall, 4),
            "restore_s": round(restore_wall, 4),
            "parse_s": round(parse_wall, 4),
            "checkpoint_bytes": len(blob),
            "warm_sweep_s": round(warm_wall, 4),
            "cold_sweep_s": round(cold_wall, 4),
            "speedup": round(speedup, 3),
        },
        "points": points,
    }


def check_no_drift(report, baseline_path):
    """Fail before overwriting when deterministic fields changed."""
    if not os.path.exists(baseline_path):
        return
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            committed = json.load(fh)
    except (OSError, ValueError):
        return  # unreadable record: nothing to guard against
    old = committed.get("deterministic")
    if old is None:
        return
    new = report["deterministic"]
    assert new == old, (
        f"deterministic checkpoint record drifted from the committed"
        f" {os.path.basename(baseline_path)} — refusing to"
        f" overwrite; investigate (or delete the record to"
        f" re-baseline deliberately).\n"
        f"committed: {json.dumps(old, sort_keys=True)}\n"
        f"measured:  {json.dumps(new, sort_keys=True)}"
    )


def test_checkpoint_bench():
    report = run_bench()

    baseline_path = os.path.join(RESULTS_DIR, "BENCH_checkpoint.json")
    check_no_drift(report, baseline_path)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    wall = report["wall"]
    rows = [
        (
            f"{p['load']:.2f}",
            f"{p['metrics']['mean_latency']:.1f}",
            f"{p['warm_s'] * 1e3:.1f}",
            f"{p['cold_s'] * 1e3:.1f}",
        )
        for p in report["points"]
    ]
    rows.append(
        (
            "total",
            "-",
            f"{wall['warm_sweep_s'] * 1e3:.1f}",
            f"{wall['cold_sweep_s'] * 1e3:.1f}",
        )
    )
    emit(
        "checkpoint",
        format_table(
            ("load", "latency", "warm ms", "cold ms"), rows
        )
        + (
            f"\nsnapshot {wall['snapshot_s'] * 1e3:.1f} ms,"
            f" restore {wall['restore_s'] * 1e3:.1f} ms,"
            f" record {wall['checkpoint_bytes'] / 1024:.0f} KiB;"
            f" warm sweep {wall['speedup']:.2f}x faster than cold"
            f" (ramp {RAMP_CYCLES} cycles paid once instead of"
            f" {len(LOADS)} times)\n"
        ),
    )
