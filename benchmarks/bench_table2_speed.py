"""T2 — speed comparison (Slide 18).

Regenerates the paper's table of simulation modes vs speed and
extrapolated run time for 16 M and 1000 M packets:

    Our Emulation        50 Mcycles/s   3.2 sec    3'20''
    SystemC (MPARM)      20 Kcycles/s   2h13'      5 days 19h
    Verilog (ModelSim)   3.2 Kcycles/s  13h53'     36 days 4h

Our measured rows are this package's three engines on the same
workload; the claims under reproduction are (a) the engine ordering
cycle-level > TLM > RTL and (b) the >= 3 orders of magnitude between
the modelled 50 MHz emulation and software simulation of any kind.
"""

import pytest

from benchmarks.conftest import emit
from repro.baselines.rtl import RtlPlatformSim
from repro.baselines.speed import (
    MODELLED_EMULATION_SPEED,
    build_packet_schedule,
    measure_engine_speeds,
    speed_report,
)
from repro.baselines.tlm import TlmPlatformSim
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.noc.routing import paper_routing
from repro.noc.topology import paper_topology

pytestmark = pytest.mark.perf


def test_table2_speed_comparison(benchmark):
    measurements = measure_engine_speeds(
        emulation_packets=2000, tlm_packets=400, rtl_packets=50
    )
    report = speed_report(measurements)
    emit("table2_speed", report.render())

    by_name = {m.name: m for m in measurements}
    emu = by_name["repro cycle-level engine"]
    tlm = by_name["repro TLM engine (SystemC-like)"]
    rtl = by_name["repro RTL engine (event-driven)"]

    # All engines computed the same kind of run correctly.
    assert emu.packets_received == 4 * 2000
    assert tlm.packets_received == 4 * 400
    assert rtl.packets_received == 4 * 50

    # (a) Abstraction ordering, as in the paper's three modes.
    assert emu.cycles_per_sec > tlm.cycles_per_sec > rtl.cycles_per_sec
    # RTL is at least an order of magnitude below the fast engine.
    assert emu.cycles_per_sec / rtl.cycles_per_sec > 3

    # (b) The modelled 50 MHz platform is >= 3 orders of magnitude
    # above every software engine (paper: 4 orders vs ModelSim).
    assert MODELLED_EMULATION_SPEED / emu.cycles_per_sec > 1e2
    assert MODELLED_EMULATION_SPEED / rtl.cycles_per_sec > 1e3

    # Paper-exact check on the published rows.
    assert report.speedup(
        "Our Emulation", "Verilog (ModelSim)"
    ) == pytest.approx(15625.0)

    # Timed kernel: the fast engine on a short run.
    def short_run():
        platform = build_platform(
            paper_platform_config(traffic="uniform", max_packets=100)
        )
        return EmulationEngine(platform).run()

    benchmark(short_run)


def test_table2_tlm_engine_kernel(benchmark):
    """Timed kernel: 256 cycles of the SystemC-like engine."""
    topo = paper_topology()
    routing = paper_routing(topo, "overlap")

    def run_tlm():
        sim = TlmPlatformSim(
            topo, routing, build_packet_schedule(packets_per_flow=50)
        )
        sim.run(256)
        return sim

    sim = benchmark(run_tlm)
    assert sim.kernel.time == 256


def test_table2_rtl_engine_kernel(benchmark):
    """Timed kernel: 64 cycles of the event-driven RTL engine."""
    topo = paper_topology()
    routing = paper_routing(topo, "overlap")

    def run_rtl():
        sim = RtlPlatformSim(
            topo, routing, build_packet_schedule(packets_per_flow=10)
        )
        sim.run(64)
        return sim

    sim = benchmark(run_rtl)
    assert sim.cycle == 64
    assert sim.sim.total_events > 0
