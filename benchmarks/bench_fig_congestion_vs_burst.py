"""F3 — congestion rate vs packets/burst (Slide 21).

Trace-driven experiment: the platform replays synthetic burst traces
whose two structural knobs are swept exactly as in the paper's figure —
**packets per burst** on the x-axis, **flits per packet** as the series
parameter ("measure of congestion according to burst's length in
flits").  The congestion rate is the network-wide fraction of blocked
switch-traversal attempts.

Expected shape: congestion increases with packets/burst and with
flits/packet, saturating for long bursts.
"""

import pytest

from benchmarks.conftest import emit, format_table
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform

pytestmark = pytest.mark.perf

PACKETS_PER_BURST = (1, 2, 4, 8, 16, 32)
FLITS_PER_PACKET = (2, 4, 8, 16)

#: Total packets per generator at each point (keeps run times even).
PACKET_BUDGET = 1024


def run_point(ppb: int, fpp: int) -> float:
    """Congestion rate for one (packets/burst, flits/packet) point."""
    n_bursts = max(1, PACKET_BUDGET // ppb)
    gap = round(ppb * fpp * 0.55 / 0.45)  # keep offered load at 45%
    platform = build_platform(
        paper_platform_config(
            traffic="trace",
            max_packets=None,
            length=fpp,
            traffic_params={
                "n_bursts": n_bursts,
                "packets_per_burst": ppb,
                "flits_per_packet": fpp,
                "gap": gap,
            },
        )
    )
    result = EmulationEngine(platform).run()
    assert result.completed
    return platform.congestion_rate()


def test_fig_congestion_vs_packets_per_burst(benchmark):
    matrix = {
        fpp: [run_point(ppb, fpp) for ppb in PACKETS_PER_BURST]
        for fpp in FLITS_PER_PACKET
    }
    rows = [
        (ppb,)
        + tuple(
            f"{matrix[fpp][i]:.4f}" for fpp in FLITS_PER_PACKET
        )
        for i, ppb in enumerate(PACKETS_PER_BURST)
    ]
    emit(
        "fig_congestion_vs_burst",
        format_table(
            ["packets/burst"]
            + [f"{fpp} flits/pkt" for fpp in FLITS_PER_PACKET],
            rows,
        ),
    )

    # Shape 1: congestion grows with packets/burst for every series
    # (allowing saturation at the top end: non-strict at the tail).
    for fpp in FLITS_PER_PACKET:
        series = matrix[fpp]
        assert series[0] < series[2] < series[-1] + 1e-9
        assert series[-1] >= series[0]

    # Shape 2: longer packets congest more at every burst length.
    for i in range(len(PACKETS_PER_BURST)):
        column = [matrix[fpp][i] for fpp in FLITS_PER_PACKET]
        assert column == sorted(column)

    # Shape 3: everything stays a rate.
    assert all(
        0.0 <= v < 1.0 for series in matrix.values() for v in series
    )

    # Timed kernel: the cheapest point.
    benchmark(
        lambda: run_point(PACKETS_PER_BURST[0], FLITS_PER_PACKET[0])
    )


def test_fig_congestion_saturates_for_long_bursts(benchmark):
    """The marginal congestion gain shrinks as bursts get longer."""

    def gains():
        a = run_point(1, 8)
        b = run_point(8, 8)
        c = run_point(64, 8)
        return a, b, c

    a, b, c = benchmark.pedantic(gains, rounds=1, iterations=1)
    first_gain = b - a
    second_gain = c - b
    assert first_gain > 0
    assert second_gain < first_gain
