"""Extension — offered load vs accepted throughput and latency.

Not a figure in the DATE 2005 slides, but the canonical NoC
characterisation the platform exists to produce quickly: sweep the
per-generator offered load across the saturation point of the shared
middle links and record accepted throughput and latency.

With the overlap route case, two 45%-class flows share each middle
link, so the network saturates when the *per-generator* load crosses
~0.5: below it accepted == offered and latency is flat; above it
accepted throughput flattens at the link ceiling and latency jumps to
its queue-bound maximum.  The paper's choice of 45% per TG (90% link
load) sits just under this knee — this bench shows the knee exists
exactly where that reading implies.

The sweep itself is declared through ``repro.experiments``: one
:func:`Sweep.grid` over the load axis, executed by the
:class:`SweepRunner` (the bench is also an in-tree example of porting
a hand-rolled loop onto the runner — the metric readout comes from the
shared ``ScenarioResult`` record instead of ad-hoc receptor walks).
"""

import pytest

from benchmarks.conftest import emit, format_table
from repro.experiments import ScenarioSpec, Sweep, SweepRunner

pytestmark = pytest.mark.perf

LOADS = (0.15, 0.30, 0.45, 0.55, 0.70, 0.90)
PACKETS = 1200
LENGTH = 8

BASE = ScenarioSpec(
    traffic="uniform",
    length=LENGTH,
    packets=PACKETS,
    routing="overlap",
    seed=7,
)

#: Generators on the paper platform (normalises accepted throughput).
N_TGS = 4


def run_loads(loads):
    results = SweepRunner().run(Sweep.grid(BASE, load=loads))
    series = {}
    for spec, result in zip(loads, results):
        metrics = result.metrics
        assert metrics["completed"]
        series[spec] = {
            "accepted": metrics["accepted_flits_per_cycle"] / N_TGS,
            "latency": metrics["mean_latency"],
            "congestion": metrics["congestion_rate"],
        }
    return series


def run_load(load: float):
    return run_loads((load,))[load]


def test_saturation_sweep(benchmark):
    series = run_loads(LOADS)
    rows = [
        (
            f"{load:.2f}",
            f"{r['accepted']:.3f}",
            f"{r['latency']:.1f}",
            f"{r['congestion']:.4f}",
        )
        for load, r in series.items()
    ]
    emit(
        "saturation_sweep",
        format_table(
            [
                "offered load/TG",
                "accepted flits/cyc/TG",
                "mean latency",
                "congestion",
            ],
            rows,
        ),
    )

    # Below the knee: the network accepts what is offered (within the
    # interval quantisation) and latency stays near zero-load.
    for load in (0.15, 0.30, 0.45):
        assert series[load]["accepted"] == pytest.approx(
            load, abs=0.035
        )
    assert series[0.30]["latency"] < series[0.45]["latency"] * 1.5

    # Above the knee: accepted throughput stops tracking offered load
    # (two flows share a middle link: ceiling ~0.5 per TG).
    assert series[0.90]["accepted"] < 0.62
    assert series[0.90]["accepted"] < series[0.90]["congestion"] + 1.0

    # Latency blows up past saturation relative to the paper point.
    assert series[0.70]["latency"] > 2 * series[0.45]["latency"]
    assert series[0.90]["latency"] >= series[0.70]["latency"] * 0.9

    benchmark(lambda: run_load(0.30))


def test_saturation_knee_position(benchmark):
    """The knee sits between 45% and 55% per generator, matching the
    two-flows-per-link reading of the paper's setup."""

    def measure():
        series = run_loads((0.45, 0.55))
        return series[0.45], series[0.55]

    below, above = benchmark.pedantic(measure, rounds=1, iterations=1)
    # 45% is still (nearly) loss-free in throughput terms...
    assert below["accepted"] == pytest.approx(0.45, abs=0.035)
    # ...while 55% already falls measurably short of its offer.
    assert above["accepted"] < 0.53
