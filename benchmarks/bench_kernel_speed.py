"""Kernel speed smoke: event-driven vs scan-reference stepping.

Runs a saturation pair (45% and 90% uniform load) + burst + low-load
quartet (< 30 s total) through both kernels and emits
``BENCH_kernel.json`` with engine cycles/sec per scenario, so every
future PR has a comparable record of the hot loop's speed.  The
reference mode reproduces the seed kernel's semantics: the
scan-everything ``Network.step_reference`` dataflow, every generator
polled every cycle (backpressure parking disabled), and completion
checks quantised to 64 cycles — the shape of the engine before the
event-driven rewrite.  (It still runs on today's optimised
switch/link/buffer code, so the speedups below *understate* the gain
over the actual seed commit; ``SEED_CPS`` pins the seed commit's
measured cycles/sec on the reference machine, and ROADMAP.md records
the full seed-to-now table.)

Two kinds of regression guard:

* ``FLOORS`` — event-vs-reference ratios per scenario, including the
  hard requirement that the event kernel is at least as fast as the
  reference everywhere (recorded as ``event_vs_reference``).
* the committed ``BENCH_kernel.json`` — if *any* scenario's event c/s
  regresses more than its tolerance against the committed record, the
  bench **fails loudly before overwriting it**, so a slow kernel can
  never silently rewrite its own baseline.
"""

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, emit, format_table
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform

pytestmark = pytest.mark.perf

SCENARIOS = {
    # The paper's Slide 19 operating point: all four flows at 45% load,
    # the two shared middle-column links at 90%, the fabric busy nearly
    # every cycle.
    "saturation": dict(traffic="uniform", load=0.45, max_packets=1500),
    # Full saturation: 90% offered load everywhere — every switch busy,
    # ~12% of traverses fully blocked, NIs starved on ~half their
    # inject attempts.  This is the blocked-component parking regime.
    "saturation90": dict(traffic="uniform", load=0.9, max_packets=1500),
    # Slide 20/22 shape: trace-driven bursts separated by long idle
    # gaps — the vast majority of emulated time is quiescent.
    "burst": dict(
        traffic="trace",
        max_packets=None,
        traffic_params={
            "n_bursts": 40,
            "packets_per_burst": 8,
            "gap": 6000,
        },
    ),
    # Light independent Poisson traffic.
    "lowload": dict(traffic="poisson", load=0.01, max_packets=250),
}

#: Speedup floors (event vs reference) per scenario.  The event
#: kernel must be at least as fast as the scan-everything reference on
#: *every* scenario — input-granular parking owes its keep even at
#: full saturation, where PR 4's whole-component parking used to run
#: within noise of (and at 90% load slightly behind) the reference.
FLOORS = {
    "saturation": 1.0,
    "saturation90": 1.0,
    "burst": 3.5,
    "lowload": 3.5,
}

#: Seed-commit engine speed on the reference machine (best-of-5,
#: ``time.process_time``; the ROADMAP Performance table's "seed c/s"
#: column).  The saturation target is 1.8x seed — the committed
#: ``BENCH_kernel.json`` records the measured ``vs_seed`` (1.8-1.9x
#: on the reference machine); the asserted floor sits lower only to
#: tolerate CI-container CPU throttling swings (up to ~20%).
SEED_CPS = {"saturation": 40_000, "saturation90": 33_400}
SEED_TARGET = 1.5

#: Every scenario is guarded against regressing more than its
#: tolerance below the committed record before that record may be
#: overwritten.  The sub-second burst/low-load runs breathe more with
#: container CPU swings than the saturation pair, hence the wider
#: band.
REGRESSION_TOLERANCES = {
    "saturation": 0.10,
    "saturation90": 0.10,
    "burst": 0.15,
    "lowload": 0.15,
}


def run_event(config):
    platform = build_platform(config)
    start = time.process_time()
    result = EmulationEngine(platform).run()
    wall = time.process_time() - start
    return platform, result.cycles, result.packets_received, wall


def run_reference(config):
    """Seed-style engine loop over the scan-everything kernel."""
    platform = build_platform(config)
    network = platform.network
    generators = platform.generators
    for generator in generators:
        # The seed engine had no backpressure parking: every generator
        # ticks its stall counter per polled cycle.
        generator._clock = None
    start = time.process_time()
    since = 0
    while True:
        now = network.cycle
        for generator in generators:
            generator.step(now)
        network.step_reference()
        since += 1
        if since >= 64:
            since = 0
            if platform.generators_done and network.is_drained:
                break
    wall = time.process_time() - start
    return platform, network.cycle, platform.packets_received, wall


def measure(name, reps=3):
    kwargs = SCENARIOS[name]
    best_event = best_ref = float("inf")
    for _ in range(reps):
        _, cycles_e, packets_e, wall_e = run_event(
            paper_platform_config(**kwargs)
        )
        best_event = min(best_event, wall_e)
    for _ in range(max(1, reps - 1)):
        _, cycles_r, packets_r, wall_r = run_reference(
            paper_platform_config(**kwargs)
        )
        best_ref = min(best_ref, wall_r)
    # Both kernels must run the identical emulation; the reference
    # loop's completion check is quantised to 64 cycles (as the seed
    # engine's was), so it may idle up to one interval past the finish.
    assert 0 <= cycles_r - cycles_e < 64, (name, cycles_e, cycles_r)
    assert packets_e == packets_r, (name, packets_e, packets_r)
    record = {
        "cycles": cycles_e,
        "packets_received": packets_e,
        "event_cps": round(cycles_e / best_event),
        "reference_cps": round(cycles_r / best_ref),
        "event_vs_reference": round((best_ref / best_event), 2),
    }
    if name in SEED_CPS:
        record["vs_seed"] = round(record["event_cps"] / SEED_CPS[name], 2)
    return record


def check_no_regression(report, baseline_path):
    """Fail before overwriting when any scenario regresses too far."""
    if not os.path.exists(baseline_path):
        return
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            committed = json.load(fh)
    except (OSError, ValueError):
        return  # unreadable record: nothing to guard against
    for name, tolerance in REGRESSION_TOLERANCES.items():
        old = committed.get(name, {}).get("event_cps")
        if not old:
            continue
        new = report[name]["event_cps"]
        floor = old * (1.0 - tolerance)
        assert new >= floor, (
            f"{name}: event kernel regressed to {new:,} c/s, more than"
            f" {tolerance:.0%} below the committed"
            f" {old:,} c/s — refusing to overwrite"
            f" {os.path.basename(baseline_path)}; investigate (or"
            f" delete the record to re-baseline deliberately)"
        )


def test_kernel_speed_smoke():
    report = {name: measure(name) for name in SCENARIOS}

    baseline_path = os.path.join(RESULTS_DIR, "BENCH_kernel.json")
    check_no_regression(report, baseline_path)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)

    rows = [
        (
            name,
            f"{r['event_cps']:,}",
            f"{r['reference_cps']:,}",
            f"{r['event_vs_reference']:.2f}x",
            f"{r['vs_seed']:.2f}x" if "vs_seed" in r else "-",
            r["cycles"],
        )
        for name, r in report.items()
    ]
    emit(
        "kernel_speed",
        format_table(
            [
                "scenario",
                "event c/s",
                "reference c/s",
                "vs reference",
                "vs seed",
                "cycles",
            ],
            rows,
        ),
    )

    for name, floor in FLOORS.items():
        ratio = report[name]["event_vs_reference"]
        assert ratio >= floor, (
            f"{name}: event kernel only {ratio}x the reference"
            f" (floor {floor}x)"
        )
    for name, seed_cps in SEED_CPS.items():
        vs_seed = report[name]["vs_seed"]
        assert vs_seed >= SEED_TARGET, (
            f"{name}: event kernel at {vs_seed}x the seed commit's"
            f" {seed_cps:,} c/s (target {SEED_TARGET}x); saturation"
            f" parking is not paying for itself"
        )
