"""Kernel speed smoke: event-driven vs scan-reference stepping.

Runs a small saturation + burst + low-load trio (< 30 s total) through
both kernels and emits ``BENCH_kernel.json`` with engine cycles/sec per
scenario, so every future PR has a comparable record of the hot loop's
speed.  The reference mode reproduces the seed kernel's semantics: the
scan-everything ``Network.step_reference`` dataflow, every generator
polled every cycle, and completion checks quantised to 64 cycles — the
shape of the engine before the event-driven rewrite.  (It still runs on
today's optimised switch/link/buffer code, so the speedups below
*understate* the gain over the actual seed commit; ROADMAP.md records
the measured seed-to-now numbers.)

The asserted floors are deliberately below the typically measured
ratios (~10x burst, ~7x low-load, ~1.1x saturation) to stay robust to
CI machine noise.
"""

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, emit, format_table
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform

pytestmark = pytest.mark.perf

SCENARIOS = {
    # The paper's Slide 19 operating point: all four flows at 45% load,
    # the fabric busy nearly every cycle.
    "saturation": dict(traffic="uniform", load=0.45, max_packets=1500),
    # Slide 20/22 shape: trace-driven bursts separated by long idle
    # gaps — the vast majority of emulated time is quiescent.
    "burst": dict(
        traffic="trace",
        max_packets=None,
        traffic_params={
            "n_bursts": 40,
            "packets_per_burst": 8,
            "gap": 6000,
        },
    ),
    # Light independent Poisson traffic.
    "lowload": dict(traffic="poisson", load=0.01, max_packets=250),
}

#: Conservative speedup floors (event vs reference) per scenario.
FLOORS = {"saturation": 0.85, "burst": 4.0, "lowload": 4.0}


def run_event(config):
    platform = build_platform(config)
    start = time.process_time()
    result = EmulationEngine(platform).run()
    wall = time.process_time() - start
    return platform, result.cycles, result.packets_received, wall


def run_reference(config):
    """Seed-style engine loop over the scan-everything kernel."""
    platform = build_platform(config)
    network = platform.network
    generators = platform.generators
    start = time.process_time()
    since = 0
    while True:
        now = network.cycle
        for generator in generators:
            generator.step(now)
        network.step_reference()
        since += 1
        if since >= 64:
            since = 0
            if platform.generators_done and network.is_drained:
                break
    wall = time.process_time() - start
    return platform, network.cycle, platform.packets_received, wall


def measure(name, reps=3):
    kwargs = SCENARIOS[name]
    best_event = best_ref = float("inf")
    for _ in range(reps):
        _, cycles_e, packets_e, wall_e = run_event(
            paper_platform_config(**kwargs)
        )
        best_event = min(best_event, wall_e)
    for _ in range(max(1, reps - 1)):
        _, cycles_r, packets_r, wall_r = run_reference(
            paper_platform_config(**kwargs)
        )
        best_ref = min(best_ref, wall_r)
    # Both kernels must run the identical emulation; the reference
    # loop's completion check is quantised to 64 cycles (as the seed
    # engine's was), so it may idle up to one interval past the finish.
    assert 0 <= cycles_r - cycles_e < 64, (name, cycles_e, cycles_r)
    assert packets_e == packets_r, (name, packets_e, packets_r)
    return {
        "cycles": cycles_e,
        "packets_received": packets_e,
        "event_cps": round(cycles_e / best_event),
        "reference_cps": round(cycles_r / best_ref),
        "speedup": round((best_ref / best_event), 2),
    }


def test_kernel_speed_smoke():
    report = {name: measure(name) for name in SCENARIOS}

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_kernel.json"),
        "w",
        encoding="utf-8",
    ) as fh:
        json.dump(report, fh, indent=2)

    rows = [
        (
            name,
            f"{r['event_cps']:,}",
            f"{r['reference_cps']:,}",
            f"{r['speedup']:.2f}x",
            r["cycles"],
        )
        for name, r in report.items()
    ]
    emit(
        "kernel_speed",
        format_table(
            ["scenario", "event c/s", "reference c/s", "speedup", "cycles"],
            rows,
        ),
    )

    for name, floor in FLOORS.items():
        assert report[name]["speedup"] >= floor, (
            f"{name}: event kernel only {report[name]['speedup']}x the"
            f" reference (floor {floor}x)"
        )
