"""Ablation — switch buffer depth (the Slide 6 "size of buffers").

Sweeps the per-input FIFO depth on the paper's overlap setup, burst
traffic.  Expected: deeper buffers absorb bursts (lower congestion
rate), with diminishing returns once the buffer covers a whole burst —
and each extra flit of depth costs slices in the FPGA, so the bench
also prices every point via the synthesis model (the trade-off the
platform exists to explore without re-synthesis... of the *real*
hardware; the model here re-prices instantly).

The depth axis is a one-line :func:`Sweep.grid` through the
experiment runner; congestion/latency come from the shared
``ScenarioResult`` record and the FPGA price from synthesising each
spec's elaborated config (one synthesis per depth — depth is a
hardware parameter).
"""

import pytest

from benchmarks.conftest import emit, format_table
from repro.experiments import ScenarioSpec, Sweep, SweepRunner
from repro.fpga.synthesis import synthesize

pytestmark = pytest.mark.perf

DEPTHS = (1, 2, 4, 8, 16)
PACKETS = 1000

BASE = ScenarioSpec(traffic="burst", packets=PACKETS, seed=4)


def run_depths(depths):
    results = SweepRunner().run(Sweep.grid(BASE, buffer_depth=depths))
    out = {}
    for depth, result in zip(depths, results):
        metrics = result.metrics
        assert metrics["completed"]
        synth = synthesize(result.spec.to_platform_config())
        out[depth] = {
            "congestion": metrics["congestion_rate"],
            "latency": metrics["mean_latency"],
            "cycles": metrics["cycles"],
            "slices": synth.total_slices,
        }
    return out


def run_depth(depth: int):
    return run_depths((depth,))[depth]


def test_ablation_buffer_depth(benchmark):
    results = run_depths(DEPTHS)
    rows = [
        (
            depth,
            f"{r['congestion']:.4f}",
            f"{r['latency']:.1f}",
            r["cycles"],
            r["slices"],
        )
        for depth, r in results.items()
    ]
    emit(
        "ablation_buffers",
        format_table(
            [
                "buffer depth",
                "congestion",
                "mean latency",
                "cycles",
                "platform slices",
            ],
            rows,
        ),
    )

    # Deeper buffers strictly cost more FPGA area...
    slices = [results[d]["slices"] for d in DEPTHS]
    assert slices == sorted(slices)
    assert slices[0] < slices[-1]
    # ...and reduce blocking under burst traffic.
    assert (
        results[DEPTHS[-1]]["congestion"]
        < results[DEPTHS[0]]["congestion"]
    )
    # Diminishing returns: the last doubling buys less congestion
    # relief than the first.
    first_relief = (
        results[DEPTHS[0]]["congestion"]
        - results[DEPTHS[1]]["congestion"]
    )
    last_relief = (
        results[DEPTHS[-2]]["congestion"]
        - results[DEPTHS[-1]]["congestion"]
    )
    assert last_relief < first_relief

    benchmark(lambda: run_depth(4))
