"""Ablation — switch buffer depth (the Slide 6 "size of buffers").

Sweeps the per-input FIFO depth on the paper's overlap setup, burst
traffic.  Expected: deeper buffers absorb bursts (lower congestion
rate), with diminishing returns once the buffer covers a whole burst —
and each extra flit of depth costs slices in the FPGA, so the bench
also prices every point via the synthesis model (the trade-off the
platform exists to explore without re-synthesis... of the *real*
hardware; the model here re-prices instantly).
"""

import pytest

from benchmarks.conftest import emit, format_table
from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.platform import build_platform
from repro.fpga.synthesis import synthesize

DEPTHS = (1, 2, 4, 8, 16)
PACKETS = 1000


def run_depth(depth: int):
    cfg = paper_platform_config(
        traffic="burst", max_packets=PACKETS, buffer_depth=depth,
        seed=4,
    )
    platform = build_platform(cfg)
    result = EmulationEngine(platform).run()
    assert result.completed
    synth = synthesize(cfg)
    return {
        "congestion": platform.congestion_rate(),
        "latency": platform.mean_latency(),
        "cycles": result.cycles,
        "slices": synth.total_slices,
    }


def test_ablation_buffer_depth(benchmark):
    results = {depth: run_depth(depth) for depth in DEPTHS}
    rows = [
        (
            depth,
            f"{r['congestion']:.4f}",
            f"{r['latency']:.1f}",
            r["cycles"],
            r["slices"],
        )
        for depth, r in results.items()
    ]
    emit(
        "ablation_buffers",
        format_table(
            [
                "buffer depth",
                "congestion",
                "mean latency",
                "cycles",
                "platform slices",
            ],
            rows,
        ),
    )

    # Deeper buffers strictly cost more FPGA area...
    slices = [results[d]["slices"] for d in DEPTHS]
    assert slices == sorted(slices)
    assert slices[0] < slices[-1]
    # ...and reduce blocking under burst traffic.
    assert (
        results[DEPTHS[-1]]["congestion"]
        < results[DEPTHS[0]]["congestion"]
    )
    # Diminishing returns: the last doubling buys less congestion
    # relief than the first.
    first_relief = (
        results[DEPTHS[0]]["congestion"]
        - results[DEPTHS[1]]["congestion"]
    )
    last_relief = (
        results[DEPTHS[-2]]["congestion"]
        - results[DEPTHS[-1]]["congestion"]
    )
    assert last_relief < first_relief

    benchmark(lambda: run_depth(4))
