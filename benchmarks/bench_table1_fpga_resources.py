"""T1 — FPGA resource report (Slide 17).

Regenerates the paper's synthesis table for the 4-TG / 4-TR / 6-switch
platform and checks every row against the published numbers:

    TG stochastic    719 slices   7.8%
    TG trace driven  652 slices   7.0%
    TR stochastic    371 slices   4.0%
    TR trace driven  690 slices   7.4%
    Control module    18 slices   0.2%
    whole platform  7387 slices  80%   (=> XC2VP20, 9280 slices)

The timed kernel is the synthesis model itself (platform cost +
part selection + timing), i.e. flow step 2.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.config import paper_platform_config
from repro.fpga.costs import control_cost, tg_cost, tr_cost
from repro.fpga.synthesis import synthesize

pytestmark = pytest.mark.perf

#: (device row, paper slices, paper % of the FPGA)
PAPER_TABLE1 = [
    ("TG stochastic", 719, 7.8),
    ("TG trace driven", 652, 7.0),
    ("TR stochastic", 371, 4.0),
    ("TR trace driven", 690, 7.4),
    ("Control module", 18, 0.2),
]

PAPER_PLATFORM_SLICES = 7387
PAPER_UTILISATION = 0.80


def _stochastic_config():
    return paper_platform_config(
        traffic="uniform", receptor_kind="stochastic"
    )


def _trace_config():
    return paper_platform_config(
        traffic="trace",
        max_packets=None,
        receptor_kind="tracedriven",
    )


def test_table1_per_device_rows(benchmark):
    """Each device type reproduces its Table 1 slice count exactly."""
    report_stoch = synthesize(_stochastic_config())
    report_trace = synthesize(_trace_config())

    measured = {
        "TG stochastic": tg_cost("uniform").slices,
        "TG trace driven": tg_cost("trace").slices,
        "TR stochastic": tr_cost("stochastic").slices,
        "TR trace driven": tr_cost("tracedriven").slices,
        "Control module": control_cost().slices,
    }
    part = report_stoch.part
    lines = [
        "Table 1 reproduction (per device instance, XC2VP20):",
        f"{'Device':<18}{'paper':>8}{'ours':>8}{'paper %':>9}"
        f"{'ours %':>9}",
    ]
    for name, paper_slices, paper_pct in PAPER_TABLE1:
        ours = measured[name]
        ours_pct = 100.0 * ours / part.slices
        lines.append(
            f"{name:<18}{paper_slices:>8}{ours:>8}"
            f"{paper_pct:>8.1f}%{ours_pct:>8.1f}%"
        )
        assert ours == paper_slices
        assert ours_pct == pytest.approx(paper_pct, abs=0.1)
    lines.append("")
    lines.append(report_stoch.render())
    lines.append("")
    lines.append(report_trace.render())
    emit("table1_fpga_resources", "\n".join(lines))

    # Timed kernel: one full synthesis-model run (flow step 2).
    benchmark(lambda: synthesize(_stochastic_config()))


def test_table1_whole_platform(benchmark):
    """Whole stochastic platform: 7387 slices, ~80% of the XC2VP20."""
    report = benchmark(lambda: synthesize(_stochastic_config()))
    assert report.part.name == "XC2VP20"
    assert report.total_slices == pytest.approx(
        PAPER_PLATFORM_SLICES, rel=0.01
    )
    assert report.utilisation == pytest.approx(
        PAPER_UTILISATION, abs=0.01
    )
    assert report.fits
    assert report.clock_hz == pytest.approx(50e6)


def test_table1_capacity_planning(benchmark):
    """Conclusion claim: larger parts host 'tens of switches'."""
    rows = []

    def plan():
        rows.clear()
        for grid in ((3, 2), (4, 4), (6, 6), (8, 8)):
            cfg = paper_platform_config(receptor_kind="stochastic")
            cfg.topology = f"mesh:{grid[0]}:{grid[1]}"
            cfg.routing = "shortest"
            cfg.name = f"mesh{grid[0]}x{grid[1]}"
            report = synthesize(cfg, auto_part=True)
            rows.append(
                (
                    cfg.name,
                    grid[0] * grid[1],
                    report.total_slices,
                    report.part.name,
                    f"{report.utilisation:.0%}",
                )
            )
        return rows

    benchmark(plan)
    from benchmarks.conftest import format_table

    emit(
        "table1_capacity_planning",
        format_table(
            ["platform", "switches", "slices", "part", "util"], rows
        ),
    )
    # 36 and 64 switches fit somewhere in the family.
    assert all(r[3].startswith("XC2VP") for r in rows)
    big = dict((r[1], r[3]) for r in rows)
    assert big[36] != "XC2VP20"  # needs a larger family member
