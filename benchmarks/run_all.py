"""Run every perf-marked bench and collect the ``BENCH_*.json`` records.

The performance trajectory of the repo lives in the ``BENCH_*.json``
regression records under ``benchmarks/results/``; each perf-marked
bench refreshes its own record (and fails before overwriting it on a
regression).  This driver makes the whole trajectory reproducible with
a single command::

    PYTHONPATH=src python benchmarks/run_all.py            # lint + run + collect
    PYTHONPATH=src python benchmarks/run_all.py --list     # show the plan
    PYTHONPATH=src python benchmarks/run_all.py --only kernel,batch
    PYTHONPATH=src python benchmarks/run_all.py --collect-only
    PYTHONPATH=src python benchmarks/run_all.py --lint-only

It is deliberately a thin wrapper over ``pytest -m perf``: the benches
keep owning their scenarios, floors and guards; this driver only
selects them, runs them in one pytest session and prints the combined
record summary afterwards.

Before any bench runs, the driver runs the static analyzer (``repro
lint src/repro --format json``, see ``repro.analysis``) and aborts on
unsuppressed findings — a perf PR that breaks a determinism or
checkpoint-coverage invariant fails here in seconds instead of after
the full bench session.  ``--skip-lint`` bypasses the gate;
``--lint-only`` runs just it and prints the JSON report.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
RESULTS_DIR = os.path.join(BENCH_DIR, "results")


def discover_benches(only: Optional[List[str]] = None) -> List[str]:
    """Paths of the ``bench_*.py`` files, optionally filtered.

    ``only`` holds substrings matched against the bench file name
    (``kernel`` selects ``bench_kernel_speed.py``).  Unknown filters
    raise so a typo cannot silently skip a bench.
    """
    paths = sorted(glob.glob(os.path.join(BENCH_DIR, "bench_*.py")))
    if only is None:
        return paths
    selected: List[str] = []
    for token in only:
        matches = [
            p for p in paths if token in os.path.basename(p)
        ]
        if not matches:
            known = ", ".join(os.path.basename(p) for p in paths)
            raise SystemExit(
                f"--only {token!r} matches no bench file (have: {known})"
            )
        for match in matches:
            if match not in selected:
                selected.append(match)
    return selected


def collect_records() -> Dict[str, dict]:
    """Load every ``BENCH_*.json`` record under benchmarks/results/."""
    records: Dict[str, dict] = {}
    for path in sorted(
        glob.glob(os.path.join(RESULTS_DIR, "BENCH_*.json"))
    ):
        name = os.path.basename(path)
        try:
            with open(path, encoding="utf-8") as fh:
                records[name] = json.load(fh)
        except (OSError, ValueError) as exc:
            records[name] = {"error": str(exc)}
    return records


def render_summary(records: Dict[str, dict]) -> str:
    """One flat line per (record, scenario, headline metric)."""
    lines = ["collected perf records:"]
    if not records:
        lines.append("  (none found — did the benches run?)")
    for name, record in records.items():
        if "error" in record:
            lines.append(f"  {name}: unreadable ({record['error']})")
            continue
        lines.append(f"  {name}:")
        for scenario, fields in record.items():
            if not isinstance(fields, dict):
                lines.append(f"    {scenario}: {fields}")
                continue
            headline = ", ".join(
                f"{key}={value}"
                for key, value in fields.items()
                if isinstance(value, (int, float))
            )
            lines.append(f"    {scenario}: {headline}")
    return "\n".join(lines)


def lint_gate() -> int:
    """``repro lint src/repro --format json``: 0 clean, 1 findings."""
    src_root = os.path.join(os.path.dirname(BENCH_DIR), "src")
    try:
        from repro.analysis import render_json, run_lint
    except ImportError:
        sys.path.insert(0, src_root)
        from repro.analysis import render_json, run_lint

    result = run_lint([os.path.join(src_root, "repro")])
    print(render_json(result))
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "run every perf-marked bench and collect the BENCH_*.json"
            " regression records"
        )
    )
    parser.add_argument(
        "--only",
        default=None,
        help=(
            "comma-separated bench name filters, e.g."
            " 'kernel,batch' (default: all bench_*.py files)"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the selected bench files and exit",
    )
    parser.add_argument(
        "--collect-only",
        action="store_true",
        help="skip running; just summarise the committed records",
    )
    parser.add_argument(
        "--lint-only",
        action="store_true",
        help="run only the static-analysis gate and print its JSON report",
    )
    parser.add_argument(
        "--skip-lint",
        action="store_true",
        help="skip the static-analysis gate before the benches",
    )
    parser.add_argument(
        "--pytest-args",
        default="",
        help="extra arguments forwarded to pytest (one string)",
    )
    args = parser.parse_args(argv)

    only = (
        [t.strip() for t in args.only.split(",") if t.strip()]
        if args.only
        else None
    )
    benches = discover_benches(only)
    if args.list:
        for path in benches:
            print(os.path.basename(path))
        return 0

    if args.lint_only:
        return lint_gate()
    if not args.collect_only and not args.skip_lint:
        lint_exit = lint_gate()
        if lint_exit:
            print(
                "static-analysis gate failed; fix the findings (or"
                " re-run with --skip-lint) before benching",
                file=sys.stderr,
            )
            return lint_exit

    exit_code = 0
    if not args.collect_only:
        # The benches import ``benchmarks.conftest``; running this
        # driver as a script puts benchmarks/ (not the repo root) on
        # sys.path, so add the root the way ``python -m pytest`` from
        # the repo root would.
        root = os.path.dirname(BENCH_DIR)
        if root not in sys.path:
            sys.path.insert(0, root)
        import shlex

        import pytest

        # User-supplied options come after the driver's, so e.g. a
        # custom -m expression overrides the default "perf".
        extra = shlex.split(args.pytest_args) if args.pytest_args else []
        pytest_argv = ["-m", "perf", "-s", *extra, *benches]
        exit_code = int(pytest.main(pytest_argv))

    print()
    print(render_summary(collect_records()))
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
