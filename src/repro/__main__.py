"""``python -m repro`` entry point.

Subcommands: ``run`` (one emulation), ``synth`` (FPGA utilisation),
``speed`` (engine comparison), ``sweep`` (packets-per-burst series)
and ``batch`` (declarative scenario sweeps via ``repro.experiments``).
"""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
