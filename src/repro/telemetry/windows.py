"""Windowed time-series metrics from boundary differencing.

The paper's monitor "displays information extracted from NoC emulation
components" *while the emulation runs* — but the only mid-run hook the
reproduction had (``Network.sample_buffers``) samples every buffer
every cycle, which disables idle fast-forward and un-optimises the run
being watched.  :class:`WindowedMetrics` takes the opposite approach:
every counter it reports is one the components already maintain under
the PR 4/5 settle-on-read discipline (switch blocked/credit stalls, NI
stalls, generator backpressure, link/NI/RX flit counts), so a window's
metrics are the *difference of two counter snapshots taken at the
window boundaries*.  Parked inputs, parked NIs and idle fast-forward
stay fully enabled: nothing is sampled per cycle, and the snapshot at
a boundary settles every parked stretch through the previous cycle by
construction (the settle-on-read properties do exactly that).

Windows are aligned to the cycle :meth:`WindowedMetrics.begin` ran at:
window *k* covers cycles ``[begin + k*w, begin + (k+1)*w)``.  The
driver calls :meth:`advance` at the top of each cycle; counters are
settled through the previous cycle at that point, so a window closed
at its boundary ``B`` covers exactly the emulated cycles ``start ..
B-1``.  An idle fast-forward jump lands on a window boundary (see
:meth:`ff_landing`) and may cross many boundaries at once: the first
window closes from one real snapshot and every fully-skipped window is
emitted as a zero-delta record in O(1) — the jump requires a quiescent
fabric, during which no counter can change and nothing is buffered,
parked or in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Tuple

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class WindowRecord:
    """Metrics of one window: deltas over ``[start, end)`` plus an
    instantaneous occupancy reading at the ``end`` boundary.

    All delta fields are counter differences between the window's two
    boundary snapshots; ``switch_buffered``, ``parked_inputs`` and
    ``in_flight_flits`` are the state *at* the closing boundary (i.e.
    after cycle ``end - 1``).  Records are deterministic — no
    wall-clock — and compare bit-identical across the event and
    reference kernels.
    """

    index: int
    start: int
    end: int
    # Network-wide deltas.
    injected_flits: int
    injected_packets: int
    ejected_flits: int
    ejected_packets: int
    forwarded_flits: int
    blocked_flit_cycles: int
    credit_stall_cycles: int
    ni_stall_cycles: int
    backpressure_cycles: int
    fault_dropped_flits: int
    # Per-component deltas (switch index order; links keyed by name,
    # zero-delta links omitted).
    switch_forwarded: Tuple[int, ...]
    switch_blocked: Tuple[int, ...]
    switch_credit_stalls: Tuple[int, ...]
    link_flits: Mapping[str, int] = field(default_factory=dict)
    # Instantaneous state at the closing boundary.
    switch_buffered: Tuple[int, ...] = ()
    parked_inputs: int = 0
    in_flight_flits: int = 0

    @property
    def cycles(self) -> int:
        return self.end - self.start

    def link_utilization(self, name: str) -> float:
        """Fraction of this window's cycles ``name`` carried a flit."""
        cycles = self.cycles
        if cycles <= 0:
            return 0.0
        return min(1.0, self.link_flits.get(name, 0) / cycles)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (sorted link keys, lists for tuples)."""
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "injected_flits": self.injected_flits,
            "injected_packets": self.injected_packets,
            "ejected_flits": self.ejected_flits,
            "ejected_packets": self.ejected_packets,
            "forwarded_flits": self.forwarded_flits,
            "blocked_flit_cycles": self.blocked_flit_cycles,
            "credit_stall_cycles": self.credit_stall_cycles,
            "ni_stall_cycles": self.ni_stall_cycles,
            "backpressure_cycles": self.backpressure_cycles,
            "fault_dropped_flits": self.fault_dropped_flits,
            "switch_forwarded": list(self.switch_forwarded),
            "switch_blocked": list(self.switch_blocked),
            "switch_credit_stalls": list(self.switch_credit_stalls),
            "link_flits": {
                name: self.link_flits[name]
                for name in sorted(self.link_flits)
            },
            "switch_buffered": list(self.switch_buffered),
            "parked_inputs": self.parked_inputs,
            "in_flight_flits": self.in_flight_flits,
        }


class WindowedMetrics:
    """Collects a :class:`WindowRecord` time series from a platform.

    Parameters
    ----------
    platform:
        The :class:`~repro.core.platform.EmulationPlatform` to observe.
    window_cycles:
        Window length in emulated cycles (>= 1).

    The driving loop calls :meth:`begin` once at the start cycle and
    :meth:`advance` at the top of every cycle at or past the returned
    boundary (the engine keeps the next boundary in a register and
    compares once per cycle, exactly like its fault-event check); a
    final :meth:`finish` closes the partial last window.  Between
    boundary crossings the collector costs *nothing* — no per-cycle
    callback, no sampling.
    """

    def __init__(self, platform, window_cycles: int) -> None:
        if not isinstance(window_cycles, int) or isinstance(
            window_cycles, bool
        ):
            raise ConfigError(
                f"window_cycles must be an int, got"
                f" {type(window_cycles).__name__}"
            )
        if window_cycles < 1:
            raise ConfigError(
                f"window_cycles must be >= 1, got {window_cycles}"
            )
        self.platform = platform  # repro: allow[state-coverage] platform reference; re-resolved against the restored platform
        self.window_cycles = window_cycles  # repro: allow[state-coverage] constructor argument re-supplied by restore
        self.records: List[WindowRecord] = []
        network = platform.network
        self._network = network  # repro: allow[state-coverage] component cache; re-resolved against the restored platform
        self._switches = network.switches  # repro: allow[state-coverage] component cache; re-resolved against the restored platform
        self._nis = network.nis  # repro: allow[state-coverage] component cache; re-resolved against the restored platform
        self._rx = network.rx  # repro: allow[state-coverage] component cache; re-resolved against the restored platform
        self._links = network.links  # repro: allow[state-coverage] component cache; re-resolved against the restored platform
        self._generators = platform.generators  # repro: allow[state-coverage] component cache; re-resolved against the restored platform
        self._started = False
        self._start = 0
        self._boundary = 0
        self._base: tuple = ()
        n_sw = len(self._switches)
        self._zero_sw = (0,) * n_sw  # repro: allow[state-coverage] constant zero template built in __init__
        # Template for the zero-delta records of fully-skipped windows:
        # only index/start/end differ, so each one is a single
        # ``replace`` call.
        self._zero_record = WindowRecord(  # repro: allow[state-coverage] constant zero template built in __init__
            index=0,
            start=0,
            end=0,
            injected_flits=0,
            injected_packets=0,
            ejected_flits=0,
            ejected_packets=0,
            forwarded_flits=0,
            blocked_flit_cycles=0,
            credit_stall_cycles=0,
            ni_stall_cycles=0,
            backpressure_cycles=0,
            fault_dropped_flits=0,
            switch_forwarded=self._zero_sw,
            switch_blocked=self._zero_sw,
            switch_credit_stalls=self._zero_sw,
            link_flits={},
            switch_buffered=self._zero_sw,
            parked_inputs=0,
            in_flight_flits=0,
        )

    # ------------------------------------------------------------------
    # Driving interface
    # ------------------------------------------------------------------
    def begin(self, now: int) -> int:
        """Open the first window at ``now``; return its boundary.

        Idempotent: a collector handed to a second engine run keeps
        accumulating into its current window.
        """
        if self._started:
            return self._boundary
        self._started = True
        self._start = now
        self._boundary = now + self.window_cycles
        self._base = self._snapshot()
        return self._boundary

    def advance(self, now: int) -> int:
        """Close every window whose boundary is ``<= now``; return the
        next boundary.

        Called at the top of cycle ``now`` (before the cycle runs):
        every counter is settled through ``now - 1``, so the closed
        windows cover exactly their emulated cycles.  A call that
        crosses several boundaries at once can only come from an idle
        fast-forward jump over a quiescent fabric, so the first window
        closes from one real snapshot and the rest are zero-delta.
        """
        boundary = self._boundary
        if now < boundary:
            return boundary
        w = self.window_cycles
        snap = self._snapshot()
        self.records.append(
            self._close(self._start, boundary, snap)
        )
        self._start = boundary
        boundary += w
        if boundary <= now:
            # Fast-forwarded stretch: nothing ran, nothing changed.
            records = self.records
            template = self._zero_record
            while boundary <= now:
                records.append(
                    replace(
                        template,
                        index=len(records),
                        start=self._start,
                        end=boundary,
                    )
                )
                self._start = boundary
                boundary += w
        self._base = snap
        self._boundary = boundary
        return boundary

    def finish(self, now: int) -> None:
        """Close out the series at ``now`` (end of run).

        Closes any whole windows still pending, then emits the partial
        window ``[start, now)`` if the run ended mid-window.
        """
        if not self._started:
            return
        if now >= self._boundary:
            self.advance(now)
        if now > self._start:
            snap = self._snapshot()
            self.records.append(self._close(self._start, now, snap))
            self._base = snap
            self._start = now
            self._boundary = now + self.window_cycles

    def ff_landing(self, target: int) -> int:
        """Clamp an idle fast-forward target onto a window boundary.

        Returns ``target`` unchanged when the jump stays inside the
        current window; otherwise the last boundary ``<= target``, so
        the skipped windows are emitted by the :meth:`advance` at the
        landing cycle (the remaining sub-window idle stretch is jumped
        by the next fast-forward, now boundary-free).
        """
        boundary = self._boundary
        if target <= boundary:
            return target
        w = self.window_cycles
        return boundary + (target - boundary) // w * w

    # ------------------------------------------------------------------
    # Snapshot + differencing
    # ------------------------------------------------------------------
    def _snapshot(self) -> tuple:
        """One settled reading of every counter the windows report."""
        inj_f = inj_p = stalls = 0
        for ni in self._nis:
            f, p, s = ni.stats_snapshot()
            inj_f += f
            inj_p += p
            stalls += s
        ej_f = ej_p = 0
        for rx in self._rx:
            f, p = rx.stats_snapshot()
            ej_f += f
            ej_p += p
        sw_stats = tuple(
            sw.stats_snapshot() for sw in self._switches
        )
        link_stats = tuple(
            link.stats_snapshot() for link in self._links
        )
        backpressure = sum(
            g.backpressure_cycles for g in self._generators
        )
        return (
            inj_f,
            inj_p,
            ej_f,
            ej_p,
            stalls,
            backpressure,
            sw_stats,
            link_stats,
        )

    def _close(self, start: int, end: int, snap: tuple) -> WindowRecord:
        """Build the record for ``[start, end)`` from ``snap - base``."""
        base = self._base
        sw_stats = snap[6]
        sw_base = base[6]
        n = len(sw_stats)
        fwd = [0] * n
        blocked = [0] * n
        credit = [0] * n
        for i in range(n):
            f1, b1, c1 = sw_stats[i]
            f0, b0, c0 = sw_base[i]
            fwd[i] = f1 - f0
            blocked[i] = b1 - b0
            credit[i] = c1 - c0
        link_flits: Dict[str, int] = {}
        dropped = 0
        links = self._links
        link_base = base[7]
        for i, (carried, drops) in enumerate(snap[7]):
            carried0, drops0 = link_base[i]
            delta = carried - carried0
            if delta:
                link_flits[links[i].name] = delta
            dropped += drops - drops0
        network = self._network
        parked = sum(sw._parked_count for sw in self._switches)
        for ni in self._nis:
            # Pure-state starvation test rather than the kernel's
            # ``_parked`` flag: the reference kernel never parks NIs,
            # and parity requires identical records from both.
            if ni._flits and ni._credits <= 0:
                parked += 1
        return WindowRecord(
            index=len(self.records),
            start=start,
            end=end,
            injected_flits=snap[0] - base[0],
            injected_packets=snap[1] - base[1],
            ejected_flits=snap[2] - base[2],
            ejected_packets=snap[3] - base[3],
            forwarded_flits=sum(fwd),
            blocked_flit_cycles=sum(blocked),
            credit_stall_cycles=sum(credit),
            ni_stall_cycles=snap[4] - base[4],
            backpressure_cycles=snap[5] - base[5],
            fault_dropped_flits=dropped,
            switch_forwarded=tuple(fwd),
            switch_blocked=tuple(blocked),
            switch_credit_stalls=tuple(credit),
            link_flits=link_flits,
            switch_buffered=tuple(
                sw._buffered for sw in self._switches
            ),
            parked_inputs=parked,
            in_flight_flits=network._in_flight_flits,
        )


def format_window_table(
    records: List[WindowRecord], limit: int = 12
) -> str:
    """Render a window series as an aligned text table.

    Shows the first and last rows when the series is longer than
    ``limit``, with an ellipsis row in between.
    """
    headers = (
        "win",
        "cycles",
        "inj",
        "ej",
        "blocked",
        "credit",
        "parked",
        "in-flight",
    )
    if len(records) > limit:
        head = limit // 2
        shown: List[Any] = list(records[:head])
        shown.append(None)
        shown.extend(records[-(limit - head):])
    else:
        shown = list(records)
    rows: List[Tuple[str, ...]] = []
    for rec in shown:
        if rec is None:
            rows.append(("...",) + ("",) * (len(headers) - 1))
            continue
        rows.append(
            (
                str(rec.index),
                f"{rec.start}-{rec.end}",
                str(rec.injected_flits),
                str(rec.ejected_flits),
                str(rec.blocked_flit_cycles),
                str(rec.credit_stall_cycles),
                str(rec.parked_inputs),
                str(rec.in_flight_flits),
            )
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers))
    ]
    for row in rows:
        lines.append(
            "  ".join(c.rjust(widths[i]) for i, c in enumerate(row))
        )
    return "\n".join(lines)
