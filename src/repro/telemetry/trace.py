"""Flit/packet event tracing.

Opt-in hooks on the network's hot paths record one event per flit
injection, per link traversal (hop), per ejection, and per fault abort.
Events stream to JSONL (one canonical-JSON object per line) and export
to the Chrome/Perfetto ``trace_event`` format — one track per link,
one async span per packet — so a saturated or faulted run can be
scrubbed visually in ``chrome://tracing`` / ui.perfetto.dev exactly
like a hardware waveform.

Determinism: the two kernels drive the same per-cycle events but in
different intra-cycle orders (the event kernel iterates active lists,
the reference kernel scans everything).  The tracer therefore buffers
one cycle at a time and flushes it sorted by a canonical key
``(kind, where, pid, seq)``; the streams and event lists of the two
kernels are bit-identical (see ``tests/telemetry/test_trace.py`` and
the parity suite).
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional

from repro.util import canonical_json

#: Canonical intra-cycle order: fault application precedes its aborts,
#: which precede the cycle's normal dataflow (injection happens in the
#: last network phase, but a flit injected at cycle ``c`` reaches its
#: first switch at ``c + delay``, so sorting injects before hops of
#: the same cycle never reorders cause after effect).
_KIND_ORDER = {
    "fault": 0,
    "abort": 1,
    "inject": 2,
    "hop": 3,
    "eject": 4,
    "packet": 5,
}


class FlitTracer:
    """Collects flit-level events from an attached network.

    Parameters
    ----------
    stream:
        Optional text file-like; each flushed event is written as one
        canonical JSON line (sorted keys, no spaces).
    keep:
        Keep flushed events in :attr:`events` (needed for
        :meth:`to_perfetto`; disable for huge streamed runs).

    Attach with :meth:`~repro.noc.network.Network.attach_tracer`; call
    :meth:`close` after the run to flush the final cycle.
    """

    def __init__(
        self, stream: Optional[IO[str]] = None, keep: bool = True
    ) -> None:
        self.stream = stream
        self.keep = keep
        self.events: List[Dict[str, Any]] = []
        self._cycle = -1
        self._pending: List[tuple] = []

    # ------------------------------------------------------------------
    # Hooks (called by the network / fault injector)
    # ------------------------------------------------------------------
    def inject(self, now: int, ni, flit) -> None:
        """A flit left an NI source queue onto its injection link."""
        self._note(now, "inject", ni.name, flit.packet.pid, flit.seq)

    def hop(self, now: int, link, flit) -> None:
        """A flit finished a link flight into a switch input buffer."""
        self._note(
            now,
            "hop",
            link.name,
            flit.packet.pid,
            flit.seq,
            link.delay,
        )

    def eject(self, now: int, link, flit) -> None:
        """A flit finished its ejection-link flight into reassembly."""
        self._note(
            now,
            "eject",
            link.name,
            flit.packet.pid,
            flit.seq,
            link.delay,
        )

    def packet_done(self, now: int, rx, packet) -> None:
        """Reassembly completed a packet (its tail flit arrived)."""
        self._note(now, "packet", rx.name, packet.pid, packet.length)

    def abort(self, now: int, pid: int) -> None:
        """Fault injection flushed every trace of packet ``pid``."""
        self._note(now, "abort", "", pid, 0)

    def fault(self, now: int, kind: str, detail: str) -> None:
        """A fault-schedule event was applied to the fabric."""
        self._note(now, "fault", detail, -1, 0, kind)

    # ------------------------------------------------------------------
    # Buffering + output
    # ------------------------------------------------------------------
    def _note(
        self,
        now: int,
        kind: str,
        where: str,
        pid: int,
        seq: int,
        extra: Any = None,
    ) -> None:
        if now != self._cycle:
            if self._pending:
                self._flush()
            self._cycle = now
        self._pending.append(
            (_KIND_ORDER[kind], where, pid, seq, kind, extra, now)
        )

    def _flush(self) -> None:
        """Emit the buffered cycle in canonical order."""
        pending = self._pending
        pending.sort(key=lambda e: e[:4])
        stream = self.stream
        keep = self.keep
        for order, where, pid, seq, kind, extra, now in pending:
            event: Dict[str, Any] = {
                "cycle": now,
                "kind": kind,
                "where": where,
                "pid": pid,
                "seq": seq,
            }
            if kind in ("hop", "eject"):
                event["dur"] = extra
            elif kind == "fault":
                event["fault"] = extra
            if keep:
                self.events.append(event)
            if stream is not None:
                stream.write(canonical_json(event))
                stream.write("\n")
        del pending[:]

    def close(self) -> None:
        """Flush the final buffered cycle (idempotent)."""
        if self._pending:
            self._flush()

    # ------------------------------------------------------------------
    # Perfetto export
    # ------------------------------------------------------------------
    def to_perfetto(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON: link tracks + packet spans.

        One timeline track (tid) per link/NI/RX name carrying its
        flit-level events (hops and ejects as complete "X" slices over
        their link flight, injects as instants), plus one async span
        per packet from its first injected flit to its completion or
        abort.  Timestamps are emulated cycles (rendered as
        microseconds by the viewers).  Requires ``keep=True``.
        """
        self.close()
        events = self.events
        tracks = sorted(
            {e["where"] for e in events if e["where"]}
        )
        tids = {name: i + 1 for i, name in enumerate(tracks)}
        out: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "noc-emulation"},
            }
        ]
        for name, tid in tids.items():
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        span_open: Dict[int, int] = {}
        for e in events:
            kind = e["kind"]
            pid = e["pid"]
            cycle = e["cycle"]
            if kind == "inject":
                if pid not in span_open:
                    span_open[pid] = cycle
                    out.append(
                        {
                            "name": f"packet {pid}",
                            "cat": "packet",
                            "ph": "b",
                            "id": pid,
                            "ts": cycle,
                            "pid": 0,
                            "tid": 0,
                        }
                    )
                out.append(
                    {
                        "name": f"p{pid}.f{e['seq']}",
                        "cat": "flit",
                        "ph": "i",
                        "s": "t",
                        "ts": cycle,
                        "pid": 0,
                        "tid": tids[e["where"]],
                    }
                )
            elif kind in ("hop", "eject"):
                dur = e["dur"]
                out.append(
                    {
                        "name": f"p{pid}.f{e['seq']}",
                        "cat": kind,
                        "ph": "X",
                        "ts": cycle - dur,
                        "dur": dur,
                        "pid": 0,
                        "tid": tids[e["where"]],
                        "args": {"pid": pid, "seq": e["seq"]},
                    }
                )
            elif kind in ("packet", "abort") and pid in span_open:
                out.append(
                    {
                        "name": f"packet {pid}",
                        "cat": "packet",
                        "ph": "e",
                        "id": pid,
                        "ts": cycle,
                        "pid": 0,
                        "tid": 0,
                        "args": {"outcome": kind},
                    }
                )
                del span_open[pid]
            elif kind == "fault":
                out.append(
                    {
                        "name": f"fault {e['fault']} {e['where']}",
                        "cat": "fault",
                        "ph": "i",
                        "s": "g",
                        "ts": cycle,
                        "pid": 0,
                        "tid": 0,
                    }
                )
        return {"traceEvents": out, "displayTimeUnit": "ms"}

    def write_perfetto(self, path: str) -> None:
        """Dump :meth:`to_perfetto` to ``path`` as JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_perfetto(), fh)  # repro: allow[canonical-json] Chrome/Perfetto viewer export, not a deterministic record
