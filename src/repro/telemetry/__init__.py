"""Parking-aware telemetry: windowed metrics, flit traces, progress.

The observability layer of the reproduction (the software face of the
paper's hardware monitor): :class:`WindowedMetrics` differencing the
settle-on-read counters at window boundaries, :class:`FlitTracer`
streaming flit-level events to JSONL/Perfetto, :class:`ProgressMeter`
firing live run-progress callbacks — all designed so input parking and
idle fast-forward stay fully engaged while telemetry is on.
"""

from repro.telemetry.progress import (
    ProgressMeter,
    ProgressSample,
    format_progress,
)
from repro.telemetry.trace import FlitTracer
from repro.telemetry.windows import (
    WindowRecord,
    WindowedMetrics,
    format_window_table,
)

__all__ = [
    "FlitTracer",
    "ProgressMeter",
    "ProgressSample",
    "WindowRecord",
    "WindowedMetrics",
    "format_progress",
    "format_window_table",
]
