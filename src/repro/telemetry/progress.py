"""Live run progress.

The engine's loop runs hundreds of thousands of emulated cycles per
second; a long run or sweep is otherwise a black box until the final
report.  :class:`ProgressMeter` fires a user callback roughly every
``interval_seconds`` of *wall clock* with a :class:`ProgressSample` —
cycles/sec, packets in flight, fraction of the run budget, fault state
— while costing the hot loop a single integer comparison per cycle:
the meter converts its wall-clock interval into a cycle count from the
measured speed and hands the engine the next *cycle* at which to call
:meth:`tick`, re-tuning the estimate at every firing.

Samples are observational only: they carry wall-clock readings and are
never stored in deterministic records (``scenario_metrics`` and the
result cache exclude them by construction).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class ProgressSample:
    """One progress reading of a running emulation."""

    cycle: int
    wall_seconds: float  # since the run started
    cycles_per_sec: float  # measured over the last interval
    packets_sent: int
    packets_received: int
    in_flight_flits: int
    #: Fraction of the run budget consumed (cycle limit if one was
    #: given, else the total TG packet budget); None when unbounded.
    budget_fraction: Optional[float]
    #: True while a fault is applied and unrepaired.
    faulted: bool = False
    #: True for the final sample emitted when the run stops.
    final: bool = False


class ProgressMeter:
    """Adaptively schedules progress callbacks on cycle boundaries.

    Parameters
    ----------
    platform:
        The running :class:`~repro.core.platform.EmulationPlatform`.
    callback:
        Called with each :class:`ProgressSample`.
    interval_seconds:
        Target wall-clock spacing between samples.
    limit_cycle:
        The run's absolute cycle limit, if any (used for
        ``budget_fraction``).
    """

    #: First check after this many cycles — quick enough to calibrate
    #: the cycles/sec estimate early, long enough to be free on short
    #: runs.
    INITIAL_CYCLES = 256
    MIN_CYCLES = 64
    MAX_CYCLES = 10_000_000

    def __init__(
        self,
        platform,
        callback: Callable[[ProgressSample], None],
        interval_seconds: float = 0.5,
        limit_cycle: Optional[int] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        self.platform = platform
        self.callback = callback
        self.interval_seconds = interval_seconds
        self.limit_cycle = limit_cycle
        self.samples_emitted = 0
        self._start_cycle = 0
        self._start_wall = 0.0
        self._last_cycle = 0
        self._last_wall = 0.0
        self._interval_cycles = self.INITIAL_CYCLES
        # Total packet budget across generators, when every generator
        # has one (the common bounded-run shape).
        budget = 0
        self._packet_budget: Optional[int] = None
        for g in platform.generators:
            if g.max_packets is None:
                budget = 0
                break
            budget += g.max_packets
        if budget > 0:
            self._packet_budget = budget

    def start(self, now: int) -> int:
        """Arm the meter at the run's first cycle; return the first
        check cycle."""
        self._start_cycle = now
        self._last_cycle = now
        self._start_wall = self._last_wall = time.perf_counter()  # repro: allow[wall-clock] live progress/ETA display reads the real clock by definition
        return now + self._interval_cycles

    def tick(self, now: int, faulted: bool = False) -> int:
        """Emit a sample at cycle ``now``; return the next check cycle.

        Also re-tunes the cycle interval so the next callback lands
        about ``interval_seconds`` of wall clock away at the currently
        measured emulation speed.
        """
        self._emit(now, faulted, final=False)
        return now + self._interval_cycles

    def finish(self, now: int, faulted: bool = False) -> None:
        """Emit the final sample as the run stops."""
        self._emit(now, faulted, final=True)

    # ------------------------------------------------------------------
    def _emit(self, now: int, faulted: bool, final: bool) -> None:
        wall = time.perf_counter()  # repro: allow[wall-clock] live progress/ETA display reads the real clock by definition
        dt = wall - self._last_wall
        dc = now - self._last_cycle
        cps = dc / dt if dt > 0 else 0.0
        if not final and dt > 0 and dc > 0:
            target = int(dc * self.interval_seconds / dt)
            self._interval_cycles = min(
                self.MAX_CYCLES, max(self.MIN_CYCLES, target)
            )
        self._last_wall = wall
        self._last_cycle = now
        platform = self.platform
        fraction: Optional[float] = None
        if self.limit_cycle is not None:
            span = self.limit_cycle - self._start_cycle
            if span > 0:
                fraction = min(
                    1.0, (now - self._start_cycle) / span
                )
        elif self._packet_budget is not None:
            fraction = min(
                1.0, platform.packets_received / self._packet_budget
            )
        self.samples_emitted += 1
        self.callback(
            ProgressSample(
                cycle=now,
                wall_seconds=wall - self._start_wall,
                cycles_per_sec=cps,
                packets_sent=platform.packets_sent,
                packets_received=platform.packets_received,
                in_flight_flits=platform.network.in_flight_flits,
                budget_fraction=fraction,
                faulted=faulted,
                final=final,
            )
        )


def format_progress(sample: ProgressSample) -> str:
    """One-line human rendering of a sample (CLI ``--progress``)."""
    parts = [
        f"cycle {sample.cycle:,}",
        f"{sample.cycles_per_sec:,.0f} c/s",
        f"{sample.packets_received}/{sample.packets_sent} pkts",
        f"{sample.in_flight_flits} in flight",
    ]
    if sample.budget_fraction is not None:
        parts.append(f"{sample.budget_fraction * 100:.0f}%")
    if sample.faulted:
        parts.append("FAULTED")
    if sample.final:
        parts.append("done")
    return "  ".join(parts)
