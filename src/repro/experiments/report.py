"""Sweep aggregation and export.

The paper's evaluation figures are all *aggregations over sweeps* —
latency vs packets-per-burst, congestion vs routing case (Slides
20-22).  This module turns a list of
:class:`~repro.experiments.runner.ScenarioResult` into exactly that
kind of series: flat rows (spec fields + metrics), group-by
aggregation with mean/min/max/percentile statistics, CSV/JSON export
for external plotting, and a fixed-width table renderer for the CLI.

Everything here is deterministic: rows keep sweep order, groups sort
by their key, and percentiles interpolate linearly (so the same
results always render the same report).
"""

from __future__ import annotations

import csv
import json
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.errors import ConfigError
from repro.experiments.runner import ScenarioResult

#: Metric columns the CLI shows by default (a readable subset; every
#: metric of ``repro.stats.summary`` remains available by name).
DEFAULT_METRICS = (
    "cycles",
    "mean_latency",
    "p95_latency",
    "accepted_flits_per_cycle",
    "congestion_rate",
)

#: Aggregate statistics computed per group.
DEFAULT_STATS = ("mean", "min", "max")


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (deterministic, numpy-free)."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _spec_row(spec) -> Dict[str, Any]:
    """The spec-derived columns of one row (no metrics)."""
    row: Dict[str, Any] = {"key": spec.key}
    fields = spec.to_dict()
    params = fields.pop("traffic_params")
    if spec.faults is not None:
        # Flat rows want a scalar cell: the schedule's content
        # hash stands in for the full event list.
        fields["faults"] = spec.faults.key
    row.update(fields)
    for name, value in sorted(params.items()):
        row[f"traffic_params.{name}"] = value
    return row


def rows_from_results(
    results: Sequence[ScenarioResult],
) -> List[Dict[str, Any]]:
    """Flatten results: one dict per scenario, spec fields + metrics.

    Spec fields and metric names share one namespace (metrics win on
    collision, which cannot happen with the stock names); traffic
    params appear as ``traffic_params.<name>`` columns.
    """
    rows = []
    for result in results:
        row = _spec_row(result.spec)
        row.update(result.metrics)
        row["cached"] = result.cached
        rows.append(row)
    return rows


def _group_key(row: Mapping[str, Any], by: Sequence[str]) -> Tuple:
    try:
        return tuple(row[field] for field in by)
    except KeyError as missing:
        raise ConfigError(
            f"unknown group-by field {missing}; available fields:"
            f" {sorted(row)}"
        ) from None


def aggregate(
    results: Sequence[ScenarioResult],
    by: Sequence[str],
    metrics: Optional[Sequence[str]] = None,
    stats: Sequence[str] = DEFAULT_STATS,
) -> List[Dict[str, Any]]:
    """Group results by spec fields and aggregate metric statistics.

    ``by`` names row fields (spec fields, ``traffic_params.<name>``,
    even metrics); ``metrics`` defaults to every metric name that
    carries a numeric value in *any* result (first-seen order across
    the sweep — a metric that is ``None`` in some scenarios, e.g.
    ``p50_latency`` without a latency histogram, still aggregates
    over the scenarios that do report it); ``stats`` picks from
    ``mean``, ``min``, ``max``, ``count`` and ``pNN`` percentiles
    (``p50``, ``p95``, ...).  Output rows are sorted by group key and
    carry columns ``<metric>.<stat>``.

    A :class:`~repro.experiments.resilience.SweepReport` aggregates
    over its completed results and adds a ``missing`` column: how
    many of each group's scenarios failed or were quarantined, so a
    partial sweep can never masquerade as a complete one.  A group
    whose members all failed still appears, with ``n = 0`` and every
    statistic ``None``.  Plain result lists keep the old schema.
    """
    if not by:
        raise ConfigError("aggregate needs at least one group-by field")
    failures = list(getattr(results, "failures", ()))
    track_missing = hasattr(results, "failures")
    rows = rows_from_results(results)
    if not rows and not failures:
        return []
    if metrics is None:
        metrics = []
        seen = set()
        for result in results:
            for name, value in result.metrics.items():
                if (
                    name not in seen
                    and isinstance(value, (int, float))
                    and not isinstance(value, bool)
                ):
                    seen.add(name)
                    metrics.append(name)
    groups: Dict[Tuple, List[Mapping[str, Any]]] = {}
    for row in rows:
        groups.setdefault(_group_key(row, by), []).append(row)
    # Failure records group by their spec fields alone (they have no
    # metrics); a by-field they cannot provide — e.g. grouping by a
    # metric — lands as None rather than erroring the aggregation.
    missing: Dict[Tuple, int] = {}
    for failure in failures:
        frow = _spec_row(failure.spec)
        key = tuple(frow.get(field) for field in by)
        missing[key] = missing.get(key, 0) + 1
        groups.setdefault(key, [])

    def sort_value(value: Any) -> Tuple:
        # Numbers sort numerically (depth 16 after depth 2, not
        # before), everything else lexically, mixed types stably.
        if isinstance(value, bool) or not isinstance(
            value, (int, float)
        ):
            return (1, 0.0, str(value))
        return (0, float(value), "")

    out = []
    for key in sorted(
        groups, key=lambda k: tuple(sort_value(x) for x in k)
    ):
        members = groups[key]
        agg: Dict[str, Any] = dict(zip(by, key))
        agg["n"] = len(members)
        if track_missing:
            agg["missing"] = missing.get(key, 0)
        for metric in metrics:
            values = [
                m[metric]
                for m in members
                if isinstance(m.get(metric), (int, float))
                and not isinstance(m.get(metric), bool)
            ]
            for stat in stats:
                agg[f"{metric}.{stat}"] = (
                    _stat(values, stat) if values else None
                )
        out.append(agg)
    return out


def _stat(values: Sequence[float], stat: str) -> float:
    if stat == "mean":
        return sum(values) / len(values)
    if stat == "min":
        return min(values)
    if stat == "max":
        return max(values)
    if stat == "count":
        return len(values)
    if stat.startswith("p"):
        try:
            q = int(stat[1:]) / 100.0
        except ValueError:
            raise ConfigError(f"unknown statistic {stat!r}") from None
        return percentile(values, q)
    raise ConfigError(
        f"unknown statistic {stat!r}; expected mean/min/max/count/pNN"
    )


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def _columns(rows: Sequence[Mapping[str, Any]]) -> List[str]:
    """Union of row keys, first-seen order (rows share a vocabulary)."""
    columns: List[str] = []
    for row in rows:
        for name in row:
            if name not in columns:
                columns.append(name)
    return columns


def to_csv(rows: Sequence[Mapping[str, Any]], path: str) -> str:
    """Write flat or aggregated rows as CSV; returns the path."""
    columns = _columns(rows)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
    return path


def to_json(rows: Sequence[Mapping[str, Any]], path: str) -> str:
    """Write rows as a sorted-key JSON document; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(  # repro: allow[canonical-json] human-readable indented export; keys already sorted
            [dict(r) for r in rows], fh, indent=2, sort_keys=True
        )
        fh.write("\n")
    return path


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Fixed-width text table of selected columns (CLI output)."""
    if not rows:
        return "(no results)"
    columns = list(columns) if columns else _columns(rows)

    def fmt(value: Any) -> str:
        if isinstance(value, bool) or value is None:
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    cells = [[fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in cells))
        for i, c in enumerate(columns)
    ]
    lines = [
        "  ".join(str(c).ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
