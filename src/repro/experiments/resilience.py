"""Crash-safe sweep execution: supervision, retries, and the journal.

A multi-hour sweep must not lose everything because one worker was
OOM-killed, one scenario wedged, or the host rebooted.  This module is
the hardening layer under :class:`~repro.experiments.runner.
SweepRunner`, in three parts:

* **Supervised worker pool** — :func:`run_supervised` replaces the
  bare ``multiprocessing.Pool``.  Each worker gets its own duplex
  pipe (a SIGKILL mid-write can poison a *shared* queue's lock; a
  private pipe just reads EOF), receives one task at a time, and is
  polled with :func:`multiprocessing.connection.wait`.  A dead worker
  surfaces as a structured ``WorkerCrash`` attempt — never a hang,
  never a sweep-wide exception — and a watchdog hard-kills workers
  that blow past the per-scenario wall-clock budget plus grace (the
  out-of-process backstop behind the engine's cooperative
  :class:`~repro.core.errors.ScenarioTimeout`).
* **Retry / quarantine** — every failure consumes one of a bounded
  number of attempts; a spec that keeps failing is *quarantined* (a
  :class:`FailureRecord` in the report) instead of aborting the
  sweep.  Because :func:`~repro.experiments.runner.run_scenario` is a
  pure function of the spec, a retry that succeeds yields the same
  bits the first attempt would have.
* **Sweep journal** — :class:`SweepJournal` is an append-only ledger
  of per-spec outcomes (``done`` / ``failed`` / ``quarantined``) as
  canonical-JSON lines next to the cache.  After a process-level
  crash, ``repro batch --resume-journal`` re-runs only specs the
  ledger does not show finished; torn trailing lines from the crash
  itself are tolerated (last complete entry wins).

What stays deterministic: the metric records.  Retry counts, wall
clocks, error strings and journal entries are all provenance, kept
outside :meth:`~repro.experiments.runner.ScenarioResult.record`, so
serial, parallel, retried and resumed executions of the surviving
specs remain bit-identical.

Chaos drills
------------
The supervised pool takes an optional ``chaos`` mapping — a
first-class test hook, never set by production code paths::

    {"kill_on": {spec_key: attempt}, "hang_on": {spec_key: attempt}}

``kill_on`` SIGKILLs the worker right before running that spec's
given attempt (``0`` = every attempt); ``hang_on`` wedges it in a
sleep loop so the watchdog has something to kill.  The chaos suite
uses these to prove crash detection, retry and quarantine end to end.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.errors import EmulationError
from repro.util import canonical_json

__all__ = [
    "FailureRecord",
    "SweepJournal",
    "SweepReport",
    "WorkerCrash",
    "run_supervised",
]


class WorkerCrash(EmulationError):
    """A pool worker died without reporting a result.

    Raised-shaped but never actually raised across the sweep: the
    supervisor converts worker death (SIGKILL, OOM kill, interpreter
    abort) into one failed *attempt* carrying this type's name, so the
    sweep retries or quarantines the spec instead of hanging on a
    queue that will never fill.
    """


@dataclass(frozen=True)
class FailureRecord:
    """One spec's final failure: what went wrong, how hard we tried.

    Duck-compatible with :class:`~repro.experiments.runner.
    ScenarioResult` where progress/report plumbing needs it (``spec``,
    ``wall_seconds``, ``cached``), and marked ``failed = True`` so
    callers can tell the two apart without isinstance checks.  All of
    this is provenance — none of it enters a deterministic record.
    """

    spec: Any
    error: str
    message: str
    attempts: int
    status: str  # "failed" | "quarantined"
    wall_seconds: float = 0.0
    cached: bool = False
    failed: bool = True

    @property
    def key(self) -> str:
        return self.spec.key


class SweepReport(Sequence):
    """What a sweep returns: completed results plus failure records.

    Sequence-compatible over the *completed* results (in spec order),
    so every pre-existing call site — iteration, indexing, ``len`` —
    keeps working; the new failure bookkeeping rides alongside:

    ``failures``
        One :class:`FailureRecord` per failed sweep position, in spec
        order.  Duplicate specs share the same record object, so
        ``len(report) + len(report.failures)`` equals the sweep size.
    ``corrupt_cache``
        Cache entries quarantined as ``<key>.corrupt`` during this
        sweep (see :class:`~repro.experiments.cache.ResultCache`).
    """

    def __init__(
        self,
        results: Sequence[Any],
        failures: Sequence[FailureRecord] = (),
        corrupt_cache: int = 0,
    ) -> None:
        self.results: List[Any] = list(results)
        self.failures: List[FailureRecord] = list(failures)
        self.corrupt_cache = corrupt_cache

    # Sequence protocol over the completed results.
    def __getitem__(self, index):
        return self.results[index]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.results)

    @property
    def ok(self) -> bool:
        """True when every spec completed."""
        return not self.failures

    @property
    def total(self) -> int:
        """Sweep size: completed plus failed positions."""
        return len(self.results) + len(self.failures)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepReport(results={len(self.results)},"
            f" failures={len(self.failures)},"
            f" corrupt_cache={self.corrupt_cache})"
        )


# ----------------------------------------------------------------------
# The sweep journal
# ----------------------------------------------------------------------
class SweepJournal:
    """Append-only per-spec outcome ledger; the crash-recovery anchor.

    One canonical-JSON object per line::

        {"attempts": 1, "key": "<spec key>", "status": "done"}
        {"attempts": 2, "error": "ScenarioTimeout", "key": "...",
         "status": "quarantined"}

    Appends are flushed and fsynced, so every *completed* line
    survives a crash; a line torn by the crash itself fails to parse
    and is skipped on load (the last complete entry per key wins).
    The file lives next to the cache under a name derived from the
    sweep's spec-key set (:meth:`for_sweep`), so re-running the same
    sweep file resumes the same ledger while a different sweep gets
    its own.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    @classmethod
    def for_sweep(cls, directory: str, specs: Sequence[Any]) -> "SweepJournal":
        """The canonical journal path of a sweep: hash of its key set.

        Order-insensitive (the keys are sorted and deduplicated), so
        reordering a sweep file still resumes the same journal.
        """
        import hashlib

        from repro.util import canonical_json_bytes

        keys = sorted({spec.key for spec in specs})
        digest = hashlib.sha256(
            canonical_json_bytes(keys)
        ).hexdigest()[:16]
        return cls(os.path.join(directory, f"sweep-{digest}.journal"))

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Last complete entry per spec key; {} when absent/empty.

        Corrupt or torn lines (the tail a crash left behind) are
        skipped, not fatal — the corresponding spec simply re-runs.
        """
        import json

        entries: Dict[str, Dict[str, Any]] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue
                    if (
                        not isinstance(entry, dict)
                        or "key" not in entry
                        or "status" not in entry
                    ):
                        continue
                    entries[entry["key"]] = entry
        except FileNotFoundError:
            return {}
        return entries

    def write(self, key: str, status: str, **extra: Any) -> None:
        """Append one outcome line, flushed and fsynced.

        If the previous process died mid-append the file ends in a
        torn line with no newline; writing straight after it would
        merge the new entry into the wreckage and lose both.  Heal
        the boundary first: a torn tail gets terminated (it then
        fails to parse and is skipped on load, as before) and the new
        entry starts clean.
        """
        entry = {"key": key, "status": status}
        entry.update(extra)
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        blob = (canonical_json(entry) + "\n").encode("utf-8")
        with open(self.path, "a+b") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())

    def reset(self) -> None:
        """Truncate: a fresh (non-resumed) run starts a fresh ledger."""
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        with open(self.path, "w", encoding="utf-8"):
            pass


# ----------------------------------------------------------------------
# The supervised worker pool
# ----------------------------------------------------------------------
#: Seconds of grace past the scenario budget before the watchdog
#: hard-kills a worker: the cooperative in-engine timeout gets first
#: shot (its error message names the cycle reached); the kill is the
#: backstop for code wedged outside the engine loop.
DEFAULT_GRACE = 1.0


def _apply_memory_limit(limit_mb: int) -> None:
    """Best-effort address-space ceiling for the current process.

    ``resource`` is POSIX-only; where it is missing (or the limit
    cannot be lowered) the worker simply runs unlimited — the
    supervisor's crash detection still converts any OOM kill into a
    ``WorkerCrash`` attempt.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return
    limit = int(limit_mb) << 20
    try:
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY and hard < limit:
            limit = hard
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):  # pragma: no cover - host policy
        return


def _worker_main(conn, config: Dict[str, Any]) -> None:
    """Worker loop: one task in, one structured reply out.

    Replies are ``("ok", task_id, record, wall)`` or ``("err",
    task_id, error_type, message)``; a ``None`` task is the stop
    sentinel.  Exceptions become "err" replies (the supervisor decides
    retry vs. quarantine); only interpreter-level exits escape, and
    those the supervisor reads as a crash from the pipe's EOF.
    """
    import signal

    memory_limit_mb = config.get("memory_limit_mb")
    if memory_limit_mb:
        _apply_memory_limit(memory_limit_mb)
    timeout = config.get("timeout")
    chaos = config.get("chaos") or {}
    kill_on = chaos.get("kill_on") or {}
    hang_on = chaos.get("hang_on") or {}

    from repro.experiments.runner import run_scenario
    from repro.experiments.spec import ScenarioSpec

    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):  # supervisor went away
            break
        if task is None:
            break
        task_id, spec_dict, attempt = task
        spec = ScenarioSpec.from_dict(spec_dict)
        key = spec.key
        if key in kill_on and kill_on[key] in (0, attempt):
            os.kill(os.getpid(), signal.SIGKILL)
        if key in hang_on and hang_on[key] in (0, attempt):
            while True:  # wedged on purpose; the watchdog kills us
                time.sleep(0.05)
        try:
            result = run_scenario(spec, timeout=timeout)
        except Exception as exc:
            reply = ("err", task_id, type(exc).__name__, str(exc))
        else:
            reply = ("ok", task_id, result.record(), result.wall_seconds)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # supervisor went away
            break
    conn.close()


class _Worker:
    """One supervised worker process and its private pipe."""

    def __init__(self, ctx, config: Dict[str, Any]) -> None:
        parent, child = ctx.Pipe(duplex=True)
        self.conn = parent
        self.proc = ctx.Process(
            target=_worker_main, args=(child, config), daemon=True
        )
        self.proc.start()
        child.close()
        #: (task_id, spec, attempt) in flight, or None when idle.
        self.task: Optional[Tuple[int, Any, int]] = None
        #: Watchdog deadline (perf_counter seconds), or None.
        self.deadline: Optional[float] = None

    def dispatch(
        self, task_id: int, spec: Any, attempt: int, budget: Optional[float]
    ) -> bool:
        """Send one task; False when the worker is already dead."""
        try:
            self.conn.send((task_id, spec.to_dict(), attempt))
        except (BrokenPipeError, OSError):
            return False
        self.task = (task_id, spec, attempt)
        if budget is not None:
            self.deadline = (
                time.perf_counter() + budget  # repro: allow[wall-clock] watchdog deadline; supervision only, never enters a deterministic record
            )
        return True

    def kill(self) -> None:
        """Hard-stop: SIGKILL (terminate is catchable) and reap."""
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join()
        self.conn.close()

    def stop(self) -> None:
        """Graceful stop: sentinel, short join, then hard-stop."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=5.0)
        self.kill()


def run_supervised(
    tasks: Sequence[Tuple[int, Any]],
    workers: int,
    retries: int = 1,
    timeout: Optional[float] = None,
    grace: float = DEFAULT_GRACE,
    memory_limit_mb: Optional[int] = None,
    chaos: Optional[Mapping[str, Any]] = None,
    on_result: Optional[Callable[[int, Any, Any], None]] = None,
    on_failure: Optional[
        Callable[[int, Any, str, str, int], None]
    ] = None,
) -> int:
    """Run ``tasks`` (``(index, spec)`` pairs) on a supervised pool.

    Every task ends in exactly one of two callbacks: ``on_result(
    index, spec, ScenarioResult)`` on success, or ``on_failure(index,
    spec, error_type, message, attempts)`` after all attempts are
    spent (``attempts = retries + 1``).  Worker death is a
    ``WorkerCrash`` attempt; a budget overrun is a ``ScenarioTimeout``
    attempt, enforced cooperatively in-engine first and by watchdog
    SIGKILL at ``timeout + grace``.  Returns the number of task
    executions dispatched (retries included) — the sweep-level retry
    count is that minus ``len(tasks)``.
    """
    import multiprocessing
    from multiprocessing.connection import wait as conn_wait

    from repro.experiments.runner import ScenarioResult

    if not tasks:
        return 0
    ctx = multiprocessing.get_context()
    config: Dict[str, Any] = {
        "timeout": timeout,
        "memory_limit_mb": memory_limit_mb,
        "chaos": dict(chaos) if chaos else None,
    }
    budget = None if timeout is None else timeout + grace

    # task_id -> (spec, next attempt).  One task in flight per worker,
    # so a dead worker's task is always known and its timeout is
    # measured from dispatch, not from enqueue.
    queue: List[Tuple[int, Any, int]] = [
        (task_id, spec, 1) for task_id, spec in tasks
    ]
    queue.reverse()  # pop() from the end == submission order
    outstanding = len(tasks)
    dispatched = 0
    pool: List[_Worker] = [
        _Worker(ctx, config)
        for _ in range(min(workers, len(tasks)))
    ]

    def attempt_failed(
        task_id: int, spec: Any, attempt: int, error: str, message: str
    ) -> None:
        nonlocal outstanding
        if attempt <= retries:
            queue.append((task_id, spec, attempt + 1))
        else:
            if on_failure is not None:
                on_failure(task_id, spec, error, message, attempt)
            outstanding -= 1

    try:
        while outstanding > 0:
            # Fill idle workers (replacing any found dead on dispatch).
            for slot, worker in enumerate(pool):
                while worker.task is None and queue:
                    task_id, spec, attempt = queue.pop()
                    dispatched += 1
                    if worker.dispatch(task_id, spec, attempt, budget):
                        break
                    # Dead before dispatch: not the task's fault —
                    # replace the worker and retry the same attempt.
                    dispatched -= 1
                    queue.append((task_id, spec, attempt))
                    worker.kill()
                    worker = pool[slot] = _Worker(ctx, config)

            busy = [w for w in pool if w.task is not None]
            if not busy:  # pragma: no cover - internal invariant
                raise RuntimeError("supervised pool stalled")

            poll: Optional[float] = None
            if budget is not None:
                now = time.perf_counter()  # repro: allow[wall-clock] watchdog poll timing; supervision only, never enters a deterministic record
                nearest = min(w.deadline for w in busy)
                poll = max(0.0, min(nearest - now, 0.2))
            ready = conn_wait([w.conn for w in busy], timeout=poll)

            for worker in busy:
                if worker.conn not in ready:
                    continue
                task_id, spec, attempt = worker.task
                try:
                    reply = worker.conn.recv()
                except (EOFError, OSError):
                    # The pipe hit EOF: the worker died (SIGKILL, OOM
                    # kill, interpreter abort) mid-task.
                    worker.kill()
                    slot = pool.index(worker)
                    pool[slot] = _Worker(ctx, config)
                    attempt_failed(
                        task_id,
                        spec,
                        attempt,
                        WorkerCrash.__name__,
                        f"worker died while running {spec.label()}"
                        f" (attempt {attempt})",
                    )
                    continue
                worker.task = None
                worker.deadline = None
                kind = reply[0]
                if kind == "ok":
                    _, _, record, wall = reply
                    if on_result is not None:
                        on_result(
                            task_id,
                            spec,
                            ScenarioResult.from_record(
                                record, wall_seconds=wall
                            ),
                        )
                    outstanding -= 1
                else:
                    _, _, error, message = reply
                    attempt_failed(task_id, spec, attempt, error, message)

            # Watchdog: hard-kill workers past budget + grace.  The
            # cooperative in-engine timeout normally replies first;
            # this catches code wedged outside the engine loop.
            if budget is not None:
                now = time.perf_counter()  # repro: allow[wall-clock] watchdog deadline check; supervision only, never enters a deterministic record
                for slot, worker in enumerate(pool):
                    if worker.task is None or now < worker.deadline:
                        continue
                    task_id, spec, attempt = worker.task
                    worker.kill()
                    pool[slot] = _Worker(ctx, config)
                    attempt_failed(
                        task_id,
                        spec,
                        attempt,
                        "ScenarioTimeout",
                        f"worker hard-killed after exceeding the"
                        f" {timeout}s scenario budget (+{grace}s"
                        f" grace) on {spec.label()}"
                        f" (attempt {attempt})",
                    )
    finally:
        for worker in pool:
            worker.stop()
    return dispatched
