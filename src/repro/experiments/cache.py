"""On-disk result cache keyed by scenario content hash.

The hardware flow caches synthesis on the *hardware signature* so
software-only changes re-use the bitstream (Slide 13); the sweep layer
applies the same idea one level up: a finished scenario's metric
record is cached on the spec's content hash, so re-running a sweep
only executes scenarios whose definition actually changed.  Editing
one axis value of a 100-point sweep re-emulates the affected points
and serves the other ~90 from disk in milliseconds.

Layout: one canonical-JSON file per scenario under the cache root,
named ``<key>.json``.  Records are written atomically (temp file +
rename) so a crashed or killed sweep never leaves a truncated record
a later run would trust; unreadable, schema-mismatched or key-
mismatched files read as misses, never as errors — and are
*quarantined* in the same motion: the bad file is atomically renamed
to ``<key>.corrupt`` (preserved for post-mortem, skipped by
:meth:`ResultCache.keys`) so the sweep re-runs the scenario once and
overwrites the slot, instead of silently re-parsing the same corrupt
bytes on every future run.  The per-instance ``corrupt_quarantined``
counter surfaces in the sweep's
:class:`~repro.experiments.resilience.SweepReport`.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Mapping, Optional, TYPE_CHECKING

from repro.util import canonical_json_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.spec import ScenarioSpec

#: Default cache directory of the CLI (relative to the working dir).
DEFAULT_CACHE_DIR = ".repro-cache"


def _canonical(record: Mapping[str, Any]) -> bytes:
    """The byte form stored on disk: canonical, key-sorted JSON."""
    return canonical_json_bytes(record)


class ResultCache:
    """A directory of scenario records addressed by content hash."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        #: Corrupt entries renamed to ``<key>.corrupt`` by this
        #: instance; sweep runs surface the delta in their report.
        self.corrupt_quarantined = 0

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def corrupt_path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.corrupt")

    def _quarantine(self, key: str) -> None:
        """Atomically move a bad entry aside so it cannot be re-read
        as a miss forever; counted only when this process wins the
        rename (concurrent readers race benignly — exactly one
        succeeds, the rest see the file already gone)."""
        try:
            os.replace(self.path_for(key), self.corrupt_path_for(key))
        except OSError:
            return
        self.corrupt_quarantined += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, spec: "ScenarioSpec") -> Optional[Dict[str, Any]]:
        """The stored record for ``spec``, or None on any miss.

        Corruption, schema drift and (vanishingly unlikely) hash
        collisions all degrade to a miss: the scenario simply re-runs
        and overwrites the slot.  Corrupt and drifted entries are
        additionally quarantined to ``<key>.corrupt``; a genuine hash
        collision (valid record, matching key, different spec) is a
        plain miss — the entry is someone else's valid data.
        """
        raw = self.get_bytes(spec.key)
        if raw is None:
            return None
        try:
            record = json.loads(raw)
        except json.JSONDecodeError:
            self._quarantine(spec.key)
            return None
        if not isinstance(record, dict):
            self._quarantine(spec.key)
            return None
        from repro.experiments.runner import RECORD_SCHEMA

        if record.get("schema") != RECORD_SCHEMA:
            self._quarantine(spec.key)
            return None
        if record.get("key") != spec.key:
            self._quarantine(spec.key)
            return None
        # Hash collision guard: the full spec must match.  Compare in
        # canonical JSON form — the live spec holds tuples where the
        # JSON round trip yields lists, and those must compare equal.
        if _canonical(record.get("spec", {})) != _canonical(
            spec.to_dict()
        ):
            return None
        if not isinstance(record.get("metrics"), dict):
            self._quarantine(spec.key)
            return None
        return record

    def get_bytes(self, key: str) -> Optional[bytes]:
        """Raw stored bytes for a key (byte-identity checks in tests)."""
        try:
            with open(self.path_for(key), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    def get_record(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record under an explicit ``key``, or None.

        The raw-key twin of :meth:`get` for records whose key is not
        a bare spec hash — warm-started sweep points fold the ramp
        checkpoint's content hash into their key, so warm and cold
        runs of the same spec cache separately.  Same degradation
        rules: corruption, schema drift or a key mismatch read as a
        quarantined miss, never as an error.
        """
        raw = self.get_bytes(key)
        if raw is None:
            return None
        try:
            record = json.loads(raw)
        except json.JSONDecodeError:
            self._quarantine(key)
            return None
        if not isinstance(record, dict):
            self._quarantine(key)
            return None
        from repro.experiments.runner import RECORD_SCHEMA

        if record.get("schema") != RECORD_SCHEMA:
            self._quarantine(key)
            return None
        if record.get("key") != key:
            self._quarantine(key)
            return None
        if not isinstance(record.get("metrics"), dict):
            self._quarantine(key)
            return None
        return record

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------
    def put(
        self, spec: "ScenarioSpec", record: Mapping[str, Any]
    ) -> str:
        """Atomically persist a record; returns the file path."""
        if record.get("key") != spec.key:
            raise ValueError(
                f"record key {record.get('key')!r} does not match spec"
                f" key {spec.key!r}"
            )
        return self.put_record(spec.key, record)

    def put_record(
        self, key: str, record: Mapping[str, Any]
    ) -> str:
        """Atomically persist a record under an explicit ``key``."""
        if record.get("key") != key:
            raise ValueError(
                f"record key {record.get('key')!r} does not match"
                f" cache key {key!r}"
            )
        path = self.path_for(key)
        blob = _canonical(record)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """All cached scenario keys (sorted, for stable listings)."""
        keys = []
        for entry in os.listdir(self.root):
            if entry.endswith(".json") and not entry.startswith("."):
                keys.append(entry[: -len(".json")])
        return sorted(keys)

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for key in self.keys():
            try:
                os.unlink(self.path_for(key))
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultCache({self.root!r}, entries={len(self)})"
