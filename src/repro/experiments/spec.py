"""Declarative scenario specifications and sweep expanders.

The paper's argument is *throughput of experiments*: the FPGA platform
exists so that a designer can push many NoC configurations through the
flow quickly (the Table 2 speedups are measured so that the Slide 19-22
sweeps become cheap).  A :class:`ScenarioSpec` makes one such
experiment a first-class value: a frozen, validated, hashable record of
everything that determines an emulation's outcome — platform hardware
(topology family and size, switching, arbitration, buffer depth),
routing, traffic software (model, load, packet length, budget) and the
seed registers.

Because the spec is the *complete* cause of a run, its content hash
doubles as the identity of the result: the sweep runner caches on it,
the report module groups by its fields, and parallel workers re-derive
per-generator RNG streams from it (hash-keyed spawning, see
:func:`repro.traffic.rng.derive_stream_seed`) so a scenario's numbers
never depend on which process — or which sweep — executed it.

:class:`Sweep` expands axis definitions into spec lists: ``grid``
takes the cartesian product, ``zip`` pairs axes element-wise, and
``from_file`` loads the JSON sweep documents the ``repro batch`` CLI
consumes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.config import (
    PlatformConfig,
    TG_MODELS,
    TR_KINDS,
    generic_platform_config,
    paper_platform_config,
    resolve_topology_spec,
)
from repro.core.errors import ConfigError
from repro.faults.schedule import FaultSchedule
from repro.noc.switch import SwitchingMode
from repro.traffic.rng import derive_stream_seed
from repro.util import canonical_json, canonical_json_bytes

#: Bump when the spec schema or its semantics change incompatibly;
#: part of the content hash, so stale cache entries never resurface.
SPEC_SCHEMA = 1

#: Routing specs a scenario accepts.  The paper route cases apply to
#: the 6-switch platform only; the table builders apply everywhere.
_PAPER_CASES = ("overlap", "disjoint", "split")
_GENERIC_ROUTINGS = ("shortest", "updown")
#: "multipath" (2 paths) or "multipath:<k>"; anything else — e.g. the
#: typo "multipath4" — must be rejected, not silently run as k=2.
_MULTIPATH_RE = re.compile(r"multipath(:[1-9][0-9]*)?")

_ARBITRATIONS = ("round_robin", "fixed_priority", "matrix")


def _frozen_params(
    params: Optional[Mapping[str, Any]],
) -> Tuple[Tuple[str, Any], ...]:
    """Normalise a traffic-params mapping into a hashable tuple."""
    if not params:
        return ()
    items = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        items.append((str(key), value))
    return tuple(items)


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete emulation scenario, hashable and validated.

    Fields mirror the two halves of :class:`~repro.core.config.
    PlatformConfig`: hardware (``topology``, ``switching``,
    ``arbitration``, ``buffer_depth``) and software (``routing``,
    ``traffic``, ``load``, ``length``, ``packets``, ``receptors``,
    ``seed``, ``traffic_params``).  ``packets`` is the budget *per
    generator*; ``traffic_params`` overrides the per-model defaults
    (accepts a dict, stored as a sorted tuple so the spec stays
    hashable).

    ``routing="auto"`` resolves per topology: the paper platform takes
    its overlapping route case, cyclic fabrics (ring, spidergon,
    torus — the torus wrap-around channels cycle under BFS shortest
    paths) take deadlock-free up*/down* tables, everything else
    shortest paths.
    """

    topology: str = "paper"
    routing: str = "auto"
    switching: str = "wormhole"
    arbitration: str = "round_robin"
    buffer_depth: int = 4
    traffic: str = "uniform"
    load: float = 0.45
    length: int = 8
    packets: Optional[int] = 1000
    receptors: str = "tracedriven"
    seed: int = 1
    traffic_params: Tuple[Tuple[str, Any], ...] = field(
        default_factory=tuple
    )
    #: Optional fault schedule applied during the run (accepts a
    #: FaultSchedule or its dict form; None = healthy run).  A
    #: first-class spec field, so sweeps, cache keys and aggregation
    #: cover faulted scenarios exactly like healthy ones.
    faults: Optional[FaultSchedule] = None
    #: Optional windowed-telemetry window length in cycles.  When set,
    #: the runner attaches a :class:`~repro.telemetry.windows.
    #: WindowedMetrics` collector and the scenario record embeds the
    #: (deterministic) window series as ``window_series``.  None keeps
    #: the run — and the spec's canonical form / cache key —
    #: byte-identical to pre-telemetry specs.
    telemetry_windows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.telemetry_windows is not None and (
            not isinstance(self.telemetry_windows, int)
            or isinstance(self.telemetry_windows, bool)
            or self.telemetry_windows < 1
        ):
            raise ConfigError(
                f"telemetry_windows must be an int >= 1 or None, got"
                f" {self.telemetry_windows!r}"
            )
        if self.faults is not None and not isinstance(
            self.faults, FaultSchedule
        ):
            if isinstance(self.faults, Mapping):
                object.__setattr__(
                    self, "faults", FaultSchedule.from_dict(self.faults)
                )
            else:
                raise ConfigError(
                    "ScenarioSpec.faults must be a FaultSchedule, its"
                    " dict form, or None; got"
                    f" {type(self.faults).__name__}"
                )
        if self.faults is not None and not self.faults.events:
            # An empty schedule is a healthy run: normalise so the
            # content hash (and hence the cache key) is identical.
            object.__setattr__(self, "faults", None)
        if isinstance(self.traffic_params, Mapping):
            object.__setattr__(
                self, "traffic_params", _frozen_params(self.traffic_params)
            )
        else:
            object.__setattr__(
                self,
                "traffic_params",
                _frozen_params(dict(self.traffic_params)),
            )
        if not isinstance(self.topology, str):
            raise ConfigError(
                "ScenarioSpec.topology must be a spec string (specs"
                " must stay serialisable); got"
                f" {type(self.topology).__name__}"
            )
        resolve_topology_spec(self.topology)  # early validation
        if self.traffic not in TG_MODELS:
            raise ConfigError(
                f"unknown traffic model {self.traffic!r}; expected one"
                f" of {TG_MODELS}"
            )
        if self.receptors not in TR_KINDS:
            raise ConfigError(
                f"unknown receptor kind {self.receptors!r}; expected"
                f" one of {TR_KINDS}"
            )
        try:
            SwitchingMode(self.switching)
        except ValueError:
            raise ConfigError(
                f"unknown switching mode {self.switching!r}"
            ) from None
        if self.arbitration not in _ARBITRATIONS:
            raise ConfigError(
                f"unknown arbitration {self.arbitration!r}; expected"
                f" one of {_ARBITRATIONS}"
            )
        if self.buffer_depth < 1:
            raise ConfigError("buffer depth must be >= 1 flit")
        if not 0.0 < self.load <= 1.0:
            raise ConfigError(
                f"load must be in (0, 1], got {self.load}"
            )
        if self.length < 1:
            raise ConfigError(
                f"packet length must be >= 1 flit, got {self.length}"
            )
        if self.packets is not None and self.packets < 1:
            raise ConfigError(
                f"packet budget must be >= 1 or None, got"
                f" {self.packets}"
            )
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ConfigError(f"seed must be an int >= 0, got {self.seed}")
        try:
            canonical_json(self.traffic_params)
        except TypeError:
            raise ConfigError(
                "traffic_params must be JSON-serialisable (scenario"
                " specs are hashed and shipped to worker processes);"
                " pass plain numbers/strings/lists, not live objects"
            ) from None
        valid_routing = (
            self.routing == "auto"
            or self.routing in _PAPER_CASES
            or self.routing in _GENERIC_ROUTINGS
            or _MULTIPATH_RE.fullmatch(self.routing) is not None
        )
        if not valid_routing:
            raise ConfigError(
                f"unknown routing spec {self.routing!r}; expected"
                f" 'auto', a paper case {_PAPER_CASES}, one of"
                f" {_GENERIC_ROUTINGS} or 'multipath[:k]'"
            )
        if self.topology != "paper" and self.routing in _PAPER_CASES:
            raise ConfigError(
                f"routing {self.routing!r} is a paper-platform route"
                f" case; topology {self.topology!r} needs 'auto',"
                f" 'shortest', 'updown' or 'multipath[:k]'"
            )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serialisable form (round-trips via from_dict).

        The ``faults`` key is omitted for healthy runs so every
        pre-existing spec — and every cache entry keyed on one — keeps
        its byte-identical canonical form.
        """
        payload = {
            "topology": self.topology,
            "routing": self.routing,
            "switching": self.switching,
            "arbitration": self.arbitration,
            "buffer_depth": self.buffer_depth,
            "traffic": self.traffic,
            "load": self.load,
            "length": self.length,
            "packets": self.packets,
            "receptors": self.receptors,
            "seed": self.seed,
            "traffic_params": {k: v for k, v in self.traffic_params},
        }
        if self.faults is not None:
            payload["faults"] = self.faults.to_dict()
        if self.telemetry_windows is not None:
            payload["telemetry_windows"] = self.telemetry_windows
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a spec from a plain dict, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown ScenarioSpec field(s) {sorted(unknown)};"
                f" expected a subset of {sorted(known)}"
            )
        kwargs = dict(payload)
        params = kwargs.get("traffic_params")
        if params is not None and not isinstance(params, Mapping):
            kwargs["traffic_params"] = dict(params)
        return cls(**kwargs)

    @property
    def key(self) -> str:
        """Stable content hash: the identity of this scenario's result.

        A 16-hex-digit SHA-256 prefix over the canonical JSON form plus
        the schema version.  Two specs share a key iff they describe
        the same emulation, which is the contract the result cache and
        the RNG stream derivation both build on.
        """
        payload = {"schema": SPEC_SCHEMA, "spec": self.to_dict()}
        blob = canonical_json_bytes(payload)
        return hashlib.sha256(blob).hexdigest()[:16]

    def label(self) -> str:
        """Short human-readable tag for tables and progress lines."""
        return (
            f"{self.topology}/{self.traffic}"
            f"@{self.load:g}x{self.length}"
            f" d{self.buffer_depth} {self.routing} s{self.seed}"
        )

    # ------------------------------------------------------------------
    # RNG stream derivation (parallel-safe)
    # ------------------------------------------------------------------
    def stream_seed(self, index: int) -> int:
        """Seed register of generator ``index``: an independent stream.

        Spawned from ``(seed, content hash, index)`` so no two
        generators — within a scenario or across scenarios of a sweep —
        share an LFSR sequence, regardless of which worker process runs
        them or in what order.
        """
        return derive_stream_seed(self.seed, int(self.key, 16), index)

    # ------------------------------------------------------------------
    # Elaboration
    # ------------------------------------------------------------------
    def to_platform_config(self) -> PlatformConfig:
        """Elaborate into a :class:`~repro.core.config.PlatformConfig`."""
        params = {k: v for k, v in self.traffic_params} or None
        if self.topology == "paper":
            routing = self.routing
            if routing == "auto":
                routing = "overlap"
            if routing in _PAPER_CASES:
                config = paper_platform_config(
                    traffic=self.traffic,
                    load=self.load,
                    length=self.length,
                    max_packets=self.packets,
                    routing_case=routing,
                    receptor_kind=self.receptors,
                    buffer_depth=self.buffer_depth,
                    seed=self.seed,
                    traffic_params=params,
                    seeds=[self.stream_seed(i) for i in range(4)],
                )
                config.arbitration = self.arbitration
                config.switching = SwitchingMode(self.switching)
                return config
            # Paper topology with generic table routing: fall through
            # to the all-node builder on the paper switch graph.
        topo = resolve_topology_spec(self.topology)
        return generic_platform_config(
            topology=topo,
            traffic=self.traffic,
            load=self.load,
            length=self.length,
            max_packets=self.packets,
            routing=self.routing,
            receptor_kind=self.receptors,
            buffer_depth=self.buffer_depth,
            arbitration=self.arbitration,
            switching=SwitchingMode(self.switching),
            seed=self.seed,
            traffic_params=params,
            seeds=[self.stream_seed(i) for i in range(topo.n_nodes)],
        )


# ----------------------------------------------------------------------
# Sweep expansion
# ----------------------------------------------------------------------
def _with_axis(spec: ScenarioSpec, key: str, value: Any) -> ScenarioSpec:
    """One axis assignment; dotted keys reach into traffic_params."""
    if key.startswith("traffic_params."):
        sub = key[len("traffic_params."):]
        if not sub:
            raise ConfigError(f"malformed axis name {key!r}")
        params = {k: v for k, v in spec.traffic_params}
        params[sub] = value
        return replace(spec, traffic_params=params)
    known = {f.name for f in fields(ScenarioSpec)}
    if key not in known:
        raise ConfigError(
            f"unknown sweep axis {key!r}; expected a ScenarioSpec"
            f" field or 'traffic_params.<name>'"
        )
    return replace(spec, **{key: value})


def _as_base(base: Any) -> ScenarioSpec:
    if isinstance(base, ScenarioSpec):
        return base
    if isinstance(base, Mapping):
        return ScenarioSpec.from_dict(base)
    raise ConfigError(
        f"sweep base must be a ScenarioSpec or mapping, got"
        f" {type(base).__name__}"
    )


class Sweep:
    """Expanders turning axis definitions into scenario lists."""

    @staticmethod
    def grid(base: Any = None, **axes: Iterable[Any]) -> List[ScenarioSpec]:
        """Cartesian product of the axes over a base spec.

        Axis order follows the keyword order; the last axis varies
        fastest, so the expansion order — and therefore result order
        and cache layout — is deterministic.
        """
        spec = _as_base(base if base is not None else ScenarioSpec())
        if not axes:
            return [spec]
        names = list(axes)
        value_lists = []
        for name in names:
            values = list(axes[name])
            if not values:
                raise ConfigError(f"sweep axis {name!r} is empty")
            value_lists.append(values)
        specs = []
        for combo in itertools.product(*value_lists):
            out = spec
            for name, value in zip(names, combo):
                out = _with_axis(out, name, value)
            specs.append(out)
        return specs

    @staticmethod
    def zip(base: Any = None, **axes: Iterable[Any]) -> List[ScenarioSpec]:
        """Element-wise pairing of equal-length axes over a base spec."""
        spec = _as_base(base if base is not None else ScenarioSpec())
        if not axes:
            return [spec]
        names = list(axes)
        value_lists = [list(axes[name]) for name in names]
        lengths = {len(v) for v in value_lists}
        if len(lengths) != 1:
            raise ConfigError(
                f"zip axes must have equal lengths, got"
                f" { {n: len(v) for n, v in zip(names, value_lists)} }"
            )
        if 0 in lengths:
            raise ConfigError("zip axes are empty")
        specs = []
        for combo in zip(*value_lists):
            out = spec
            for name, value in zip(names, combo):
                out = _with_axis(out, name, value)
            specs.append(out)
        return specs

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> List[ScenarioSpec]:
        """Expand a sweep document (the ``repro batch`` file format).

        ::

            {
              "base": {"topology": "paper", "traffic": "burst", ...},
              "grid": {"load": [0.15, 0.45], "buffer_depth": [2, 4]}
            }

        ``base`` holds ScenarioSpec fields (all optional); exactly one
        of ``grid`` / ``zip`` (or neither, for a single scenario) gives
        the axes.  Axis names may reach into traffic parameters as
        ``traffic_params.<name>``.
        """
        known = {"name", "base", "grid", "zip"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown sweep file key(s) {sorted(unknown)};"
                f" expected a subset of {sorted(known)}"
            )
        base = ScenarioSpec.from_dict(payload.get("base", {}))
        grid_axes = payload.get("grid")
        zip_axes = payload.get("zip")
        if grid_axes and zip_axes:
            raise ConfigError(
                "sweep file must use 'grid' or 'zip', not both"
            )
        if grid_axes:
            return Sweep.grid(base, **dict(grid_axes))
        if zip_axes:
            return Sweep.zip(base, **dict(zip_axes))
        return [base]

    @staticmethod
    def from_file(path: str) -> List[ScenarioSpec]:
        """Load and expand a JSON sweep document from disk."""
        with open(path, "r", encoding="utf-8") as fh:
            try:
                payload = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"sweep file {path!r} is not valid JSON: {exc}"
                ) from None
        if not isinstance(payload, dict):
            raise ConfigError(
                f"sweep file {path!r} must hold a JSON object"
            )
        return Sweep.from_dict(payload)
