"""Declarative experiments: scenario specs, sweeps, caching, reports.

The paper builds an FPGA platform so that NoC design-space exploration
runs at emulation speed instead of simulation speed; this package is
the layer that *spends* that speed.  It turns "run many
configurations" from hand-rolled loops into data:

* :mod:`~repro.experiments.spec` — :class:`ScenarioSpec`, a frozen,
  validated, content-hashed description of one emulation, and
  :class:`Sweep` expanders (``grid``/``zip``/``from_file``).
* :mod:`~repro.experiments.runner` — :class:`SweepRunner`, executing
  spec lists serially or on a process pool with bit-identical results
  either way, yielding :class:`ScenarioResult` records.
* :mod:`~repro.experiments.resilience` — the crash-safety layer:
  supervised workers (crash/timeout detection, retries, quarantine),
  the resumable :class:`SweepJournal` ledger, and the
  :class:`SweepReport` a sweep always returns (completed results plus
  :class:`FailureRecord` provenance, never a mid-sweep exception).
* :mod:`~repro.experiments.cache` — :class:`ResultCache`, an on-disk
  store keyed by spec hash so re-runs only execute changed scenarios
  (corrupt entries are quarantined aside, never re-trusted).
* :mod:`~repro.experiments.report` — group-by aggregation with
  mean/percentile statistics, CSV/JSON export, table rendering.

Quickstart::

    from repro.experiments import ScenarioSpec, Sweep, run_sweep

    specs = Sweep.grid(
        ScenarioSpec(traffic="burst", packets=500),
        load=(0.15, 0.30, 0.45),
        buffer_depth=(2, 4, 8),
    )
    results = run_sweep(specs, workers=4)

The ``python -m repro batch <sweep.json>`` subcommand drives the same
machinery from the command line.
"""

from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.experiments.resilience import (
    FailureRecord,
    SweepJournal,
    SweepReport,
    WorkerCrash,
)
from repro.experiments.report import (
    aggregate,
    percentile,
    render_table,
    rows_from_results,
    to_csv,
    to_json,
)
from repro.experiments.runner import (
    ScenarioResult,
    SweepRunner,
    SweepStats,
    WarmResult,
    make_ramp_checkpoint,
    run_cold_point,
    run_scenario,
    run_sweep,
    run_warm_point,
    warm_point_key,
)
from repro.experiments.spec import ScenarioSpec, Sweep

__all__ = [
    "DEFAULT_CACHE_DIR",
    "FailureRecord",
    "ResultCache",
    "ScenarioResult",
    "ScenarioSpec",
    "Sweep",
    "SweepJournal",
    "SweepReport",
    "SweepRunner",
    "SweepStats",
    "WarmResult",
    "WorkerCrash",
    "aggregate",
    "make_ramp_checkpoint",
    "percentile",
    "render_table",
    "rows_from_results",
    "run_cold_point",
    "run_scenario",
    "run_sweep",
    "run_warm_point",
    "warm_point_key",
    "to_csv",
    "to_json",
]
