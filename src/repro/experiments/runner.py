"""The sweep runner: specs in, deterministic results out.

The emulation engine runs one platform; design-space exploration runs
hundreds.  :class:`SweepRunner` is the host-side batch driver the
paper's "host PC" role implies: it takes a list of
:class:`~repro.experiments.spec.ScenarioSpec`, executes each through
``build_platform`` + :class:`~repro.core.engine.EmulationEngine`,
and reads the statistics out as :class:`ScenarioResult` records.

Three properties the sweeps rely on:

* **Determinism** — a scenario's metrics are a pure function of its
  spec: every generator seed is derived from ``(seed, spec hash, TG
  index)`` (:meth:`ScenarioSpec.stream_seed`), so serial, parallel and
  re-ordered executions produce bit-identical records.  Wall-clock
  speed is measured but kept *outside* the record.
* **Parallelism** — ``workers > 1`` fans scenarios out over a
  ``multiprocessing`` pool (one emulation per task, order-preserving),
  which is the software analogue of racking more FPGA boards: sweeps
  scale with cores because scenarios share nothing.
* **Incrementality** — with a :class:`~repro.experiments.cache.
  ResultCache` attached, already-computed scenarios are served from
  disk and only changed specs execute (the software mirror of Slide
  13's "avoids often hardware re-synthesis").

And one property the long sweeps rely on: **robustness**.  Execution
is supervised (:mod:`repro.experiments.resilience`): worker death,
timeouts and per-spec exceptions are retried and then quarantined
instead of aborting the sweep, every outcome can be journaled for
crash-safe resumption, and :meth:`SweepRunner.run` always returns a
structured :class:`~repro.experiments.resilience.SweepReport` of
completed results plus failure records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.engine import EmulationEngine
from repro.core.errors import ConfigError
from repro.core.platform import build_platform
from repro.experiments.cache import ResultCache
from repro.experiments.resilience import (
    FailureRecord,
    SweepJournal,
    SweepReport,
    run_supervised,
)
from repro.experiments.spec import ScenarioSpec

#: Bump when the metric record layout changes; stored in every record
#: so caches from older layouts read as misses, not as wrong data.
RECORD_SCHEMA = 1


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's outcome: the spec, its metrics, and provenance.

    ``metrics`` is the deterministic record (see
    :func:`repro.stats.summary.scenario_metrics`); ``wall_seconds`` and
    ``cached`` describe how this particular copy was obtained and are
    deliberately excluded from :meth:`record`, which is the canonical
    (cacheable, comparable) form.
    """

    spec: ScenarioSpec
    metrics: Mapping[str, Any]
    wall_seconds: float = 0.0
    cached: bool = False

    @property
    def key(self) -> str:
        return self.spec.key

    def record(self) -> Dict[str, Any]:
        """Canonical deterministic form: what the cache stores."""
        return {
            "schema": RECORD_SCHEMA,
            "key": self.spec.key,
            "spec": self.spec.to_dict(),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_record(
        cls,
        record: Mapping[str, Any],
        wall_seconds: float = 0.0,
        cached: bool = False,
    ) -> "ScenarioResult":
        return cls(
            spec=ScenarioSpec.from_dict(record["spec"]),
            metrics=dict(record["metrics"]),
            wall_seconds=wall_seconds,
            cached=cached,
        )


def run_scenario(
    spec: ScenarioSpec, timeout: Optional[float] = None
) -> ScenarioResult:
    """Execute one scenario end to end (pure function of the spec).

    ``timeout`` arms the engine's cooperative wall-clock budget
    (:class:`~repro.core.errors.ScenarioTimeout` on overrun); it
    bounds *how long* the run may take without touching *what* it
    computes — a finished run's record is identical with or without
    the deadline.
    """
    import itertools

    import repro.noc.flit as flit_mod

    started = time.perf_counter()  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
    # Packet ids feed the multipath routing hash and the flaky-fault
    # drop RNG.  Rewind the global allocator so the record really is a
    # pure function of the spec, independent of whatever this process
    # ran before (worker pools reuse processes; serial sweeps share
    # one).
    flit_mod._packet_ids = itertools.count()
    platform = build_platform(spec.to_platform_config())
    telemetry = None
    if spec.telemetry_windows is not None:
        from repro.telemetry.windows import WindowedMetrics

        telemetry = WindowedMetrics(platform, spec.telemetry_windows)
    result = EmulationEngine(
        platform, faults=spec.faults, telemetry=telemetry
    ).run(max_wall_seconds=timeout)
    from repro.stats.summary import scenario_metrics

    metrics = scenario_metrics(platform, result)
    return ScenarioResult(
        spec=spec,
        metrics=metrics,
        wall_seconds=time.perf_counter() - started,  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
    )


def _run_record(spec_dict: Dict[str, Any]) -> Tuple[Dict[str, Any], float]:
    """Worker entry point: specs travel as plain dicts (picklable)."""
    result = run_scenario(ScenarioSpec.from_dict(spec_dict))
    return result.record(), result.wall_seconds


@dataclass
class SweepStats:
    """Execution accounting of one :meth:`SweepRunner.run` call.

    The robustness counters (``failed``, ``quarantined``, ``retried``,
    ``parked``, ``corrupt_cache``) are provenance, like
    ``wall_seconds``: they describe how the sweep went, never what the
    surviving scenarios computed.
    """

    scenarios: int = 0
    executed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    workers: int = 1
    #: Specs that ended as FailureRecords (quarantined included).
    failed: int = 0
    #: The subset of ``failed`` parked with status "quarantined".
    quarantined: int = 0
    #: Extra execution attempts beyond each spec's first.
    retried: int = 0
    #: Specs skipped because a resumed journal holds them quarantined.
    parked: int = 0
    #: Corrupt cache entries renamed to ``<key>.corrupt`` this run.
    corrupt_cache: int = 0

    @property
    def scenarios_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.scenarios / self.wall_seconds


class SweepRunner:
    """Executes scenario lists serially or on a supervised pool.

    Parameters
    ----------
    workers:
        Process count; 1 (the default) runs in-process.  Results are
        identical either way — parallelism only changes wall-clock.
    cache:
        Optional :class:`~repro.experiments.cache.ResultCache`; hits
        skip execution, misses are stored after the run.
    progress:
        Optional callback ``(done, total, result)`` fired live as each
        scenario is retired (cache hits, duplicates and failures
        included): cache hits first, then executions as they complete,
        duplicates last.  ``result`` is a :class:`ScenarioResult` or,
        for a spec that exhausted its attempts, a
        :class:`~repro.experiments.resilience.FailureRecord`.
    retries:
        Extra attempts per failing spec (``attempts = retries + 1``).
        Because scenarios are pure functions of their specs, a retry
        that succeeds is bit-identical to a clean first run.
    timeout:
        Per-scenario wall-clock budget in seconds: cooperative
        in-engine deadline plus (pool runs only) a watchdog hard-kill
        at ``timeout + grace``.
    memory_limit_mb:
        Optional per-worker address-space ceiling (pool runs only);
        overruns fail the attempt as MemoryError or WorkerCrash.
    quarantine:
        When True (default), specs that exhaust their attempts are
        parked as ``status="quarantined"`` failure records; when
        False they are plain ``"failed"`` records.  Either way the
        sweep finishes and returns what survived.
    journal:
        Optional :class:`~repro.experiments.resilience.SweepJournal`;
        every final per-spec outcome is appended to the ledger.
    resume:
        With ``journal``, resume its ledger instead of truncating it:
        specs recorded ``done`` are served from cache (a cache miss
        re-runs them), ``quarantined`` specs stay parked without
        re-running, ``failed`` specs re-run.
    chaos:
        Fault-drill hooks forwarded to the supervised pool (see
        :mod:`repro.experiments.resilience`); test-only.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[int, int, Any], None]] = None,
        retries: int = 1,
        timeout: Optional[float] = None,
        memory_limit_mb: Optional[int] = None,
        quarantine: bool = True,
        journal: Optional["SweepJournal"] = None,
        resume: bool = False,
        chaos: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ConfigError(f"timeout must be > 0, got {timeout}")
        if resume and journal is None:
            raise ConfigError("resume=True needs a journal")
        self.workers = workers
        self.cache = cache
        self.progress = progress
        self.retries = retries
        self.timeout = timeout
        self.memory_limit_mb = memory_limit_mb
        self.quarantine = quarantine
        self.journal = journal
        self.resume = resume
        self.chaos = chaos
        self.last_stats = SweepStats()
        self._done = 0

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[ScenarioSpec]) -> SweepReport:
        """Run a sweep; a :class:`SweepReport` comes back in spec order.

        Duplicate specs (same content hash) execute once and share the
        outcome.  With a cache attached, previously stored scenarios
        are served from disk.  A failing spec never aborts the sweep:
        it is retried up to ``retries`` times and then recorded as a
        :class:`~repro.experiments.resilience.FailureRecord` in
        ``report.failures`` while every other spec's result is kept.
        """
        started = time.perf_counter()  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
        specs = list(specs)
        total = len(specs)
        results: List[Optional[ScenarioResult]] = [None] * total
        failures: Dict[int, FailureRecord] = {}
        self._done = 0
        corrupt_before = (
            self.cache.corrupt_quarantined
            if self.cache is not None
            else 0
        )

        ledger: Dict[str, Dict[str, Any]] = {}
        if self.journal is not None:
            if self.resume:
                ledger = self.journal.load()
            else:
                self.journal.reset()

        # Journal / cache pass + dedup: first occurrence of each key
        # executes; quarantined ledger entries stay parked.
        pending: List[Tuple[int, ScenarioSpec]] = []
        first_index: Dict[str, int] = {}
        duplicates: List[Tuple[int, int]] = []
        cached = parked = 0
        for i, spec in enumerate(specs):
            if not isinstance(spec, ScenarioSpec):
                raise ConfigError(
                    f"sweep item {i} is {type(spec).__name__}, not"
                    f" ScenarioSpec"
                )
            key = spec.key
            if key in first_index:
                duplicates.append((i, first_index[key]))
                continue
            first_index[key] = i
            entry = ledger.get(key)
            if entry is not None and entry["status"] == "quarantined":
                failures[i] = FailureRecord(
                    spec=spec,
                    error=str(entry.get("error", "unknown")),
                    message=str(
                        entry.get("message", "quarantined by journal")
                    ),
                    attempts=int(entry.get("attempts", 0)),
                    status="quarantined",
                )
                parked += 1
                self._tick(total, failures[i])
                continue
            if self.cache is not None:
                record = self.cache.get(spec)
                if record is not None:
                    results[i] = ScenarioResult.from_record(
                        record, cached=True
                    )
                    cached += 1
                    self._journal_done(key)
                    self._tick(total, results[i])
                    continue
            pending.append((i, spec))

        executed, retried = self._execute(
            pending, results, failures, total
        )

        for dup, first in duplicates:
            if first in failures:
                failures[dup] = failures[first]
            else:
                results[dup] = results[first]
            self._tick(total, results[dup] or failures[dup])
        final = [r for r in results if r is not None]
        failed = [failures[i] for i in sorted(failures)]
        if len(final) + len(failed) != total:  # pragma: no cover - internal invariant
            raise RuntimeError("sweep lost results")

        corrupt = (
            self.cache.corrupt_quarantined - corrupt_before
            if self.cache is not None
            else 0
        )
        self.last_stats = SweepStats(
            scenarios=total,
            executed=executed,
            cached=cached,
            wall_seconds=time.perf_counter() - started,  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
            workers=self.workers,
            failed=len(failed),
            quarantined=sum(
                1 for f in failed if f.status == "quarantined"
            ),
            retried=retried,
            parked=parked,
            corrupt_cache=corrupt,
        )
        return SweepReport(
            results=final, failures=failed, corrupt_cache=corrupt
        )

    # ------------------------------------------------------------------
    def _tick(self, total: int, result: Any) -> None:
        """One scenario accounted for: fire the live progress hook."""
        self._done += 1
        if self.progress is not None:
            self.progress(self._done, total, result)

    def _journal_done(self, key: str) -> None:
        if self.journal is not None:
            self.journal.write(key, "done", attempts=1)

    def _finish(
        self,
        index: int,
        spec: ScenarioSpec,
        result: ScenarioResult,
        results: List[Optional[ScenarioResult]],
        total: int,
    ) -> None:
        """One spec completed: store, cache, journal, report."""
        results[index] = result
        if self.cache is not None:
            self.cache.put(spec, result.record())
        self._journal_done(spec.key)
        self._tick(total, result)

    def _fail(
        self,
        index: int,
        spec: ScenarioSpec,
        error: str,
        message: str,
        attempts: int,
        failures: Dict[int, FailureRecord],
        total: int,
    ) -> None:
        """One spec out of attempts: park it and journal the outcome."""
        status = "quarantined" if self.quarantine else "failed"
        failures[index] = FailureRecord(
            spec=spec,
            error=error,
            message=message,
            attempts=attempts,
            status=status,
        )
        if self.journal is not None:
            self.journal.write(
                spec.key,
                status,
                error=error,
                message=message,
                attempts=attempts,
            )
        self._tick(total, failures[index])

    def _execute(
        self,
        pending: List[Tuple[int, ScenarioSpec]],
        results: List[Optional[ScenarioResult]],
        failures: Dict[int, FailureRecord],
        total: int,
    ) -> Tuple[int, int]:
        """Run the cache misses; fill ``results``/``failures`` in place.

        Each completed scenario is cached, journaled and reported
        *immediately* — an interrupted sweep keeps everything already
        finished, which is what makes long parallel sweeps resumable.
        Returns ``(executions dispatched, retries among them)``.
        """
        if not pending:
            return 0, 0
        if self.workers == 1 or len(pending) == 1:
            executed = 0
            for i, spec in pending:
                for attempt in range(1, self.retries + 2):
                    executed += 1
                    try:
                        result = run_scenario(
                            spec, timeout=self.timeout
                        )
                    except Exception as exc:
                        if attempt > self.retries:
                            self._fail(
                                i,
                                spec,
                                type(exc).__name__,
                                str(exc),
                                attempt,
                                failures,
                                total,
                            )
                        continue
                    self._finish(i, spec, result, results, total)
                    break
            return executed, executed - len(pending)

        dispatched = run_supervised(
            pending,
            workers=self.workers,
            retries=self.retries,
            timeout=self.timeout,
            memory_limit_mb=self.memory_limit_mb,
            chaos=self.chaos,
            on_result=lambda i, spec, result: self._finish(
                i, spec, result, results, total
            ),
            on_failure=lambda i, spec, error, message, attempts: (
                self._fail(
                    i, spec, error, message, attempts, failures, total
                )
            ),
        )
        return dispatched, dispatched - len(pending)

    # ------------------------------------------------------------------
    def run_warm(
        self,
        checkpoint,
        loads: Sequence[float],
        max_cycles: int,
    ) -> List["WarmResult"]:
        """Warm-started load sweep: one restore fork per point.

        ``checkpoint`` is a ramp checkpoint from
        :func:`make_ramp_checkpoint`; every point resumes it, applies
        its load (uniform traffic only) and measures ``max_cycles``.
        Cache keys fold the checkpoint's content hash in
        (:func:`warm_point_key`), so warm records never collide with
        cold spec-keyed records.  Runs in-process regardless of
        ``workers`` — a restore is far cheaper than a ramp, so the
        pool's serialization overhead would dominate.
        """
        started = time.perf_counter()  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
        spec = checkpoint.spec
        cp_hash = checkpoint.content_hash
        total = len(loads)
        self._done = 0
        results: List[WarmResult] = []
        executed = cached = 0
        for load in loads:
            key = warm_point_key(spec, cp_hash, load, max_cycles)
            if self.cache is not None:
                record = self.cache.get_record(key)
                if record is not None:
                    warm = record.get("warm", {})
                    result = WarmResult(
                        spec=spec,
                        checkpoint_hash=warm.get(
                            "checkpoint", cp_hash
                        ),
                        load=load,
                        max_cycles=max_cycles,
                        metrics=dict(record["metrics"]),
                        cached=True,
                    )
                    results.append(result)
                    cached += 1
                    self._tick(total, result)
                    continue
            result = run_warm_point(checkpoint, load, max_cycles)
            if self.cache is not None:
                self.cache.put_record(key, result.record())
            results.append(result)
            executed += 1
            self._tick(total, result)
        self.last_stats = SweepStats(
            scenarios=total,
            executed=executed,
            cached=cached,
            wall_seconds=time.perf_counter() - started,  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
            workers=1,
        )
        return results


def run_sweep(
    specs: Sequence[ScenarioSpec],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, int, Any], None]] = None,
    **supervision: Any,
) -> SweepReport:
    """One-shot convenience wrapper around :class:`SweepRunner`.

    ``supervision`` forwards the robustness knobs (``retries``,
    ``timeout``, ``quarantine``, ``journal``, ``resume``, ...) to the
    runner.
    """
    return SweepRunner(
        workers=workers, cache=cache, progress=progress, **supervision
    ).run(specs)


# ----------------------------------------------------------------------
# Warm-started sweeps
# ----------------------------------------------------------------------
#
# A load sweep re-emulates the same warm-up transient once per point.
# With checkpoint/restore, the shared prefix is emulated *once*: ramp
# the spec to steady state, snapshot, then fork one restore per sweep
# point and mutate only the generators' emission interval before the
# measurement horizon.  The fork is bit-identical to running the same
# ramp cold (resume parity), so warm and cold executions of one point
# produce the same metric record — they cache separately only because
# the warm key folds the checkpoint's content hash in, and collapse to
# the same numbers whenever the checkpoint genuinely is the cold
# prefix.
#
# Changing ``ScenarioSpec.load`` or ``packets`` would change the spec
# hash and with it every derived generator seed — a *different*
# scenario, not a warm continuation.  The warm path therefore keeps
# the spec (and its RNG streams) fixed and varies the operating point
# by re-deriving the uniform models' emission interval, exactly the
# quantity ``interval_for_load`` computes at build time.


def make_ramp_checkpoint(spec: ScenarioSpec, ramp_cycles: int):
    """Emulate ``spec`` for ``ramp_cycles`` and checkpoint the state.

    The run is a ``finalize=False`` chunk (telemetry/fault books stay
    open), so restores continue it bit-identically.  Use an unbounded
    spec (``packets=None``) so the ramp never exhausts its budget.
    """
    import itertools

    import repro.noc.flit as flit_mod
    from repro.checkpoint import snapshot

    flit_mod._packet_ids = itertools.count()
    platform = build_platform(spec.to_platform_config())
    telemetry = None
    if spec.telemetry_windows is not None:
        from repro.telemetry.windows import WindowedMetrics

        telemetry = WindowedMetrics(platform, spec.telemetry_windows)
    engine = EmulationEngine(
        platform, faults=spec.faults, telemetry=telemetry
    )
    engine.run(max_cycles=ramp_cycles, finalize=False)
    return snapshot(platform, spec, engine)


def _apply_point_load(platform, load: float) -> None:
    """Re-derive every uniform generator's emission interval for
    ``load`` flits/cycle/node, as ``make_traffic_model`` derives it at
    build time.  Only the uniform family has a load-equivalent
    interval; other families raise."""
    from repro.traffic.base import interval_for_load
    from repro.traffic.uniform import UniformTraffic

    for gen in platform.generators:
        model = gen.model
        if not isinstance(model, UniformTraffic):
            raise ConfigError(
                f"warm-start load sweeps need uniform traffic; TG at"
                f" node {gen.node} runs {type(model).__name__}"
            )
        interval = interval_for_load(
            model._length_range[1], load
        )
        model._interval_range = (interval, interval)


def warm_point_key(
    spec: ScenarioSpec,
    checkpoint_hash: str,
    load: float,
    max_cycles: int,
) -> str:
    """Cache key of one warm-started point.

    Folds the ramp checkpoint's content hash in, so warm results can
    never shadow (or be shadowed by) cold spec-keyed records, and two
    different ramps cache separately.
    """
    import hashlib

    from repro.util import canonical_json_bytes

    payload = {
        "schema": RECORD_SCHEMA,
        "spec_key": spec.key,
        "checkpoint": checkpoint_hash,
        "point": {"load": load, "max_cycles": max_cycles},
    }
    blob = canonical_json_bytes(payload)
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass(frozen=True)
class WarmResult:
    """One warm-started sweep point: provenance plus metrics."""

    spec: ScenarioSpec
    checkpoint_hash: str
    load: float
    max_cycles: int
    metrics: Mapping[str, Any]
    wall_seconds: float = 0.0
    cached: bool = False

    @property
    def key(self) -> str:
        return warm_point_key(
            self.spec, self.checkpoint_hash, self.load,
            self.max_cycles,
        )

    def record(self) -> Dict[str, Any]:
        """Canonical deterministic form: what the cache stores."""
        return {
            "schema": RECORD_SCHEMA,
            "key": self.key,
            "spec": self.spec.to_dict(),
            "warm": {
                "checkpoint": self.checkpoint_hash,
                "load": self.load,
                "max_cycles": self.max_cycles,
            },
            "metrics": dict(self.metrics),
        }


def run_warm_point(
    checkpoint, load: float, max_cycles: int
) -> WarmResult:
    """Fork one restore off ``checkpoint`` and measure ``max_cycles``
    at operating point ``load``."""
    from repro.checkpoint import restore
    from repro.stats.summary import scenario_metrics

    started = time.perf_counter()  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
    platform, engine = restore(checkpoint)
    _apply_point_load(platform, load)
    result = engine.run(max_cycles=max_cycles)
    metrics = scenario_metrics(platform, result)
    return WarmResult(
        spec=checkpoint.spec,
        checkpoint_hash=checkpoint.content_hash,
        load=load,
        max_cycles=max_cycles,
        metrics=metrics,
        wall_seconds=time.perf_counter() - started,  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
    )


def run_cold_point(
    spec: ScenarioSpec,
    ramp_cycles: int,
    load: float,
    max_cycles: int,
) -> WarmResult:
    """The cold twin of one warm point: re-emulate the whole ramp,
    then the measurement horizon, with no checkpoint involved.

    By resume parity its metrics are bit-identical to
    :func:`run_warm_point` on a checkpoint of the same ramp — the
    bench pins that claim — and its wall clock prices what the warm
    path saves (``checkpoint_hash`` is empty: nothing was restored).
    """
    import itertools

    import repro.noc.flit as flit_mod
    from repro.stats.summary import scenario_metrics

    started = time.perf_counter()  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
    flit_mod._packet_ids = itertools.count()
    platform = build_platform(spec.to_platform_config())
    telemetry = None
    if spec.telemetry_windows is not None:
        from repro.telemetry.windows import WindowedMetrics

        telemetry = WindowedMetrics(platform, spec.telemetry_windows)
    engine = EmulationEngine(
        platform, faults=spec.faults, telemetry=telemetry
    )
    engine.run(max_cycles=ramp_cycles, finalize=False)
    _apply_point_load(platform, load)
    result = engine.run(max_cycles=max_cycles)
    metrics = scenario_metrics(platform, result)
    return WarmResult(
        spec=spec,
        checkpoint_hash="",
        load=load,
        max_cycles=max_cycles,
        metrics=metrics,
        wall_seconds=time.perf_counter() - started,  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
    )
