"""The sweep runner: specs in, deterministic results out.

The emulation engine runs one platform; design-space exploration runs
hundreds.  :class:`SweepRunner` is the host-side batch driver the
paper's "host PC" role implies: it takes a list of
:class:`~repro.experiments.spec.ScenarioSpec`, executes each through
``build_platform`` + :class:`~repro.core.engine.EmulationEngine`,
and reads the statistics out as :class:`ScenarioResult` records.

Three properties the sweeps rely on:

* **Determinism** — a scenario's metrics are a pure function of its
  spec: every generator seed is derived from ``(seed, spec hash, TG
  index)`` (:meth:`ScenarioSpec.stream_seed`), so serial, parallel and
  re-ordered executions produce bit-identical records.  Wall-clock
  speed is measured but kept *outside* the record.
* **Parallelism** — ``workers > 1`` fans scenarios out over a
  ``multiprocessing`` pool (one emulation per task, order-preserving),
  which is the software analogue of racking more FPGA boards: sweeps
  scale with cores because scenarios share nothing.
* **Incrementality** — with a :class:`~repro.experiments.cache.
  ResultCache` attached, already-computed scenarios are served from
  disk and only changed specs execute (the software mirror of Slide
  13's "avoids often hardware re-synthesis").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.engine import EmulationEngine
from repro.core.errors import ConfigError
from repro.core.platform import build_platform
from repro.experiments.cache import ResultCache
from repro.experiments.spec import ScenarioSpec

#: Bump when the metric record layout changes; stored in every record
#: so caches from older layouts read as misses, not as wrong data.
RECORD_SCHEMA = 1


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's outcome: the spec, its metrics, and provenance.

    ``metrics`` is the deterministic record (see
    :func:`repro.stats.summary.scenario_metrics`); ``wall_seconds`` and
    ``cached`` describe how this particular copy was obtained and are
    deliberately excluded from :meth:`record`, which is the canonical
    (cacheable, comparable) form.
    """

    spec: ScenarioSpec
    metrics: Mapping[str, Any]
    wall_seconds: float = 0.0
    cached: bool = False

    @property
    def key(self) -> str:
        return self.spec.key

    def record(self) -> Dict[str, Any]:
        """Canonical deterministic form: what the cache stores."""
        return {
            "schema": RECORD_SCHEMA,
            "key": self.spec.key,
            "spec": self.spec.to_dict(),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_record(
        cls,
        record: Mapping[str, Any],
        wall_seconds: float = 0.0,
        cached: bool = False,
    ) -> "ScenarioResult":
        return cls(
            spec=ScenarioSpec.from_dict(record["spec"]),
            metrics=dict(record["metrics"]),
            wall_seconds=wall_seconds,
            cached=cached,
        )


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario end to end (pure function of the spec)."""
    import itertools

    import repro.noc.flit as flit_mod

    started = time.perf_counter()
    # Packet ids feed the multipath routing hash and the flaky-fault
    # drop RNG.  Rewind the global allocator so the record really is a
    # pure function of the spec, independent of whatever this process
    # ran before (worker pools reuse processes; serial sweeps share
    # one).
    flit_mod._packet_ids = itertools.count()
    platform = build_platform(spec.to_platform_config())
    telemetry = None
    if spec.telemetry_windows is not None:
        from repro.telemetry.windows import WindowedMetrics

        telemetry = WindowedMetrics(platform, spec.telemetry_windows)
    result = EmulationEngine(
        platform, faults=spec.faults, telemetry=telemetry
    ).run()
    from repro.stats.summary import scenario_metrics

    metrics = scenario_metrics(platform, result)
    return ScenarioResult(
        spec=spec,
        metrics=metrics,
        wall_seconds=time.perf_counter() - started,
    )


def _run_record(spec_dict: Dict[str, Any]) -> Tuple[Dict[str, Any], float]:
    """Worker entry point: specs travel as plain dicts (picklable)."""
    result = run_scenario(ScenarioSpec.from_dict(spec_dict))
    return result.record(), result.wall_seconds


@dataclass
class SweepStats:
    """Execution accounting of one :meth:`SweepRunner.run` call."""

    scenarios: int = 0
    executed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    workers: int = 1

    @property
    def scenarios_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.scenarios / self.wall_seconds


class SweepRunner:
    """Executes scenario lists serially or on a process pool.

    Parameters
    ----------
    workers:
        Process count; 1 (the default) runs in-process.  Results are
        identical either way — parallelism only changes wall-clock.
    cache:
        Optional :class:`~repro.experiments.cache.ResultCache`; hits
        skip execution, misses are stored after the run.
    progress:
        Optional callback ``(done, total, result)`` fired live as each
        scenario is retired (cache hits and duplicates included):
        cache hits first, then executions in submission order as they
        complete, duplicates last.  The returned list is in spec order.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[
            Callable[[int, int, ScenarioResult], None]
        ] = None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        self.progress = progress
        self.last_stats = SweepStats()
        self._done = 0

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[ScenarioSpec]) -> List[ScenarioResult]:
        """Run a sweep; results come back in spec order.

        Duplicate specs (same content hash) execute once and share the
        result.  With a cache attached, previously stored scenarios
        are served from disk.
        """
        started = time.perf_counter()
        specs = list(specs)
        total = len(specs)
        results: List[Optional[ScenarioResult]] = [None] * total
        self._done = 0

        # Cache pass + dedup: first occurrence of each key executes.
        pending: List[Tuple[int, ScenarioSpec]] = []
        first_index: Dict[str, int] = {}
        duplicates: List[Tuple[int, int]] = []
        cached = 0
        for i, spec in enumerate(specs):
            if not isinstance(spec, ScenarioSpec):
                raise ConfigError(
                    f"sweep item {i} is {type(spec).__name__}, not"
                    f" ScenarioSpec"
                )
            key = spec.key
            if key in first_index:
                duplicates.append((i, first_index[key]))
                continue
            first_index[key] = i
            if self.cache is not None:
                record = self.cache.get(spec)
                if record is not None:
                    results[i] = ScenarioResult.from_record(
                        record, cached=True
                    )
                    cached += 1
                    self._tick(total, results[i])
                    continue
            pending.append((i, spec))

        executed = self._execute(pending, results, total)

        for dup, first in duplicates:
            results[dup] = results[first]
            self._tick(total, results[dup])
        final = [r for r in results if r is not None]
        if len(final) != total:  # pragma: no cover - internal invariant
            raise RuntimeError("sweep lost results")

        self.last_stats = SweepStats(
            scenarios=total,
            executed=executed,
            cached=cached,
            wall_seconds=time.perf_counter() - started,
            workers=self.workers,
        )
        return final

    # ------------------------------------------------------------------
    def _tick(self, total: int, result: ScenarioResult) -> None:
        """One scenario accounted for: fire the live progress hook."""
        self._done += 1
        if self.progress is not None:
            self.progress(self._done, total, result)

    def _execute(
        self,
        pending: List[Tuple[int, ScenarioSpec]],
        results: List[Optional[ScenarioResult]],
        total: int,
    ) -> int:
        """Run the cache misses; fill ``results`` in place.

        Each completed scenario is cached and reported *immediately* —
        an interrupted sweep keeps everything already finished, which
        is what makes long parallel sweeps resumable.
        """
        if not pending:
            return 0
        if self.workers == 1 or len(pending) == 1:
            for i, spec in pending:
                result = run_scenario(spec)
                results[i] = result
                if self.cache is not None:
                    self.cache.put(spec, result.record())
                self._tick(total, result)
            return len(pending)

        import multiprocessing

        payloads = [spec.to_dict() for _, spec in pending]
        with multiprocessing.Pool(
            processes=min(self.workers, len(pending))
        ) as pool:
            outcomes = pool.imap(_run_record, payloads, chunksize=1)
            for (i, spec), (record, wall) in zip(pending, outcomes):
                results[i] = ScenarioResult.from_record(
                    record, wall_seconds=wall
                )
                if self.cache is not None:
                    self.cache.put(spec, record)
                self._tick(total, results[i])
        return len(pending)


def run_sweep(
    specs: Sequence[ScenarioSpec],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, int, ScenarioResult], None]] = None,
) -> List[ScenarioResult]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        workers=workers, cache=cache, progress=progress
    ).run(specs)
