"""The sweep runner: specs in, deterministic results out.

The emulation engine runs one platform; design-space exploration runs
hundreds.  :class:`SweepRunner` is the host-side batch driver the
paper's "host PC" role implies: it takes a list of
:class:`~repro.experiments.spec.ScenarioSpec`, executes each through
``build_platform`` + :class:`~repro.core.engine.EmulationEngine`,
and reads the statistics out as :class:`ScenarioResult` records.

Three properties the sweeps rely on:

* **Determinism** — a scenario's metrics are a pure function of its
  spec: every generator seed is derived from ``(seed, spec hash, TG
  index)`` (:meth:`ScenarioSpec.stream_seed`), so serial, parallel and
  re-ordered executions produce bit-identical records.  Wall-clock
  speed is measured but kept *outside* the record.
* **Parallelism** — ``workers > 1`` fans scenarios out over a
  ``multiprocessing`` pool (one emulation per task, order-preserving),
  which is the software analogue of racking more FPGA boards: sweeps
  scale with cores because scenarios share nothing.
* **Incrementality** — with a :class:`~repro.experiments.cache.
  ResultCache` attached, already-computed scenarios are served from
  disk and only changed specs execute (the software mirror of Slide
  13's "avoids often hardware re-synthesis").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.engine import EmulationEngine
from repro.core.errors import ConfigError
from repro.core.platform import build_platform
from repro.experiments.cache import ResultCache
from repro.experiments.spec import ScenarioSpec

#: Bump when the metric record layout changes; stored in every record
#: so caches from older layouts read as misses, not as wrong data.
RECORD_SCHEMA = 1


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's outcome: the spec, its metrics, and provenance.

    ``metrics`` is the deterministic record (see
    :func:`repro.stats.summary.scenario_metrics`); ``wall_seconds`` and
    ``cached`` describe how this particular copy was obtained and are
    deliberately excluded from :meth:`record`, which is the canonical
    (cacheable, comparable) form.
    """

    spec: ScenarioSpec
    metrics: Mapping[str, Any]
    wall_seconds: float = 0.0
    cached: bool = False

    @property
    def key(self) -> str:
        return self.spec.key

    def record(self) -> Dict[str, Any]:
        """Canonical deterministic form: what the cache stores."""
        return {
            "schema": RECORD_SCHEMA,
            "key": self.spec.key,
            "spec": self.spec.to_dict(),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_record(
        cls,
        record: Mapping[str, Any],
        wall_seconds: float = 0.0,
        cached: bool = False,
    ) -> "ScenarioResult":
        return cls(
            spec=ScenarioSpec.from_dict(record["spec"]),
            metrics=dict(record["metrics"]),
            wall_seconds=wall_seconds,
            cached=cached,
        )


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario end to end (pure function of the spec)."""
    import itertools

    import repro.noc.flit as flit_mod

    started = time.perf_counter()  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
    # Packet ids feed the multipath routing hash and the flaky-fault
    # drop RNG.  Rewind the global allocator so the record really is a
    # pure function of the spec, independent of whatever this process
    # ran before (worker pools reuse processes; serial sweeps share
    # one).
    flit_mod._packet_ids = itertools.count()
    platform = build_platform(spec.to_platform_config())
    telemetry = None
    if spec.telemetry_windows is not None:
        from repro.telemetry.windows import WindowedMetrics

        telemetry = WindowedMetrics(platform, spec.telemetry_windows)
    result = EmulationEngine(
        platform, faults=spec.faults, telemetry=telemetry
    ).run()
    from repro.stats.summary import scenario_metrics

    metrics = scenario_metrics(platform, result)
    return ScenarioResult(
        spec=spec,
        metrics=metrics,
        wall_seconds=time.perf_counter() - started,  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
    )


def _run_record(spec_dict: Dict[str, Any]) -> Tuple[Dict[str, Any], float]:
    """Worker entry point: specs travel as plain dicts (picklable)."""
    result = run_scenario(ScenarioSpec.from_dict(spec_dict))
    return result.record(), result.wall_seconds


@dataclass
class SweepStats:
    """Execution accounting of one :meth:`SweepRunner.run` call."""

    scenarios: int = 0
    executed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    workers: int = 1

    @property
    def scenarios_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.scenarios / self.wall_seconds


class SweepRunner:
    """Executes scenario lists serially or on a process pool.

    Parameters
    ----------
    workers:
        Process count; 1 (the default) runs in-process.  Results are
        identical either way — parallelism only changes wall-clock.
    cache:
        Optional :class:`~repro.experiments.cache.ResultCache`; hits
        skip execution, misses are stored after the run.
    progress:
        Optional callback ``(done, total, result)`` fired live as each
        scenario is retired (cache hits and duplicates included):
        cache hits first, then executions in submission order as they
        complete, duplicates last.  The returned list is in spec order.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[
            Callable[[int, int, ScenarioResult], None]
        ] = None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        self.progress = progress
        self.last_stats = SweepStats()
        self._done = 0

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[ScenarioSpec]) -> List[ScenarioResult]:
        """Run a sweep; results come back in spec order.

        Duplicate specs (same content hash) execute once and share the
        result.  With a cache attached, previously stored scenarios
        are served from disk.
        """
        started = time.perf_counter()  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
        specs = list(specs)
        total = len(specs)
        results: List[Optional[ScenarioResult]] = [None] * total
        self._done = 0

        # Cache pass + dedup: first occurrence of each key executes.
        pending: List[Tuple[int, ScenarioSpec]] = []
        first_index: Dict[str, int] = {}
        duplicates: List[Tuple[int, int]] = []
        cached = 0
        for i, spec in enumerate(specs):
            if not isinstance(spec, ScenarioSpec):
                raise ConfigError(
                    f"sweep item {i} is {type(spec).__name__}, not"
                    f" ScenarioSpec"
                )
            key = spec.key
            if key in first_index:
                duplicates.append((i, first_index[key]))
                continue
            first_index[key] = i
            if self.cache is not None:
                record = self.cache.get(spec)
                if record is not None:
                    results[i] = ScenarioResult.from_record(
                        record, cached=True
                    )
                    cached += 1
                    self._tick(total, results[i])
                    continue
            pending.append((i, spec))

        executed = self._execute(pending, results, total)

        for dup, first in duplicates:
            results[dup] = results[first]
            self._tick(total, results[dup])
        final = [r for r in results if r is not None]
        if len(final) != total:  # pragma: no cover - internal invariant
            raise RuntimeError("sweep lost results")

        self.last_stats = SweepStats(
            scenarios=total,
            executed=executed,
            cached=cached,
            wall_seconds=time.perf_counter() - started,  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
            workers=self.workers,
        )
        return final

    # ------------------------------------------------------------------
    def _tick(self, total: int, result: ScenarioResult) -> None:
        """One scenario accounted for: fire the live progress hook."""
        self._done += 1
        if self.progress is not None:
            self.progress(self._done, total, result)

    def _execute(
        self,
        pending: List[Tuple[int, ScenarioSpec]],
        results: List[Optional[ScenarioResult]],
        total: int,
    ) -> int:
        """Run the cache misses; fill ``results`` in place.

        Each completed scenario is cached and reported *immediately* —
        an interrupted sweep keeps everything already finished, which
        is what makes long parallel sweeps resumable.
        """
        if not pending:
            return 0
        if self.workers == 1 or len(pending) == 1:
            for i, spec in pending:
                result = run_scenario(spec)
                results[i] = result
                if self.cache is not None:
                    self.cache.put(spec, result.record())
                self._tick(total, result)
            return len(pending)

        import multiprocessing

        payloads = [spec.to_dict() for _, spec in pending]
        with multiprocessing.Pool(
            processes=min(self.workers, len(pending))
        ) as pool:
            outcomes = pool.imap(_run_record, payloads, chunksize=1)
            for (i, spec), (record, wall) in zip(pending, outcomes):
                results[i] = ScenarioResult.from_record(
                    record, wall_seconds=wall
                )
                if self.cache is not None:
                    self.cache.put(spec, record)
                self._tick(total, results[i])
        return len(pending)

    # ------------------------------------------------------------------
    def run_warm(
        self,
        checkpoint,
        loads: Sequence[float],
        max_cycles: int,
    ) -> List["WarmResult"]:
        """Warm-started load sweep: one restore fork per point.

        ``checkpoint`` is a ramp checkpoint from
        :func:`make_ramp_checkpoint`; every point resumes it, applies
        its load (uniform traffic only) and measures ``max_cycles``.
        Cache keys fold the checkpoint's content hash in
        (:func:`warm_point_key`), so warm records never collide with
        cold spec-keyed records.  Runs in-process regardless of
        ``workers`` — a restore is far cheaper than a ramp, so the
        pool's serialization overhead would dominate.
        """
        started = time.perf_counter()  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
        spec = checkpoint.spec
        cp_hash = checkpoint.content_hash
        total = len(loads)
        self._done = 0
        results: List[WarmResult] = []
        executed = cached = 0
        for load in loads:
            key = warm_point_key(spec, cp_hash, load, max_cycles)
            if self.cache is not None:
                record = self.cache.get_record(key)
                if record is not None:
                    warm = record.get("warm", {})
                    result = WarmResult(
                        spec=spec,
                        checkpoint_hash=warm.get(
                            "checkpoint", cp_hash
                        ),
                        load=load,
                        max_cycles=max_cycles,
                        metrics=dict(record["metrics"]),
                        cached=True,
                    )
                    results.append(result)
                    cached += 1
                    self._tick(total, result)
                    continue
            result = run_warm_point(checkpoint, load, max_cycles)
            if self.cache is not None:
                self.cache.put_record(key, result.record())
            results.append(result)
            executed += 1
            self._tick(total, result)
        self.last_stats = SweepStats(
            scenarios=total,
            executed=executed,
            cached=cached,
            wall_seconds=time.perf_counter() - started,  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
            workers=1,
        )
        return results


def run_sweep(
    specs: Sequence[ScenarioSpec],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, int, ScenarioResult], None]] = None,
) -> List[ScenarioResult]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        workers=workers, cache=cache, progress=progress
    ).run(specs)


# ----------------------------------------------------------------------
# Warm-started sweeps
# ----------------------------------------------------------------------
#
# A load sweep re-emulates the same warm-up transient once per point.
# With checkpoint/restore, the shared prefix is emulated *once*: ramp
# the spec to steady state, snapshot, then fork one restore per sweep
# point and mutate only the generators' emission interval before the
# measurement horizon.  The fork is bit-identical to running the same
# ramp cold (resume parity), so warm and cold executions of one point
# produce the same metric record — they cache separately only because
# the warm key folds the checkpoint's content hash in, and collapse to
# the same numbers whenever the checkpoint genuinely is the cold
# prefix.
#
# Changing ``ScenarioSpec.load`` or ``packets`` would change the spec
# hash and with it every derived generator seed — a *different*
# scenario, not a warm continuation.  The warm path therefore keeps
# the spec (and its RNG streams) fixed and varies the operating point
# by re-deriving the uniform models' emission interval, exactly the
# quantity ``interval_for_load`` computes at build time.


def make_ramp_checkpoint(spec: ScenarioSpec, ramp_cycles: int):
    """Emulate ``spec`` for ``ramp_cycles`` and checkpoint the state.

    The run is a ``finalize=False`` chunk (telemetry/fault books stay
    open), so restores continue it bit-identically.  Use an unbounded
    spec (``packets=None``) so the ramp never exhausts its budget.
    """
    import itertools

    import repro.noc.flit as flit_mod
    from repro.checkpoint import snapshot

    flit_mod._packet_ids = itertools.count()
    platform = build_platform(spec.to_platform_config())
    telemetry = None
    if spec.telemetry_windows is not None:
        from repro.telemetry.windows import WindowedMetrics

        telemetry = WindowedMetrics(platform, spec.telemetry_windows)
    engine = EmulationEngine(
        platform, faults=spec.faults, telemetry=telemetry
    )
    engine.run(max_cycles=ramp_cycles, finalize=False)
    return snapshot(platform, spec, engine)


def _apply_point_load(platform, load: float) -> None:
    """Re-derive every uniform generator's emission interval for
    ``load`` flits/cycle/node, as ``make_traffic_model`` derives it at
    build time.  Only the uniform family has a load-equivalent
    interval; other families raise."""
    from repro.traffic.base import interval_for_load
    from repro.traffic.uniform import UniformTraffic

    for gen in platform.generators:
        model = gen.model
        if not isinstance(model, UniformTraffic):
            raise ConfigError(
                f"warm-start load sweeps need uniform traffic; TG at"
                f" node {gen.node} runs {type(model).__name__}"
            )
        interval = interval_for_load(
            model._length_range[1], load
        )
        model._interval_range = (interval, interval)


def warm_point_key(
    spec: ScenarioSpec,
    checkpoint_hash: str,
    load: float,
    max_cycles: int,
) -> str:
    """Cache key of one warm-started point.

    Folds the ramp checkpoint's content hash in, so warm results can
    never shadow (or be shadowed by) cold spec-keyed records, and two
    different ramps cache separately.
    """
    import hashlib

    from repro.util import canonical_json_bytes

    payload = {
        "schema": RECORD_SCHEMA,
        "spec_key": spec.key,
        "checkpoint": checkpoint_hash,
        "point": {"load": load, "max_cycles": max_cycles},
    }
    blob = canonical_json_bytes(payload)
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass(frozen=True)
class WarmResult:
    """One warm-started sweep point: provenance plus metrics."""

    spec: ScenarioSpec
    checkpoint_hash: str
    load: float
    max_cycles: int
    metrics: Mapping[str, Any]
    wall_seconds: float = 0.0
    cached: bool = False

    @property
    def key(self) -> str:
        return warm_point_key(
            self.spec, self.checkpoint_hash, self.load,
            self.max_cycles,
        )

    def record(self) -> Dict[str, Any]:
        """Canonical deterministic form: what the cache stores."""
        return {
            "schema": RECORD_SCHEMA,
            "key": self.key,
            "spec": self.spec.to_dict(),
            "warm": {
                "checkpoint": self.checkpoint_hash,
                "load": self.load,
                "max_cycles": self.max_cycles,
            },
            "metrics": dict(self.metrics),
        }


def run_warm_point(
    checkpoint, load: float, max_cycles: int
) -> WarmResult:
    """Fork one restore off ``checkpoint`` and measure ``max_cycles``
    at operating point ``load``."""
    from repro.checkpoint import restore
    from repro.stats.summary import scenario_metrics

    started = time.perf_counter()  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
    platform, engine = restore(checkpoint)
    _apply_point_load(platform, load)
    result = engine.run(max_cycles=max_cycles)
    metrics = scenario_metrics(platform, result)
    return WarmResult(
        spec=checkpoint.spec,
        checkpoint_hash=checkpoint.content_hash,
        load=load,
        max_cycles=max_cycles,
        metrics=metrics,
        wall_seconds=time.perf_counter() - started,  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
    )


def run_cold_point(
    spec: ScenarioSpec,
    ramp_cycles: int,
    load: float,
    max_cycles: int,
) -> WarmResult:
    """The cold twin of one warm point: re-emulate the whole ramp,
    then the measurement horizon, with no checkpoint involved.

    By resume parity its metrics are bit-identical to
    :func:`run_warm_point` on a checkpoint of the same ramp — the
    bench pins that claim — and its wall clock prices what the warm
    path saves (``checkpoint_hash`` is empty: nothing was restored).
    """
    import itertools

    import repro.noc.flit as flit_mod
    from repro.stats.summary import scenario_metrics

    started = time.perf_counter()  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
    flit_mod._packet_ids = itertools.count()
    platform = build_platform(spec.to_platform_config())
    telemetry = None
    if spec.telemetry_windows is not None:
        from repro.telemetry.windows import WindowedMetrics

        telemetry = WindowedMetrics(platform, spec.telemetry_windows)
    engine = EmulationEngine(
        platform, faults=spec.faults, telemetry=telemetry
    )
    engine.run(max_cycles=ramp_cycles, finalize=False)
    _apply_point_load(platform, load)
    result = engine.run(max_cycles=max_cycles)
    metrics = scenario_metrics(platform, result)
    return WarmResult(
        spec=spec,
        checkpoint_hash="",
        load=load,
        max_cycles=max_cycles,
        metrics=metrics,
        wall_seconds=time.perf_counter() - started,  # repro: allow[wall-clock] wall-time telemetry only; never enters a hashed or cached record
    )
