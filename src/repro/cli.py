"""Command-line interface.

The hardware platform is driven from a host PC; this CLI is that
host-side tooling for the Python reproduction::

    python -m repro run    --traffic burst --packets 2000
    python -m repro synth  --receptors stochastic
    python -m repro speed  --packets 500
    python -m repro sweep  --metric latency

``run`` executes one emulation through the full six-step flow and
prints the monitor's final report; ``synth`` prints the Table 1-style
utilisation report only; ``speed`` measures the three engines and
prints the Table 2-style comparison; ``sweep`` regenerates the
packets-per-burst series of the trace-driven figures.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.flow import EmulationFlow
from repro.core.platform import build_platform
from repro.fpga.synthesis import synthesize


def _add_platform_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--traffic",
        default="uniform",
        choices=("uniform", "burst", "poisson", "onoff", "trace"),
        help="traffic model family (default: uniform)",
    )
    parser.add_argument(
        "--load",
        type=float,
        default=0.45,
        help="offered load per generator (default: 0.45, the paper's)",
    )
    parser.add_argument(
        "--length",
        type=int,
        default=8,
        help="packet length in flits (default: 8)",
    )
    parser.add_argument(
        "--routing",
        default="overlap",
        choices=("overlap", "disjoint", "split"),
        help="paper route case (default: overlap)",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=4,
        help="switch buffer depth in flits (default: 4)",
    )
    parser.add_argument(
        "--receptors",
        default="tracedriven",
        choices=("tracedriven", "stochastic"),
        help="receptor kind (default: tracedriven)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="LFSR seed (default: 1)"
    )


def _config_from(args: argparse.Namespace, max_packets: Optional[int]):
    return paper_platform_config(
        traffic=args.traffic,
        load=args.load,
        length=args.length,
        max_packets=max_packets,
        routing_case=args.routing,
        receptor_kind=args.receptors,
        buffer_depth=args.depth,
        seed=args.seed,
    )


def cmd_run(args: argparse.Namespace) -> int:
    config = _config_from(args, args.packets)
    flow = EmulationFlow()
    report = flow.run(config)
    print(report.report_text)
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    config = _config_from(args, None)
    report = synthesize(config, auto_part=args.auto_part)
    print(report.render())
    return 0 if report.fits else 1


def cmd_speed(args: argparse.Namespace) -> int:
    from repro.baselines.speed import measure_engine_speeds, speed_report

    measurements = measure_engine_speeds(
        emulation_packets=args.packets,
        tlm_packets=max(10, args.packets // 5),
        rtl_packets=max(5, args.packets // 40),
    )
    print(speed_report(measurements).render())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    print(f"packets/burst  {args.metric}")
    for ppb in (1, 2, 4, 8, 16, 32, 64):
        platform = build_platform(
            paper_platform_config(
                traffic="trace",
                max_packets=None,
                routing_case=args.routing,
                traffic_params={
                    "n_bursts": max(2, args.budget // ppb),
                    "packets_per_burst": ppb,
                },
                seed=args.seed,
            )
        )
        EmulationEngine(platform).run()
        if args.metric == "latency":
            value = f"{platform.mean_latency():.1f}"
        else:
            value = f"{platform.congestion_rate():.4f}"
        print(f"{ppb:>13}  {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "NoC emulation framework (Genko et al., DATE 2005"
            " reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="run one emulation through the full flow"
    )
    _add_platform_options(run_parser)
    run_parser.add_argument(
        "--packets",
        type=int,
        default=2000,
        help="packet budget per generator (default: 2000)",
    )
    run_parser.set_defaults(func=cmd_run)

    synth_parser = sub.add_parser(
        "synth", help="print the FPGA utilisation report"
    )
    _add_platform_options(synth_parser)
    synth_parser.add_argument(
        "--auto-part",
        action="store_true",
        help="pick the smallest fitting Virtex-2 Pro part",
    )
    synth_parser.set_defaults(func=cmd_synth)

    speed_parser = sub.add_parser(
        "speed", help="measure the engines and print the speed table"
    )
    speed_parser.add_argument(
        "--packets",
        type=int,
        default=500,
        help="fast-engine packet budget per flow (default: 500)",
    )
    speed_parser.set_defaults(func=cmd_speed)

    sweep_parser = sub.add_parser(
        "sweep", help="packets-per-burst sweep (trace-driven figures)"
    )
    sweep_parser.add_argument(
        "--metric",
        default="latency",
        choices=("latency", "congestion"),
        help="series to print (default: latency)",
    )
    sweep_parser.add_argument(
        "--routing",
        default="overlap",
        choices=("overlap", "disjoint", "split"),
    )
    sweep_parser.add_argument("--budget", type=int, default=512)
    sweep_parser.add_argument("--seed", type=int, default=1)
    sweep_parser.set_defaults(func=cmd_sweep)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module execution path
    raise SystemExit(main())
