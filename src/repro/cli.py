"""Command-line interface.

The hardware platform is driven from a host PC; this CLI is that
host-side tooling for the Python reproduction::

    python -m repro run    --traffic burst --packets 2000
    python -m repro run    --topology mesh:4:4 --traffic poisson
    python -m repro run    --profile --profile-out run.pstats
    python -m repro run    --progress --windows 1000 --windows-out w.json
    python -m repro run    --trace flits.jsonl --trace-perfetto t.json
    python -m repro synth  --receptors stochastic
    python -m repro speed  --packets 500
    python -m repro sweep  --metric latency
    python -m repro batch  sweep.json --workers 4 --progress

``run`` executes one emulation through the full six-step flow and
prints the monitor's final report; ``synth`` prints the Table 1-style
utilisation report only; ``speed`` measures the three engines and
prints the Table 2-style comparison; ``sweep`` regenerates the
packets-per-burst series of the trace-driven figures; ``batch``
expands a JSON sweep document into scenarios and runs them through the
experiment runner (parallel workers, on-disk result cache, aggregated
report — see ``repro.experiments``).

Robustness flags of ``batch`` (see ``repro.experiments.resilience``)::

    python -m repro batch sweep.json --workers 4 --retries 2 \
                          --scenario-timeout 120
    python -m repro batch sweep.json --resume-journal

* ``--retries N`` — extra attempts per failing scenario (default 1).
  Worker crashes (SIGKILL, OOM) and timeouts are retried like
  exceptions; a retry that succeeds is bit-identical to a clean run.
* ``--scenario-timeout SECONDS`` — per-scenario wall-clock budget:
  cooperative in-engine deadline, backed (parallel runs) by a
  watchdog that hard-kills wedged workers past the grace period.
* ``--quarantine / --no-quarantine`` — park specs that exhaust their
  attempts as ``quarantined`` failure records (default) or plain
  ``failed`` ones; either way the sweep finishes, prints every
  surviving result and exits 1 if anything failed.
* ``--resume-journal`` — resume the sweep's append-only outcome
  journal (written next to the cache on every journaled run) after a
  process-level crash: specs recorded ``done`` are served from the
  cache, ``quarantined`` ones stay parked, everything else re-runs.
  Needs the cache (incompatible with ``--no-cache``).
* ``--memory-limit MB`` — per-worker address-space ceiling; overruns
  fail the attempt instead of stalling the host.

Telemetry flags of ``run`` (see ``repro.telemetry``):

* ``--windows N`` collects the boundary-differenced window series
  (window length N cycles) and prints it in the report;
  ``--windows-out FILE`` additionally writes it as JSON.
* ``--trace FILE`` streams every flit event (inject/hop/eject plus
  fault aborts) as JSON lines; ``--trace-perfetto FILE`` exports the
  same events as a Chrome/Perfetto ``trace_event`` file.
* ``--progress`` prints live run progress (cycles/sec, packets in
  flight, budget fraction) to stderr; on ``batch`` it prints the
  per-scenario retirement lines with wall-clock seconds.
* ``--profile-out FILE`` dumps the raw cProfile stats of a profiled
  run for ``pstats``/snakeviz (implies ``--profile``).

Checkpoint flags of ``run`` (see ``repro.checkpoint``)::

    python -m repro run --packets 5000 --checkpoint-out cp.json
    python -m repro run --packets 5000 --checkpoint-out cp.json \
                        --checkpoint-every 10000
    python -m repro run --packets 5000 --resume cp.json

* ``--checkpoint-out FILE`` snapshots the complete emulation state
  (versioned, content-hashed JSON) when the run stops; with
  ``--checkpoint-every N`` the file is atomically rewritten every N
  emulated cycles, so a crashed or killed long run resumes from the
  last boundary instead of cycle 0.
* ``--resume FILE`` restores a checkpoint and continues it —
  bit-identically to the uninterrupted run.  The scenario flags must
  describe the *same* spec (guarded by a content-hash check), and the
  checkpoint's own fault schedule and telemetry are restored with it,
  so ``--fail-*``/``--heal-*``/``--windows`` are rejected.

Static analysis (see ``repro.analysis``)::

    python -m repro lint
    python -m repro lint src/repro --format json
    python -m repro lint --rule state-coverage --rule wall-clock
    python -m repro lint --list-rules

``lint`` runs the determinism/invariant checker over Python sources
and exits 1 if any unsuppressed finding remains (2 on usage errors,
e.g. an unknown rule id).  Flags:

* ``PATHS`` — files and/or directories to check; defaults to the
  installed ``repro`` package, so a bare ``repro lint`` checks the
  whole reproduction source.
* ``--format {text,json}`` — human-readable lines (default) or the
  versioned machine-readable report
  (``repro.analysis.reporters.LINT_REPORT_SCHEMA``).
* ``--rule ID`` — run only the named rule (repeatable); see
  ``--list-rules`` for the catalogue.
* ``--baseline FILE`` — accept the findings recorded in a checked-in
  baseline (stale entries are themselves reported).
* ``--list-rules`` — print every rule id with its description.
* ``--verbose`` — also print suppressed findings and what suppressed
  them (pragma reason or baseline).

Findings are suppressed in code with ``# repro: allow[rule-id]
reason`` on the offending line (or a comment-only line directly
above); see ``ROADMAP.md``'s "Static analysis" section for the rule
catalogue and the pragma/baseline policy.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import paper_platform_config
from repro.core.engine import EmulationEngine
from repro.core.errors import ConfigError, EmulationError
from repro.core.flow import EmulationFlow
from repro.core.platform import build_platform
from repro.fpga.synthesis import synthesize

#: Route cases of the 6-switch paper platform (kept first in the
#: --routing choices so help output leads with the paper's cases).
_PAPER_ROUTING = ("overlap", "disjoint", "split")
#: Generic table routings usable on any factory topology.
_TABLE_ROUTING = ("auto", "shortest", "updown", "multipath", "multipath:3")


def _add_platform_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology",
        default="paper",
        help=(
            "platform topology: 'paper' (6-switch platform) or a"
            " factory spec like mesh:3:3, torus:4:4, ring:6, star:4,"
            " spidergon:8, tree:2:3, full:4 (default: paper)"
        ),
    )
    parser.add_argument(
        "--traffic",
        default="uniform",
        choices=("uniform", "burst", "poisson", "onoff", "trace"),
        help="traffic model family (default: uniform)",
    )
    parser.add_argument(
        "--load",
        type=float,
        default=0.45,
        help="offered load per generator (default: 0.45, the paper's)",
    )
    parser.add_argument(
        "--length",
        type=int,
        default=8,
        help="packet length in flits (default: 8)",
    )
    parser.add_argument(
        "--routing",
        default="overlap",
        choices=_PAPER_ROUTING + _TABLE_ROUTING,
        help=(
            "paper route case (paper topology) or table routing for"
            " factory topologies (default: overlap; non-paper"
            " topologies fall back to a deadlock-free default)"
        ),
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=4,
        help="switch buffer depth in flits (default: 4)",
    )
    parser.add_argument(
        "--receptors",
        default="tracedriven",
        choices=("tracedriven", "stochastic"),
        help="receptor kind (default: tracedriven)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="LFSR seed (default: 1)"
    )


def _config_from(args: argparse.Namespace, max_packets: Optional[int]):
    return paper_platform_config(
        traffic=args.traffic,
        load=args.load,
        length=args.length,
        max_packets=max_packets,
        routing_case=args.routing,
        receptor_kind=args.receptors,
        buffer_depth=args.depth,
        seed=args.seed,
    )


def _scenario_from(
    args: argparse.Namespace, max_packets: Optional[int]
):
    """A ScenarioSpec mirroring the platform options (generic path)."""
    from repro.experiments import ScenarioSpec

    routing = args.routing
    if args.topology != "paper" and routing in _PAPER_ROUTING:
        # The paper route cases only exist on the paper platform; any
        # other fabric takes its deadlock-free default instead.
        routing = "auto"
    if routing == "multipath":
        routing = "multipath:2"
    return ScenarioSpec(
        topology=args.topology,
        routing=routing,
        buffer_depth=args.depth,
        traffic=args.traffic,
        load=args.load,
        length=args.length,
        packets=max_packets,
        receptors=args.receptors,
        seed=args.seed,
    )


def _parse_link_fault(value: str, flag: str):
    """``A:B@CYCLE`` → (a, b, cycle) for --fail-link / --heal-link."""
    try:
        pair, at = value.split("@")
        a, b = pair.split(":")
        return int(a), int(b), int(at)
    except ValueError:
        raise ConfigError(
            f"bad {flag} {value!r}: expected SWITCH:SWITCH@CYCLE"
        )


def _parse_switch_fault(value: str):
    """``S@CYCLE`` → (switch, cycle) for --fail-switch."""
    try:
        s, at = value.split("@")
        return int(s), int(at)
    except ValueError:
        raise ConfigError(
            f"bad --fail-switch {value!r}: expected SWITCH@CYCLE"
        )


def _fault_schedule_from(args: argparse.Namespace):
    """Build the FaultSchedule the run flags describe (None if none)."""
    from repro.faults import (
        FaultSchedule,
        link_down,
        link_up,
        switch_down,
    )

    events = []
    for value in args.fail_link or ():
        a, b, cycle = _parse_link_fault(value, "--fail-link")
        events.append(link_down(cycle, a, b))
    for value in args.heal_link or ():
        a, b, cycle = _parse_link_fault(value, "--heal-link")
        events.append(link_up(cycle, a, b))
    for value in args.fail_switch or ():
        s, cycle = _parse_switch_fault(value)
        events.append(switch_down(cycle, s))
    if not events:
        return None
    return FaultSchedule.of(*events, repair=not args.no_repair)


def _fault_summary(report) -> str:
    """Terse stdout degradation summary of a faulted run."""
    lines = [
        "--- faults ---",
        f"dropped: {report.dropped_flits} flit(s) /"
        f" {report.dropped_packets} packet(s)",
    ]
    for event in report.events:
        repair = ""
        if event.repaired:
            repair = (
                f", rerouted in {event.repair_wall_seconds * 1e3:.2f} ms"
            )
        recovery = (
            f", recovered after {event.recovery_cycles} cycle(s)"
            if event.recovery_cycles is not None
            else ""
        )
        lines.append(
            f"cycle {event.cycle}: {event.kind} {event.detail} —"
            f" dropped {event.dropped_flits} flit(s)"
            f"{repair}{recovery}"
        )
    for window in report.windows:
        lines.append(
            f"window {window.label!r} [{window.start},"
            f" {window.end}): {window.packets_received} packet(s),"
            f" {window.throughput:.4f} packets/cycle"
        )
    if report.degraded:
        lines.append(f"DEGRADED: {report.degraded_reason}")
    return "\n".join(lines)


def _profiled(fn, top: int, out: Optional[str] = None):
    """Run ``fn`` under cProfile; return (result, profile table).

    The ``--profile`` flag of ``repro run``: future performance PRs
    start from measured hot spots instead of guesses.  The caller
    prints the table after the run's own report.  ``out`` dumps the
    raw stats (``--profile-out``) for pstats or snakeviz, keeping the
    full call graph instead of just the printed top rows.
    """
    import cProfile
    import io
    import pstats

    profile = cProfile.Profile()
    profile.enable()
    try:
        result = fn()
    finally:
        profile.disable()
    if out is not None:
        profile.dump_stats(out)
    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    stats.sort_stats("cumulative")
    stats.print_stats(top)
    table = (
        f"\n--- profile: top {top} by cumulative time ---\n"
        f"{buffer.getvalue()}"
    )
    return result, table


def cmd_run(args: argparse.Namespace) -> int:
    from repro.checkpoint.errors import CheckpointError

    top = args.profile_top
    do_profile = args.profile or args.profile_out is not None
    checkpoint_on = bool(args.checkpoint_out or args.resume)
    try:
        faults = _fault_schedule_from(args)
        if args.windows_out and args.windows is None and not args.resume:
            raise ConfigError("--windows-out needs --windows N")
        if args.checkpoint_every is not None:
            if args.checkpoint_every < 1:
                raise ConfigError(
                    "--checkpoint-every needs a positive cycle count"
                )
            if not args.checkpoint_out:
                raise ConfigError(
                    "--checkpoint-every needs --checkpoint-out FILE"
                )
        if args.checkpoint_out and (
            args.trace or args.trace_perfetto
        ):
            raise ConfigError(
                "--checkpoint-out is incompatible with"
                " --trace/--trace-perfetto (detach the tracer, "
                "checkpoint, then re-attach a fresh one instead)"
            )
        if args.resume and (faults is not None or args.windows):
            raise ConfigError(
                "--resume restores the checkpoint's own fault"
                " schedule and telemetry; drop the --fail-*/--heal-*/"
                "--windows flags"
            )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    telemetry_on = bool(
        args.progress
        or args.windows
        or args.trace
        or args.trace_perfetto
    )
    if (
        args.topology == "paper"
        and args.routing in _PAPER_ROUTING
        and faults is None
        and not telemetry_on
        and not checkpoint_on
    ):
        # The paper platform keeps its historical path (six-step flow,
        # seed registers loaded as seed+i) so outputs stay comparable
        # with the figures.  Fault and telemetry flags force the
        # generic engine path, which owns the injector and the
        # telemetry hooks.
        config = _config_from(args, args.packets)
        flow = EmulationFlow()
        if do_profile:
            report, table = _profiled(
                lambda: flow.run(config), top, args.profile_out
            )
            print(report.report_text)
            print(table)
        else:
            report = flow.run(config)
            print(report.report_text)
        return 0
    from repro.core.monitor import Monitor

    try:
        spec = _scenario_from(args, args.packets)
        if args.resume:
            from repro.checkpoint import load_checkpoint, restore

            checkpoint = load_checkpoint(args.resume, spec=spec)
            platform, engine = restore(checkpoint)
            print(
                f"resumed {args.resume} at cycle {checkpoint.cycle}"
                f" (spec {spec.key})",
                file=sys.stderr,
            )
        else:
            platform = build_platform(spec.to_platform_config())
            telemetry = None
            if args.windows is not None:
                from repro.telemetry import WindowedMetrics

                telemetry = WindowedMetrics(platform, args.windows)
            engine = EmulationEngine(
                platform, faults=faults, telemetry=telemetry
            )
        progress = None
        if args.progress:
            from repro.telemetry import format_progress

            def progress(sample) -> None:
                print(format_progress(sample), file=sys.stderr)

        tracer = None
        trace_stream = None
        if args.trace or args.trace_perfetto:
            from repro.telemetry import FlitTracer

            if args.trace:
                trace_stream = open(args.trace, "w", encoding="utf-8")
            # The in-memory event list only matters for the Perfetto
            # export; a pure JSONL trace streams straight to disk.
            tracer = FlitTracer(
                stream=trace_stream, keep=bool(args.trace_perfetto)
            )
            platform.network.attach_tracer(tracer)
        def execute():
            if not args.checkpoint_out:
                return engine.run(progress=progress)
            # Crash-safe execution: run in finalize=False chunks,
            # rewriting the checkpoint after each (atomic replace —
            # a crash leaves the previous good checkpoint), then
            # close the fault/telemetry books without stepping.
            from repro.checkpoint import snapshot

            every = args.checkpoint_every
            run_start = platform.cycle
            total_wall = 0.0
            if every:
                stagnant = 0
                prev_received = platform.packets_received
                result = engine.run(
                    max_cycles=every, finalize=False,
                    progress=progress,
                )
                total_wall += result.wall_seconds
                while (
                    not (result.budget_done and result.drained)
                    and getattr(result, "degraded_reason", None)
                    is None
                ):
                    # The engine's stagnation guard resets per
                    # chunk; re-impose it across chunks so a
                    # deadlocked run cannot checkpoint forever.
                    if (
                        platform.packets_received == prev_received
                        and platform.network._in_flight_flits > 0
                    ):
                        stagnant += every
                        if stagnant >= 100_000:
                            raise EmulationError(
                                "no delivery across"
                                f" {stagnant} checkpointed cycles"
                                " (possible routing deadlock);"
                                " refusing to checkpoint forever"
                            )
                    else:
                        stagnant = 0
                    prev_received = platform.packets_received
                    snapshot(platform, spec, engine).save(
                        args.checkpoint_out
                    )
                    result = engine.run(
                        max_cycles=every, finalize=False,
                        progress=progress,
                    )
                    total_wall += result.wall_seconds
            else:
                result = engine.run(
                    finalize=False, progress=progress
                )
                total_wall += result.wall_seconds
            snapshot(platform, spec, engine).save(
                args.checkpoint_out
            )
            print(
                f"wrote {args.checkpoint_out}", file=sys.stderr
            )
            # The report covers the whole execution, not the last
            # chunk.
            from dataclasses import replace

            result = replace(
                result,
                cycles=platform.cycle - run_start,
                wall_seconds=total_wall,
            )
            return engine.finalize_run(result)

        try:
            if do_profile:
                result, table = _profiled(
                    execute, top, args.profile_out
                )
            else:
                result, table = execute(), None
        finally:
            if tracer is not None:
                platform.network.detach_tracer()
                tracer.close()
                if trace_stream is not None:
                    trace_stream.close()
        if args.trace_perfetto:
            tracer.write_perfetto(args.trace_perfetto)
    except (ConfigError, CheckpointError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(Monitor(platform).final_report(result))
    if result.faults is not None:
        print(_fault_summary(result.faults))
    if args.windows_out:
        from repro.util import canonical_json

        with open(args.windows_out, "w", encoding="utf-8") as fh:
            fh.write(
                canonical_json(
                    [w.to_dict() for w in result.windows or ()]
                )
            )
            fh.write("\n")
        print(f"wrote {args.windows_out}", file=sys.stderr)
    if args.trace:
        print(f"wrote {args.trace}", file=sys.stderr)
    if args.trace_perfetto:
        print(f"wrote {args.trace_perfetto}", file=sys.stderr)
    if table is not None:
        print(table)
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    if args.topology == "paper" and args.routing in _PAPER_ROUTING:
        config = _config_from(args, None)
    else:
        try:
            config = _scenario_from(args, None).to_platform_config()
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    report = synthesize(config, auto_part=args.auto_part)
    print(report.render())
    return 0 if report.fits else 1


def cmd_speed(args: argparse.Namespace) -> int:
    from repro.baselines.speed import measure_engine_speeds, speed_report

    measurements = measure_engine_speeds(
        emulation_packets=args.packets,
        tlm_packets=max(10, args.packets // 5),
        rtl_packets=max(5, args.packets // 40),
    )
    print(speed_report(measurements).render())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    print(f"packets/burst  {args.metric}")
    for ppb in (1, 2, 4, 8, 16, 32, 64):
        platform = build_platform(
            paper_platform_config(
                traffic="trace",
                max_packets=None,
                routing_case=args.routing,
                traffic_params={
                    "n_bursts": max(2, args.budget // ppb),
                    "packets_per_burst": ppb,
                },
                seed=args.seed,
            )
        )
        EmulationEngine(platform).run()
        if args.metric == "latency":
            value = f"{platform.mean_latency():.1f}"
        else:
            value = f"{platform.congestion_rate():.4f}"
        print(f"{ppb:>13}  {value}")
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.experiments import (
        DEFAULT_CACHE_DIR,
        ResultCache,
        Sweep,
        SweepJournal,
        SweepRunner,
        aggregate,
        render_table,
        rows_from_results,
        to_csv,
        to_json,
    )
    from repro.experiments.report import DEFAULT_METRICS

    try:
        specs = Sweep.from_file(args.sweep_file)
    except (OSError, ConfigError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)

    journal = None
    if cache is not None:
        journal = SweepJournal.for_sweep(cache.root, specs)
    elif args.resume_journal:
        print(
            "error: --resume-journal needs the cache (drop"
            " --no-cache); the journal lives next to it and resumes"
            " finished specs from it",
            file=sys.stderr,
        )
        return 2

    def progress(done: int, total: int, result) -> None:
        if getattr(result, "failed", False):
            tag = result.status
        elif result.cached:
            tag = "cached"
        else:
            tag = "ran"
        print(
            f"[{done}/{total}] {tag:>11}  {result.spec.label()}"
            f"  ({result.wall_seconds:.2f}s)",
            file=sys.stderr,
        )

    try:
        runner = SweepRunner(
            workers=args.workers,
            cache=cache,
            progress=(
                progress if args.verbose or args.progress else None
            ),
            retries=args.retries,
            timeout=args.scenario_timeout,
            memory_limit_mb=args.memory_limit,
            quarantine=args.quarantine,
            journal=journal,
            resume=args.resume_journal,
        )
        results = runner.run(specs)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = runner.last_stats

    metrics = (
        [m.strip() for m in args.metrics.split(",") if m.strip()]
        if args.metrics
        else list(DEFAULT_METRICS)
    )
    rows = rows_from_results(results)
    # Column discovery scans every row: faulted and healthy scenarios
    # carry different spec/metric keys (faults, fault_* counters).
    row_fields: List[str] = []
    for row in rows:
        for f in row:
            if f not in row_fields:
                row_fields.append(f)
    spec_keys = set()
    for result in results:
        spec_keys.update(result.spec.to_dict())
    spec_fields = [
        f
        for f in row_fields
        if f in spec_keys or f.startswith("traffic_params.")
    ]
    varying = [
        f
        for f in spec_fields
        if len({repr(r.get(f)) for r in rows}) > 1
    ]
    columns = (
        ["key"]
        + varying
        + [m for m in metrics if any(m in r for r in rows)]
    )
    print(render_table(rows, columns=columns))

    if args.group_by:
        by = [f.strip() for f in args.group_by.split(",") if f.strip()]
        try:
            agg = aggregate(results, by=by, metrics=metrics)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print()
        print(render_table(agg))

    if args.csv:
        to_csv(rows, args.csv)
        print(f"wrote {args.csv}", file=sys.stderr)
    if args.json:
        to_json(rows, args.json)
        print(f"wrote {args.json}", file=sys.stderr)

    if results.failures:
        print("\n--- failures ---", file=sys.stderr)
        seen = set()
        for failure in results.failures:
            if id(failure) in seen:  # duplicate spec, same record
                continue
            seen.add(id(failure))
            print(
                f"{failure.status}: {failure.spec.label()} —"
                f" {failure.error} after {failure.attempts}"
                f" attempt(s): {failure.message}",
                file=sys.stderr,
            )

    extras = ""
    if stats.failed:
        extras += (
            f", {stats.failed} failed"
            f" ({stats.quarantined} quarantined)"
        )
    if stats.retried:
        extras += f", {stats.retried} retried"
    if stats.parked:
        extras += f", {stats.parked} parked by journal"
    if stats.corrupt_cache:
        extras += f", {stats.corrupt_cache} corrupt cache entr(ies)"
    print(
        f"\n{stats.scenarios} scenario(s): {stats.executed} executed,"
        f" {stats.cached} cached{extras}, {stats.workers} worker(s),"
        f" {stats.wall_seconds:.2f}s"
        f" ({stats.scenarios_per_second:.1f} scenarios/s)",
        file=sys.stderr,
    )
    return 1 if results.failures else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """The ``lint`` subcommand: run the static analyzer."""
    import os

    from repro.analysis import (
        ALL_RULES,
        render_json,
        render_text,
        run_lint,
    )

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}: {rule.description}")
        return 0
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    try:
        result = run_lint(
            paths,
            rule_ids=args.rule or None,
            baseline=args.baseline,
        )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "NoC emulation framework (Genko et al., DATE 2005"
            " reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="run one emulation through the full flow"
    )
    _add_platform_options(run_parser)
    run_parser.add_argument(
        "--packets",
        type=int,
        default=2000,
        help="packet budget per generator (default: 2000)",
    )
    run_parser.add_argument(
        "--fail-link",
        action="append",
        metavar="A:B@CYCLE",
        help=(
            "inject a link failure: kill the A->B and B->A links at"
            " CYCLE (repeatable)"
        ),
    )
    run_parser.add_argument(
        "--heal-link",
        action="append",
        metavar="A:B@CYCLE",
        help="bring a previously failed link pair back up at CYCLE",
    )
    run_parser.add_argument(
        "--fail-switch",
        action="append",
        metavar="S@CYCLE",
        help="kill switch S (all its links and nodes) at CYCLE",
    )
    run_parser.add_argument(
        "--no-repair",
        action="store_true",
        help=(
            "disable online routing repair: faults degrade the run"
            " instead of rerouting around the failure"
        ),
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "wrap the engine loop in cProfile and print the top"
            " cumulative hot spots after the report"
        ),
    )
    run_parser.add_argument(
        "--profile-top",
        type=int,
        default=20,
        metavar="N",
        help="rows of the profile table (default: 20)",
    )
    run_parser.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help=(
            "dump the raw cProfile stats to FILE for pstats/snakeviz"
            " (implies --profile)"
        ),
    )
    run_parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "print live run progress to stderr (cycles/sec, packets"
            " in flight, budget fraction)"
        ),
    )
    run_parser.add_argument(
        "--windows",
        type=int,
        default=None,
        metavar="N",
        help=(
            "collect the windowed telemetry series with N-cycle"
            " windows and print it in the report"
        ),
    )
    run_parser.add_argument(
        "--windows-out",
        default=None,
        metavar="FILE",
        help="write the window series as JSON (needs --windows)",
    )
    run_parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "stream per-flit events (inject/hop/eject/abort) to FILE"
            " as JSON lines"
        ),
    )
    run_parser.add_argument(
        "--trace-perfetto",
        default=None,
        metavar="FILE",
        help=(
            "export the flit trace as a Chrome/Perfetto trace_event"
            " JSON file (open in ui.perfetto.dev)"
        ),
    )
    run_parser.add_argument(
        "--checkpoint-out",
        default=None,
        metavar="FILE",
        help=(
            "write a complete-state checkpoint (versioned,"
            " content-hashed JSON) when the run stops; resumable"
            " with --resume"
        ),
    )
    run_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="CYCLES",
        help=(
            "with --checkpoint-out: atomically rewrite the"
            " checkpoint every CYCLES emulated cycles (crash-safe"
            " long runs)"
        ),
    )
    run_parser.add_argument(
        "--resume",
        default=None,
        metavar="FILE",
        help=(
            "restore the checkpoint and continue it bit-identically;"
            " the scenario flags must describe the same spec"
            " (content-hash checked)"
        ),
    )
    run_parser.set_defaults(func=cmd_run)

    synth_parser = sub.add_parser(
        "synth", help="print the FPGA utilisation report"
    )
    _add_platform_options(synth_parser)
    synth_parser.add_argument(
        "--auto-part",
        action="store_true",
        help="pick the smallest fitting Virtex-2 Pro part",
    )
    synth_parser.set_defaults(func=cmd_synth)

    speed_parser = sub.add_parser(
        "speed", help="measure the engines and print the speed table"
    )
    speed_parser.add_argument(
        "--packets",
        type=int,
        default=500,
        help="fast-engine packet budget per flow (default: 500)",
    )
    speed_parser.set_defaults(func=cmd_speed)

    sweep_parser = sub.add_parser(
        "sweep", help="packets-per-burst sweep (trace-driven figures)"
    )
    sweep_parser.add_argument(
        "--metric",
        default="latency",
        choices=("latency", "congestion"),
        help="series to print (default: latency)",
    )
    sweep_parser.add_argument(
        "--routing",
        default="overlap",
        choices=("overlap", "disjoint", "split"),
    )
    sweep_parser.add_argument("--budget", type=int, default=512)
    sweep_parser.add_argument("--seed", type=int, default=1)
    sweep_parser.set_defaults(func=cmd_sweep)

    batch_parser = sub.add_parser(
        "batch",
        help=(
            "run a JSON sweep document through the experiment runner"
            " (parallel workers, result cache, aggregation)"
        ),
    )
    batch_parser.add_argument(
        "sweep_file",
        help=(
            "JSON sweep document: {\"base\": {spec fields},"
            " \"grid\"|\"zip\": {axis: [values...]}}"
        ),
    )
    batch_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (default: 1 = serial)",
    )
    batch_parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: .repro-cache)",
    )
    batch_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always execute; neither read nor write the cache",
    )
    batch_parser.add_argument(
        "--group-by",
        default=None,
        help="comma-separated spec fields to aggregate over",
    )
    batch_parser.add_argument(
        "--metrics",
        default=None,
        help="comma-separated metric columns (default: core set)",
    )
    batch_parser.add_argument(
        "--csv", default=None, help="write per-scenario rows as CSV"
    )
    batch_parser.add_argument(
        "--json", default=None, help="write per-scenario rows as JSON"
    )
    batch_parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help=(
            "extra attempts per failing scenario before it is parked"
            " (default: 1; crashes and timeouts count like"
            " exceptions)"
        ),
    )
    batch_parser.add_argument(
        "--scenario-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-scenario wall-clock budget: cooperative in-engine"
            " deadline plus, with workers, a watchdog hard-kill"
        ),
    )
    batch_parser.add_argument(
        "--quarantine",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "park repeat offenders as 'quarantined' records (the"
            " default) instead of plain 'failed' ones; the sweep"
            " finishes either way"
        ),
    )
    batch_parser.add_argument(
        "--resume-journal",
        action="store_true",
        help=(
            "resume the sweep's outcome journal after a crash:"
            " re-run only specs not recorded done/quarantined"
            " (needs the cache)"
        ),
    )
    batch_parser.add_argument(
        "--memory-limit",
        type=int,
        default=None,
        metavar="MB",
        help=(
            "per-worker address-space ceiling; overruns fail the"
            " attempt instead of stalling the host"
        ),
    )
    batch_parser.add_argument(
        "--verbose",
        action="store_true",
        help="print per-scenario progress to stderr",
    )
    batch_parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "print per-scenario retirement lines with wall-clock"
            " seconds to stderr (same stream as --verbose)"
        ),
    )
    batch_parser.set_defaults(func=cmd_batch)

    lint_parser = sub.add_parser(
        "lint",
        help=(
            "statically check determinism and kernel conventions"
            " (see repro.analysis)"
        ),
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files/directories to check (default: the installed"
            " repro package)"
        ),
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is versioned and machine-readable)",
    )
    lint_parser.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only this rule (repeatable; see --list-rules)",
    )
    lint_parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="accept findings recorded in this baseline file",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint_parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print suppressed findings and why",
    )
    lint_parser.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module execution path
    raise SystemExit(main())
