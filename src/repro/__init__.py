"""repro — a reproduction of "A Complete Network-On-Chip Emulation
Framework" (Genko, Atienza, De Micheli, Mendias, Hermida, Catthoor —
DATE 2005).

The package models the paper's FPGA-hosted NoC emulation platform in
pure Python: a cycle-level network of parameterisable switches
(``repro.noc``), stochastic and trace-driven traffic generators
(``repro.traffic``), statistics receptors (``repro.receptors``,
``repro.stats``), the memory-mapped HW/SW platform with its processor,
monitor and six-step emulation flow (``repro.core``), an FPGA
synthesis/resource model calibrated against the paper's Table 1
(``repro.fpga``), and the RTL/TLM baseline simulators of the speed
comparison (``repro.baselines``).

Quickstart::

    from repro import paper_platform_config, EmulationFlow

    flow = EmulationFlow()
    report = flow.run(paper_platform_config(max_packets=2000))
    print(report.report_text)
"""

from repro.core import (
    BusFabric,
    ConfigError,
    EmulationEngine,
    EmulationError,
    EmulationFlow,
    EmulationPlatform,
    EngineResult,
    FlowReport,
    Monitor,
    PlatformConfig,
    Processor,
    TGSpec,
    TRSpec,
    build_platform,
    paper_platform_config,
)
from repro.experiments import (
    ResultCache,
    ScenarioResult,
    ScenarioSpec,
    Sweep,
    SweepRunner,
    run_sweep,
)
from repro.noc import (
    Network,
    Packet,
    Switch,
    SwitchConfig,
    SwitchingMode,
    Topology,
    paper_topology,
)
from repro.traffic import (
    BurstTraffic,
    PoissonTraffic,
    Trace,
    TraceTraffic,
    UniformTraffic,
)

__version__ = "1.0.0"

__all__ = [
    "BurstTraffic",
    "BusFabric",
    "ConfigError",
    "EmulationEngine",
    "EmulationError",
    "EmulationFlow",
    "EmulationPlatform",
    "EngineResult",
    "FlowReport",
    "Monitor",
    "Network",
    "Packet",
    "PlatformConfig",
    "PoissonTraffic",
    "Processor",
    "ResultCache",
    "ScenarioResult",
    "ScenarioSpec",
    "Sweep",
    "SweepRunner",
    "Switch",
    "SwitchConfig",
    "SwitchingMode",
    "TGSpec",
    "TRSpec",
    "Topology",
    "Trace",
    "TraceTraffic",
    "UniformTraffic",
    "build_platform",
    "paper_platform_config",
    "paper_topology",
    "run_sweep",
    "__version__",
]
