"""Inter-switch links.

A link is a unidirectional pipeline carrying one flit per cycle from an
upstream switch output port to a downstream input buffer, plus the
credit return path flowing the other way.  Link *load* (fraction of
cycles carrying a flit) is the quantity the paper's experimental setup
fixes at 90% on two inter-switch links (Slide 19), so every link keeps a
utilisation counter that the monitor can read out.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.noc.flit import Flit


class Link:
    """A point-to-point flit pipeline with configurable latency.

    Parameters
    ----------
    delay:
        Number of cycles a flit spends in flight (>= 1).  The default of
        one cycle matches a registered inter-switch wire on the FPGA.
    name:
        Human-readable identifier used in monitor reports, e.g.
        ``"sw2:out1->sw4:in0"``.
    """

    __slots__ = (
        "delay",
        "name",
        "_in_flight",
        "_credits_in_flight",
        "on_flit_scheduled",
        "on_credit_scheduled",
        "flit_armed",
        "credit_armed",
        "flits_carried",
        "busy_cycles",
        "stats_since",
        "_last_send_cycle",
    )

    def __init__(self, delay: int = 1, name: str = "") -> None:
        if delay < 1:
            raise ValueError(f"link delay must be >= 1, got {delay}")
        self.delay = delay
        self.name = name
        self._in_flight: Deque[Tuple[int, Flit]] = deque()
        self._credits_in_flight: Deque[Tuple[int, int]] = deque()
        # Event-driven scheduling hooks (set by the network): called
        # with the arrival cycle when an idle queue starts a flight, so
        # the network's armed sets learn this link needs service.  The
        # armed flags are owned cooperatively: the link sets one when
        # it fires the hook, the network clears it when it retires the
        # link from its armed set (lazily, so a link under sustained
        # traffic arms exactly once).
        self.on_flit_scheduled: Optional[Callable[[int], None]] = None
        self.on_credit_scheduled: Optional[Callable[[int], None]] = None
        self.flit_armed = False
        self.credit_armed = False
        # Statistics.
        self.flits_carried = 0
        self.busy_cycles = 0
        self.stats_since = 0  # cycle the stats window opened at
        self._last_send_cycle: Optional[int] = None

    # ------------------------------------------------------------------
    # Downstream flit path
    # ------------------------------------------------------------------
    def send(self, flit: Flit, now: int) -> None:
        """Inject a flit at cycle ``now``; it arrives at ``now + delay``."""
        if self._last_send_cycle == now:
            raise RuntimeError(
                f"link {self.name or id(self)} accepted two flits in cycle"
                f" {now}; links carry one flit per cycle"
            )
        self._last_send_cycle = now
        self._in_flight.append((now + self.delay, flit))
        if not self.flit_armed and self.on_flit_scheduled is not None:
            self.flit_armed = True
            self.on_flit_scheduled(now + self.delay)
        self.flits_carried += 1
        self.busy_cycles += 1

    def deliver(self, now: int) -> List[Flit]:
        """Pop all flits whose arrival cycle is ``<= now``."""
        arrived: List[Flit] = []
        while self._in_flight and self._in_flight[0][0] <= now:
            arrived.append(self._in_flight.popleft()[1])
        return arrived

    @property
    def occupancy(self) -> int:
        """Number of flits currently in flight."""
        return len(self._in_flight)

    # ------------------------------------------------------------------
    # Upstream credit path
    # ------------------------------------------------------------------
    def return_credit(self, now: int, count: int = 1) -> None:
        """Send ``count`` credits upstream; they arrive ``delay`` later."""
        self._credits_in_flight.append((now + self.delay, count))
        if not self.credit_armed and self.on_credit_scheduled is not None:
            self.credit_armed = True
            self.on_credit_scheduled(now + self.delay)

    def collect_credits(self, now: int) -> int:
        """Number of credits that have completed the return trip."""
        total = 0
        while (
            self._credits_in_flight
            and self._credits_in_flight[0][0] <= now
        ):
            total += self._credits_in_flight.popleft()[1]
        return total

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` in which the link carried a flit."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    def reset_stats(self, now: int = 0) -> None:
        """Zero the counters and open a new stats window at ``now``."""
        self.flits_carried = 0
        self.busy_cycles = 0
        self.stats_since = now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.name!r}, delay={self.delay})"
