"""Inter-switch links.

A link is a unidirectional pipeline carrying one flit per cycle from an
upstream switch output port to a downstream input buffer, plus the
credit return path flowing the other way.  Link *load* (fraction of
cycles carrying a flit) is the quantity the paper's experimental setup
fixes at 90% on two inter-switch links (Slide 19), so every link keeps a
utilisation counter that the monitor can read out.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.noc.flit import Flit


class Link:
    """A point-to-point flit pipeline with configurable latency.

    Parameters
    ----------
    delay:
        Number of cycles a flit spends in flight (>= 1).  The default of
        one cycle matches a registered inter-switch wire on the FPGA.
    name:
        Human-readable identifier used in monitor reports, e.g.
        ``"sw2:out1->sw4:in0"``.
    """

    __slots__ = (
        "delay",  # repro: allow[state-coverage] construction config from the topology
        "name",  # repro: allow[state-coverage] derived from the endpoints at construction
        "_in_flight",  # repro: allow[state-coverage] unwired-link fallback queue; asserted empty at capture
        "_credits_in_flight",  # repro: allow[state-coverage] unwired-link fallback queue; asserted empty at capture
        "wheel",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "wheel_size",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "sink",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "dst",
        "rx",
        "wire_count",
        "down",
        "flits_dropped",
        "flits_carried",
        "stats_since",
        "_last_send_cycle",
    )

    def __init__(self, delay: int = 1, name: str = "") -> None:
        if delay < 1:
            raise ValueError(f"link delay must be >= 1, got {delay}")
        self.delay = delay
        self.name = name
        self._in_flight: Deque[Tuple[int, Flit]] = deque()
        self._credits_in_flight: Deque[Tuple[int, int]] = deque()
        # Delivery-wheel wiring (set by the network).  A network-wired
        # link does not queue flights in its own deques: the per-hop
        # hot paths append ``(link, flit)`` straight into the
        # network's arrival-cycle ring buffer (``wheel``, a list of
        # ``wheel_size`` slots) and the delivery phase hands arrivals
        # to ``sink``.  ``wire_count`` tracks the flits in flight on
        # this link for the occupancy statistics.  Standalone links
        # (``wheel is None``) keep the deque behaviour
        # (:meth:`deliver` / :meth:`collect_credits`).
        self.wheel: Optional[List[List[Tuple["Link", Flit]]]] = None
        self.wheel_size = 0
        self.sink: Optional[Callable[[Flit, int], None]] = None
        # Fused delivery endpoints (set by the network).  ``dst`` is
        # the (switch, input port, buffer) tuple of a link feeding a
        # switch input — the delivery phase pushes into it directly,
        # skipping the ``sink`` callback frame; ``rx`` is the
        # reassembly buffer of an ejection link.  Both None -> deliver
        # through ``sink`` (custom sinks, standalone use).
        self.dst: Optional[tuple] = None
        self.rx: Optional[object] = None
        self.wire_count = 0
        # Fault state: a downed link accepts no flits.  The hot paths
        # never consult this flag — fault application zeroes the
        # upstream credits and repairs routing so no route reaches a
        # dead link; ``send`` keeps a guard for standalone use.
        # ``flits_dropped`` counts flits the injector purged from this
        # wire, cumulative across the run (not a stats-window counter).
        self.down = False
        self.flits_dropped = 0
        # Statistics.
        self.flits_carried = 0
        self.stats_since = 0  # cycle the stats window opened at
        self._last_send_cycle: Optional[int] = None

    # ------------------------------------------------------------------
    # Downstream flit path
    # ------------------------------------------------------------------
    def send(self, flit: Flit, now: int) -> None:
        """Inject a flit at cycle ``now``; it arrives at ``now + delay``."""
        if self.down:
            raise RuntimeError(
                f"link {self.name or id(self)} is down and cannot carry"
                f" flits (fault injected before cycle {now})"
            )
        if self._last_send_cycle == now:
            raise RuntimeError(
                f"link {self.name or id(self)} accepted two flits in cycle"
                f" {now}; links carry one flit per cycle"
            )
        self._last_send_cycle = now
        wheel = self.wheel
        if wheel is not None:
            wheel[(now + self.delay) % self.wheel_size].append(
                (self, flit)
            )
            self.wire_count += 1
        else:
            self._in_flight.append((now + self.delay, flit))
        self.flits_carried += 1

    def deliver(self, now: int) -> List[Flit]:
        """Pop all flits whose arrival cycle is ``<= now``."""
        arrived: List[Flit] = []
        while self._in_flight and self._in_flight[0][0] <= now:
            arrived.append(self._in_flight.popleft()[1])
        return arrived

    @property
    def occupancy(self) -> int:
        """Number of flits currently in flight."""
        return len(self._in_flight) + self.wire_count

    # ------------------------------------------------------------------
    # Upstream credit path
    # ------------------------------------------------------------------
    def return_credit(self, now: int, count: int = 1) -> None:
        """Send ``count`` credits upstream; they arrive ``delay`` later."""
        self._credits_in_flight.append((now + self.delay, count))

    def collect_credits(self, now: int) -> int:
        """Number of credits that have completed the return trip."""
        total = 0
        while (
            self._credits_in_flight
            and self._credits_in_flight[0][0] <= now
        ):
            total += self._credits_in_flight.popleft()[1]
        return total

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def busy_cycles(self) -> int:
        """Cycles in which the link accepted a flit.

        A link carries at most one flit per cycle, so this is exactly
        ``flits_carried`` — aliased rather than counted separately to
        keep one increment off the per-hop hot path.
        """
        return self.flits_carried

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` in which the link carried a flit."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.flits_carried / elapsed_cycles)

    def stats_snapshot(self) -> Tuple[int, int]:
        """``(flits_carried, flits_dropped)`` — the per-link counters
        the windowed telemetry differences at window boundaries."""
        return (self.flits_carried, self.flits_dropped)

    def reset_stats(self, now: int = 0) -> None:
        """Zero the counters and open a new stats window at ``now``."""
        self.flits_carried = 0
        self.stats_since = now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.name!r}, delay={self.delay})"
