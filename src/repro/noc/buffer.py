"""Bounded flit FIFOs.

Each switch input port owns one ``FlitBuffer``.  Its depth is the "size
of buffers" switch parameter of the paper (Slide 6).  The buffer keeps
occupancy statistics so the FPGA resource model and the congestion
statistics can be driven from the same object.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional

from repro.noc.flit import Flit


class BufferFullError(RuntimeError):
    """Raised on a push into a full buffer (a flow-control violation)."""


class BufferEmptyError(RuntimeError):
    """Raised on a pop/peek from an empty buffer."""


class FlitBuffer:
    """A bounded FIFO of flits with occupancy accounting.

    Credit-based flow control guarantees a producer never pushes into a
    full buffer; a push into a full buffer therefore raises instead of
    silently dropping, because it indicates a protocol bug.
    """

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._fifo: Deque[Flit] = deque()
        # Statistics.
        self.total_pushes = 0
        self.total_pops = 0
        self.peak_occupancy = 0
        self.occupancy_cycles = 0  # integral of occupancy over cycles
        self.full_cycles = 0  # cycles spent completely full
        self._sampled_cycles = 0

    # ------------------------------------------------------------------
    # FIFO interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fifo)

    def __iter__(self) -> Iterator[Flit]:
        return iter(self._fifo)

    @property
    def is_empty(self) -> bool:
        return not self._fifo

    @property
    def is_full(self) -> bool:
        return len(self._fifo) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._fifo)

    def push(self, flit: Flit) -> None:
        if self.is_full:
            raise BufferFullError(
                f"push into full buffer {self.name or id(self)} "
                f"(capacity {self.capacity})"
            )
        self._fifo.append(flit)
        self.total_pushes += 1
        if len(self._fifo) > self.peak_occupancy:
            self.peak_occupancy = len(self._fifo)

    def pop(self) -> Flit:
        if self.is_empty:
            raise BufferEmptyError(
                f"pop from empty buffer {self.name or id(self)}"
            )
        self.total_pops += 1
        return self._fifo.popleft()

    def peek(self) -> Flit:
        if self.is_empty:
            raise BufferEmptyError(
                f"peek into empty buffer {self.name or id(self)}"
            )
        return self._fifo[0]

    def head(self) -> Optional[Flit]:
        """Head flit or ``None`` when empty (non-raising peek)."""
        return self._fifo[0] if self._fifo else None

    def clear(self) -> None:
        self._fifo.clear()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Record one cycle's occupancy (called once per cycle)."""
        self._sampled_cycles += 1
        self.occupancy_cycles += len(self._fifo)
        if self.is_full:
            self.full_cycles += 1

    @property
    def mean_occupancy(self) -> float:
        """Average number of buffered flits over the sampled cycles."""
        if self._sampled_cycles == 0:
            return 0.0
        return self.occupancy_cycles / self._sampled_cycles

    @property
    def full_fraction(self) -> float:
        """Fraction of sampled cycles the buffer was completely full."""
        if self._sampled_cycles == 0:
            return 0.0
        return self.full_cycles / self._sampled_cycles

    def reset_stats(self) -> None:
        self.total_pushes = 0
        self.total_pops = 0
        self.peak_occupancy = len(self._fifo)
        self.occupancy_cycles = 0
        self.full_cycles = 0
        self._sampled_cycles = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlitBuffer({self.name!r}, {len(self._fifo)}/{self.capacity})"
        )
