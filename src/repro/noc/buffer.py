"""Bounded flit FIFOs.

Each switch input port owns one ``FlitBuffer``.  Its depth is the "size
of buffers" switch parameter of the paper (Slide 6).  The buffer keeps
occupancy statistics so the FPGA resource model and the congestion
statistics can be driven from the same object.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, Optional

from repro.noc.flit import Flit


class BufferFullError(RuntimeError):
    """Raised on a push into a full buffer (a flow-control violation)."""


class BufferEmptyError(RuntimeError):
    """Raised on a pop/peek from an empty buffer."""


class FlitBuffer:
    """A bounded FIFO of flits with occupancy accounting.

    Credit-based flow control guarantees a producer never pushes into a
    full buffer; a push into a full buffer therefore raises instead of
    silently dropping, because it indicates a protocol bug.

    ``track_packets`` keeps a per-packet flit count updated on every
    push/pop, giving store-and-forward switches an O(1) answer to "is
    the head packet fully buffered?" instead of rescanning the FIFO
    every cycle while the packet accumulates (with input-granular
    parking that question is asked once per arrival wake-up, not per
    cycle).

    Hot-path contract: :meth:`push` and :meth:`pop` are *inlined* by
    ``Switch.receive``, the traverse hop paths
    (``Switch.traverse``/``traverse_all``) and the network's fused
    delivery phase — any change to their bookkeeping (``_fifo``
    identity, ``_pid_counts``, ``total_pushes``/``total_pops``,
    ``peak_occupancy``) must be mirrored there.  The ``_fifo`` deque's
    identity is stable for the buffer's lifetime; the switch's
    per-input scan tuples and the links' fused delivery endpoints
    cache it.
    """

    __slots__ = (
        "capacity",  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        "name",  # repro: allow[state-coverage] derived from the owning switch/port at construction
        "_fifo",
        "_pid_counts",  # repro: allow[state-coverage] re-derived from the restored FIFO contents
        "total_pushes",
        "total_pops",
        "peak_occupancy",
        "occupancy_cycles",
        "full_cycles",
        "_sampled_cycles",
    )

    def __init__(
        self, capacity: int, name: str = "", track_packets: bool = False
    ) -> None:
        if capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._fifo: Deque[Flit] = deque()
        self._pid_counts: Optional[Dict[int, int]] = (
            {} if track_packets else None
        )
        # Statistics.
        self.total_pushes = 0
        self.total_pops = 0
        self.peak_occupancy = 0
        self.occupancy_cycles = 0  # integral of occupancy over cycles
        self.full_cycles = 0  # cycles spent completely full
        self._sampled_cycles = 0

    # ------------------------------------------------------------------
    # FIFO interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fifo)

    def __iter__(self) -> Iterator[Flit]:
        return iter(self._fifo)

    @property
    def is_empty(self) -> bool:
        return not self._fifo

    @property
    def is_full(self) -> bool:
        return len(self._fifo) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._fifo)

    def push(self, flit: Flit) -> None:
        fifo = self._fifo
        if len(fifo) >= self.capacity:
            raise BufferFullError(
                f"push into full buffer {self.name or id(self)} "
                f"(capacity {self.capacity})"
            )
        fifo.append(flit)
        counts = self._pid_counts
        if counts is not None:
            pid = flit.packet.pid
            counts[pid] = counts.get(pid, 0) + 1
        self.total_pushes += 1
        if len(fifo) > self.peak_occupancy:
            self.peak_occupancy = len(fifo)

    def pop(self) -> Flit:
        if not self._fifo:
            raise BufferEmptyError(
                f"pop from empty buffer {self.name or id(self)}"
            )
        self.total_pops += 1
        flit = self._fifo.popleft()
        counts = self._pid_counts
        if counts is not None:
            pid = flit.packet.pid
            remaining = counts[pid] - 1
            if remaining:
                counts[pid] = remaining
            else:
                del counts[pid]
        return flit

    def peek(self) -> Flit:
        if self.is_empty:
            raise BufferEmptyError(
                f"peek into empty buffer {self.name or id(self)}"
            )
        return self._fifo[0]

    def head(self) -> Optional[Flit]:
        """Head flit or ``None`` when empty (non-raising peek)."""
        return self._fifo[0] if self._fifo else None

    def clear(self) -> None:
        self._fifo.clear()
        if self._pid_counts is not None:
            self._pid_counts.clear()

    def packet_flit_count(self, pid: int) -> int:
        """Buffered flits belonging to packet ``pid``.

        O(1) when the buffer tracks packets, otherwise a FIFO scan.
        """
        if self._pid_counts is not None:
            return self._pid_counts.get(pid, 0)
        return sum(1 for f in self._fifo if f.packet.pid == pid)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Record one cycle's occupancy (called once per cycle)."""
        self._sampled_cycles += 1
        self.occupancy_cycles += len(self._fifo)
        if self.is_full:
            self.full_cycles += 1

    @property
    def mean_occupancy(self) -> float:
        """Average number of buffered flits over the sampled cycles."""
        if self._sampled_cycles == 0:
            return 0.0
        return self.occupancy_cycles / self._sampled_cycles

    @property
    def full_fraction(self) -> float:
        """Fraction of sampled cycles the buffer was completely full."""
        if self._sampled_cycles == 0:
            return 0.0
        return self.full_cycles / self._sampled_cycles

    def reset_stats(self) -> None:
        self.total_pushes = 0
        self.total_pops = 0
        self.peak_occupancy = len(self._fifo)
        self.occupancy_cycles = 0
        self.full_cycles = 0
        self._sampled_cycles = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlitBuffer({self.name!r}, {len(self._fifo)}/{self.capacity})"
        )
