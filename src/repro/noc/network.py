"""Network assembly and the per-cycle dataflow.

A :class:`Network` elaborates a :class:`~repro.noc.topology.Topology`
into concrete switches, links and network interfaces, wires the credit
paths, and exposes a single :meth:`Network.step` that advances the whole
fabric by one clock cycle.  This is the "network of switches [that] can
emulate any NoC packet-switching intercommunication scheme" at the heart
of the hardware platform (Slide 13); the emulation engine in
``repro.core`` drives it together with the traffic devices.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.noc.flit import Flit, Packet
from repro.noc.link import Link
from repro.noc.ni import NetworkInterface, ReassemblyBuffer
from repro.noc.routing import RoutingFunction
from repro.noc.switch import Switch, SwitchConfig, SwitchingMode
from repro.noc.topology import Topology


class Network:
    """An elaborated NoC: switches + links + network interfaces.

    Parameters
    ----------
    topology:
        Switch graph and NI attachment points.
    routing:
        Routing function shared by all switches (table-based in the
        hardware platform).
    buffer_depth:
        Per-input FIFO depth of every switch, in flits.
    arbitration:
        Arbitration policy name (see ``repro.noc.arbiter``).
    mode:
        Wormhole (default) or store-and-forward switching.
    sample_buffers:
        When True, every input buffer records its occupancy each cycle
        (needed by buffer-utilisation reports; costs simulation speed).
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingFunction,
        buffer_depth: int = 4,
        arbitration: str = "round_robin",
        mode: SwitchingMode = SwitchingMode.WORMHOLE,
        sample_buffers: bool = False,
    ) -> None:
        topology.validate()
        self.topology = topology
        self.routing = routing
        self.sample_buffers = sample_buffers
        self.switches: List[Switch] = [
            Switch(
                s,
                SwitchConfig(
                    n_inputs=topology.n_inputs(s),
                    n_outputs=topology.n_outputs(s),
                    buffer_depth=buffer_depth,
                    arbitration=arbitration,
                    mode=mode,
                ),
                routing,
            )
            for s in range(topology.n_switches)
        ]
        self.nis: List[NetworkInterface] = [
            NetworkInterface(node) for node in range(topology.n_nodes)
        ]
        self.rx: List[ReassemblyBuffer] = [
            ReassemblyBuffer(node) for node in range(topology.n_nodes)
        ]
        self.links: List[Link] = []
        #: Map from a directed switch pair (a, b) to the links carrying
        #: a -> b traffic, for link-load monitoring (Slide 19's 90% links).
        self.switch_links: Dict[Tuple[int, int], List[Link]] = {}
        # Per-link upstream credit sink: called with the credit count.
        self._credit_sinks: List[Callable[[int], None]] = []
        # Per-link downstream flit sink: called with (flit, now).
        self._flit_sinks: List[Callable[[Flit, int], None]] = []
        self._wire()
        # Pre-zipped scan lists so the per-cycle loop touches each
        # link's queues without repeated attribute lookups.
        self._credit_scan = [
            (link._credits_in_flight, link, sink)
            for link, sink in zip(self.links, self._credit_sinks)
        ]
        self._flit_scan = [
            (link._in_flight, link, sink)
            for link, sink in zip(self.links, self._flit_sinks)
        ]
        self.cycle = 0

    # ------------------------------------------------------------------
    # Elaboration
    # ------------------------------------------------------------------
    def _wire(self) -> None:
        topo = self.topology
        # Pair each switch->switch output endpoint with the matching
        # input port on the target switch, in registration order (the
        # k-th "from a" input source on b pairs with the k-th "to b"
        # output endpoint on a).
        input_cursor: Dict[Tuple[int, int], int] = {}

        def next_input_port(a: int, b: int) -> int:
            """Input port index on ``b`` fed by the next ``a -> b`` edge."""
            start = input_cursor.get((a, b), 0)
            seen = 0
            for port, src in enumerate(topo.switch_inputs[b]):
                if src.kind == "switch" and src.source == a:
                    if seen == start:
                        input_cursor[(a, b)] = start + 1
                        return port
                    seen += 1
            raise RuntimeError(
                f"no unpaired input port on switch {b} for link"
                f" {a} -> {b}"
            )

        for a in range(topo.n_switches):
            for out_port, ep in enumerate(topo.switch_outputs[a]):
                if ep.kind == "switch":
                    b = ep.target
                    in_port = next_input_port(a, b)
                    link = Link(
                        delay=ep.delay,
                        name=f"sw{a}:out{out_port}->sw{b}:in{in_port}",
                    )
                    self._add_switch_to_switch(
                        link, a, out_port, b, in_port
                    )
                    self.switch_links.setdefault((a, b), []).append(link)
                else:
                    node = ep.target
                    link = Link(
                        delay=ep.delay,
                        name=f"sw{a}:out{out_port}->node{node}",
                    )
                    self._add_ejection(link, a, out_port, node)

        for node, sw in enumerate(topo.node_switch):
            in_port = self._node_input_port(sw, node)
            link = Link(delay=1, name=f"node{node}->sw{sw}:in{in_port}")
            self._add_injection(link, node, sw, in_port)

        for switch in self.switches:
            switch.check_wired()

    def _node_input_port(self, switch: int, node: int) -> int:
        for port, src in enumerate(self.topology.switch_inputs[switch]):
            if src.kind == "node" and src.source == node:
                return port
        raise RuntimeError(
            f"node {node} has no input port on switch {switch}"
        )

    def _add_switch_to_switch(
        self, link: Link, a: int, out_port: int, b: int, in_port: int
    ) -> None:
        up, down = self.switches[a], self.switches[b]
        up.connect_output(
            out_port, link.send, credits=down.inputs[in_port].capacity
        )
        down.connect_input_hook(in_port, link.return_credit)
        self.links.append(link)
        self._credit_sinks.append(
            lambda n, _up=up, _p=out_port: _up.credit(_p, n)
        )
        self._flit_sinks.append(
            lambda flit, now, _down=down, _p=in_port: _down.receive(
                _p, flit
            )
        )

    def _add_ejection(
        self, link: Link, a: int, out_port: int, node: int
    ) -> None:
        up = self.switches[a]
        rx = self.rx[node]
        # A traffic receptor consumes one flit per cycle and never
        # backpressures, hence infinite credits on ejection ports.
        up.connect_output(out_port, link.send, credits=None)
        self.links.append(link)
        self._credit_sinks.append(lambda n: None)
        self._flit_sinks.append(
            lambda flit, now, _rx=rx: _rx.receive(flit, now)
        )

    def _add_injection(
        self, link: Link, node: int, switch: int, in_port: int
    ) -> None:
        ni = self.nis[node]
        down = self.switches[switch]
        ni.connect(link, credits=down.inputs[in_port].capacity)
        down.connect_input_hook(in_port, link.return_credit)
        self.links.append(link)
        self._credit_sinks.append(ni.credit)
        self._flit_sinks.append(
            lambda flit, now, _down=down, _p=in_port: _down.receive(
                _p, flit
            )
        )

    # ------------------------------------------------------------------
    # Per-cycle dataflow
    # ------------------------------------------------------------------
    def step(self) -> int:
        """Advance the fabric by one clock cycle; return flits moved.

        Phase order within the cycle:

        1. credits complete their upstream return trip,
        2. switches arbitrate and move flits onto links,
        3. links deliver flits that finished their flight,
        4. network interfaces inject queued flits.

        A flit delivered in phase 3 therefore traverses its next switch
        no earlier than the following cycle, giving the registered
        one-cycle-per-hop behaviour of the hardware switches.
        """
        now = self.cycle
        for queue, link, sink in self._credit_scan:
            if queue and queue[0][0] <= now:
                sink(link.collect_credits(now))
        moved = 0
        for switch in self.switches:
            moved += switch.traverse(now)
        for queue, link, sink in self._flit_scan:
            if queue and queue[0][0] <= now:
                for flit in link.deliver(now):
                    sink(flit, now)
        for ni in self.nis:
            if ni._flits:
                ni.inject(now)
        if self.sample_buffers:
            for switch in self.switches:
                switch.sample_buffers()
        self.cycle = now + 1
        return moved

    def run(self, cycles: int) -> None:
        """Advance the fabric by ``cycles`` clock cycles."""
        for _ in range(cycles):
            self.step()

    # ------------------------------------------------------------------
    # Injection/ejection conveniences and drain detection
    # ------------------------------------------------------------------
    def offer(self, packet: Packet) -> None:
        """Queue a packet at the NI of its source node."""
        self.nis[packet.src].offer(packet)

    @property
    def in_flight_flits(self) -> int:
        """Flits anywhere between an NI queue and reassembly."""
        total = sum(ni.pending_flits for ni in self.nis)
        total += sum(sw.buffered_flits for sw in self.switches)
        total += sum(link.occupancy for link in self.links)
        return total

    @property
    def is_drained(self) -> bool:
        """True when no flit is queued, buffered, in flight or partial."""
        if any(not ni.idle for ni in self.nis):
            return False
        if any(link.occupancy for link in self.links):
            return False
        if any(sw.buffered_flits for sw in self.switches):
            return False
        return all(rx.partial_packets == 0 for rx in self.rx)

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Step until drained; return cycles spent.  Raises on timeout."""
        start = self.cycle
        while not self.is_drained:
            if self.cycle - start > max_cycles:
                raise RuntimeError(
                    f"network failed to drain within {max_cycles} cycles"
                    f" ({self.in_flight_flits} flits in flight —"
                    f" possible deadlock)"
                )
            self.step()
        return self.cycle - start

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def link_between(self, a: int, b: int) -> Link:
        """The (first) inter-switch link ``a -> b``."""
        try:
            return self.switch_links[(a, b)][0]
        except (KeyError, IndexError):
            raise KeyError(f"no link between switches {a} and {b}") from None

    def link_loads(self) -> Dict[Tuple[int, int], float]:
        """Utilisation of every inter-switch link since cycle 0."""
        elapsed = max(1, self.cycle)
        loads: Dict[Tuple[int, int], float] = {}
        for pair, links in self.switch_links.items():
            for link in links:
                loads[pair] = max(
                    loads.get(pair, 0.0), link.utilization(elapsed)
                )
        return loads

    @property
    def total_blocked_flit_cycles(self) -> int:
        """Network-wide head-of-line blocking events (congestion input)."""
        return sum(sw.blocked_flit_cycles for sw in self.switches)

    def reset_stats(self) -> None:
        for sw in self.switches:
            sw.reset_stats()
        for link in self.links:
            link.reset_stats()
        for ni in self.nis:
            ni.reset_stats()
        for rx in self.rx:
            rx.reset_stats()
