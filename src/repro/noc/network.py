"""Network assembly and the per-cycle dataflow.

A :class:`Network` elaborates a :class:`~repro.noc.topology.Topology`
into concrete switches, links and network interfaces, wires the credit
paths, and exposes a single :meth:`Network.step` that advances the whole
fabric by one clock cycle.  This is the "network of switches [that] can
emulate any NoC packet-switching intercommunication scheme" at the heart
of the hardware platform (Slide 13); the emulation engine in
``repro.core`` drives it together with the traffic devices.

:meth:`Network.step` is *event-driven* down to input-port granularity:
the network keeps a list of switches with movable inputs and a list of
network interfaces with queued flits, each switch keeps a scan list of
exactly those inputs, and flits/credits in flight live in arrival-cycle
delivery wheels — so a cycle costs time proportional to the inputs
that can actually move rather than to the fabric size.  Components
feed these structures through wake-up hooks: a switch notifies when an
input becomes movable (new head, credit return on a starved port,
wormhole-channel release, store-and-forward completion), an NI on
:meth:`~repro.noc.ni.NetworkInterface.offer`.  The original
scan-everything dataflow survives as :meth:`Network.step_reference`;
both paths produce bit-identical cycle behaviour (see
``tests/integration/test_kernel_parity.py``).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.noc.buffer import BufferFullError
from repro.noc.flit import Flit, Packet
from repro.noc.link import Link
from repro.noc.ni import NetworkInterface, ReassemblyBuffer
from repro.noc.routing import RoutingFunction
from repro.noc.switch import (
    Switch,
    SwitchConfig,
    SwitchingMode,
    traverse_all,
)
from repro.noc.topology import Topology


def format_parked_report(entries: List[dict]) -> str:
    """Render :meth:`Network.parked_report` for an error message."""
    if not entries:
        return "no parked inputs"
    parts: List[str] = []
    for e in entries:
        if e["kind"] == "ni":
            parts.append(
                f"ni{e['node']} awaits an injection credit on"
                f" {e['output']} since cycle {e['since']}"
                f" (pid {e['pid']})"
            )
            continue
        what = {
            "credit": f"a credit on {e['output']}",
            "lock": f"the wormhole channel of {e['output']}",
            "sf_partial": "the rest of a store-and-forward packet",
        }[e["reason"]]
        parts.append(
            f"sw{e['switch']}.in{e['input']} awaits {what} since"
            f" cycle {e['since']} (pid {e['pid']})"
        )
    return f"{len(parts)} parked: " + "; ".join(parts)


class Network:
    """An elaborated NoC: switches + links + network interfaces.

    Parameters
    ----------
    topology:
        Switch graph and NI attachment points.
    routing:
        Routing function shared by all switches (table-based in the
        hardware platform).
    buffer_depth:
        Per-input FIFO depth of every switch, in flits.
    arbitration:
        Arbitration policy name (see ``repro.noc.arbiter``).
    mode:
        Wormhole (default) or store-and-forward switching.
    sample_buffers:
        When True, every input buffer records its occupancy each cycle
        (needed by buffer-utilisation reports; costs simulation speed).
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingFunction,
        buffer_depth: int = 4,
        arbitration: str = "round_robin",
        mode: SwitchingMode = SwitchingMode.WORMHOLE,
        sample_buffers: bool = False,
    ) -> None:
        topology.validate()
        self.topology = topology  # repro: allow[state-coverage] structural; restore rebuilds the network from the spec
        self.routing = routing  # repro: allow[state-coverage] structural; restore rebuilds the network from the spec
        self.sample_buffers = sample_buffers  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self.switches: List[Switch] = [
            Switch(
                s,
                SwitchConfig(
                    n_inputs=topology.n_inputs(s),
                    n_outputs=topology.n_outputs(s),
                    buffer_depth=buffer_depth,
                    arbitration=arbitration,
                    mode=mode,
                ),
                routing,
            )
            for s in range(topology.n_switches)
        ]
        self.nis: List[NetworkInterface] = [
            NetworkInterface(node) for node in range(topology.n_nodes)
        ]
        self.rx: List[ReassemblyBuffer] = [
            ReassemblyBuffer(node) for node in range(topology.n_nodes)
        ]
        self.links: List[Link] = []
        #: Map from a directed switch pair (a, b) to the links carrying
        #: a -> b traffic, for link-load monitoring (Slide 19's 90% links).
        self.switch_links: Dict[Tuple[int, int], List[Link]] = {}  # repro: allow[state-coverage] derived wiring index; rebuilt by Network._wire on restore
        #: Map from a link to its upstream feeder: ``(switch, output
        #: port object)`` for inter-switch and ejection links, ``(None,
        #: ni)`` for injection links.  Fault injection walks this to
        #: find the credit counter a dropped wire flit must refund.
        self.link_upstream: Dict[Link, tuple] = {}  # repro: allow[state-coverage] derived wiring index; rebuilt by Network._wire on restore
        #: Map from ``(switch_id, input_port)`` to the link feeding it,
        #: for the instant credit refund of purged buffer slots.
        self._input_feed: Dict[Tuple[int, int], Link] = {}  # repro: allow[state-coverage] derived wiring index; rebuilt by Network._wire on restore
        # Per-link downstream flit sink: called with (flit, now).
        self._flit_sinks: List[Callable[[Flit, int], None]] = []  # repro: allow[state-coverage] derived wiring index; rebuilt by Network._wire on restore
        # Credit-return registrations deferred until the delivery
        # wheels exist: (downstream switch, input port, link, wheel
        # entry).  The entry is structural — (output port object,
        # owning switch) for a switch upstream, (None, NI) for an
        # injection link — so the credit phase settles each return
        # with one attribute add, and the downstream switch's fused
        # hop appends it to the wheel without a callback frame.
        self._pending_credit_hooks: List[tuple] = []  # repro: allow[state-coverage] derived wiring index; rebuilt by Network._wire on restore
        # Event-driven scheduling state.  The active lists hold the
        # switches/NIs with *actionable* work — a switch is listed
        # while its per-input scan list is non-empty, i.e. while at
        # least one input is neither idle nor parked on its
        # unblocking event — deduplicated by per-component flags,
        # iterated and compacted as plain lists.
        # Flits and credits in flight live in the delivery *wheels*:
        # ring buffers indexed by arrival cycle modulo ``wheel_size``
        # (one slot past the largest link delay).  A send appends
        # ``(link, flit)`` to the arrival slot; a buffer pop appends
        # the upstream credit target likewise.  Each cycle drains
        # exactly its own slot — no per-link queues to scan, no event
        # heap to re-key.  Both structures are fed by component hooks,
        # so they stay consistent no matter which step path
        # (event-driven or reference) drives the fabric.
        # ``_in_flight_flits`` counts every flit between an NI queue
        # and reassembly, incremented on offer and decremented on
        # ejection.
        self._active_switches: List[Switch] = []
        self._active_nis: List[NetworkInterface] = []
        self._in_flight_flits = 0
        # Opt-in flit tracer (see repro.telemetry.trace).  None keeps
        # the hot paths exactly as fast as before: the delivery and
        # injection phases test the attribute once per *cycle with
        # traffic*, not per flit, and branch to traced twins of the
        # inlined loops.
        self._tracer = None  # repro: allow[state-coverage] tracers must be re-attached after restore (capture refuses otherwise)
        self._wire()
        self._max_delay = max(  # repro: allow[state-coverage] derived from link delays at construction
            (link.delay for link in self.links), default=1
        )
        size = self._wheel_size = self._max_delay + 1
        self._flit_wheel: List[List[tuple]] = [
            [] for _ in range(size)
        ]
        self._credit_wheel: List[List[tuple]] = [
            [] for _ in range(size)
        ]
        for link, sink in zip(self.links, self._flit_sinks):
            link.wheel = self._flit_wheel
            link.wheel_size = size
            link.sink = sink
        for down, in_port, link, entry in self._pending_credit_hooks:
            down._connect_input_credit(in_port, link.delay, entry)
        for switch in self.switches:
            switch._cwheel = self._credit_wheel
            switch._cwheel_size = size
            switch._fwheel = self._flit_wheel
            switch._fwheel_size = size
            switch._wake = self._make_switch_wake(switch)
            switch._clock = self._now
            switch._compile_routes(topology.n_nodes)
        for ni in self.nis:
            ni._notify_offer = self._make_offer_hook(ni)
            ni._wake = self._make_ni_wake(ni)
            ni._clock = self._now
        self.cycle = 0

    def _now(self) -> int:
        """Current cycle, handed to components as their clock.

        During a step this is the cycle being processed; between steps
        it is the next unprocessed cycle, so bulk settlement through
        ``_now() - 1`` covers exactly the cycles already emulated.
        """
        return self.cycle

    def _make_switch_wake(self, switch: Switch) -> Callable[[], None]:
        active = self._active_switches

        def wake() -> None:
            if not switch._active:
                switch._active = True
                active.append(switch)

        return wake

    def _make_ni_wake(
        self, ni: NetworkInterface
    ) -> Callable[[], None]:
        active = self._active_nis

        def wake() -> None:
            if not ni._active:
                ni._active = True
                active.append(ni)

        return wake

    def _make_offer_hook(
        self, ni: NetworkInterface
    ) -> Callable[[int], None]:
        active = self._active_nis

        def offered(n_flits: int) -> None:
            self._in_flight_flits += n_flits
            if not ni._active:
                ni._active = True
                active.append(ni)

        return offered

    # ------------------------------------------------------------------
    # Elaboration
    # ------------------------------------------------------------------
    def _wire(self) -> None:
        topo = self.topology
        # Pair each switch->switch output endpoint with the matching
        # input port on the target switch, in registration order (the
        # k-th "from a" input source on b pairs with the k-th "to b"
        # output endpoint on a).
        input_cursor: Dict[Tuple[int, int], int] = {}

        def next_input_port(a: int, b: int) -> int:
            """Input port index on ``b`` fed by the next ``a -> b`` edge."""
            start = input_cursor.get((a, b), 0)
            seen = 0
            for port, src in enumerate(topo.switch_inputs[b]):
                if src.kind == "switch" and src.source == a:
                    if seen == start:
                        input_cursor[(a, b)] = start + 1
                        return port
                    seen += 1
            raise RuntimeError(
                f"no unpaired input port on switch {b} for link"
                f" {a} -> {b}"
            )

        for a in range(topo.n_switches):
            for out_port, ep in enumerate(topo.switch_outputs[a]):
                if ep.kind == "switch":
                    b = ep.target
                    in_port = next_input_port(a, b)
                    link = Link(
                        delay=ep.delay,
                        name=f"sw{a}:out{out_port}->sw{b}:in{in_port}",
                    )
                    self._add_switch_to_switch(
                        link, a, out_port, b, in_port
                    )
                    self.switch_links.setdefault((a, b), []).append(link)
                else:
                    node = ep.target
                    link = Link(
                        delay=ep.delay,
                        name=f"sw{a}:out{out_port}->node{node}",
                    )
                    self._add_ejection(link, a, out_port, node)

        for node, sw in enumerate(topo.node_switch):
            in_port = self._node_input_port(sw, node)
            link = Link(delay=1, name=f"node{node}->sw{sw}:in{in_port}")
            self._add_injection(link, node, sw, in_port)

        for switch in self.switches:
            switch.check_wired()

    def _node_input_port(self, switch: int, node: int) -> int:
        for port, src in enumerate(self.topology.switch_inputs[switch]):
            if src.kind == "node" and src.source == node:
                return port
        raise RuntimeError(
            f"node {node} has no input port on switch {switch}"
        )

    def _add_switch_to_switch(
        self, link: Link, a: int, out_port: int, b: int, in_port: int
    ) -> None:
        up, down = self.switches[a], self.switches[b]
        up.connect_output(
            out_port,
            link.send,
            credits=down.inputs[in_port].capacity,
            link=link,
        )
        self.links.append(link)
        # partial() binds are C-level: no extra Python frame per event.
        self._pending_credit_hooks.append(
            (down, in_port, link, (up._outputs[out_port], up))
        )
        link.dst = (down, in_port, down.inputs[in_port])
        self.link_upstream[link] = (up, up._outputs[out_port])
        self._input_feed[(b, in_port)] = link
        self._flit_sinks.append(partial(down.receive, in_port))

    def _add_ejection(
        self, link: Link, a: int, out_port: int, node: int
    ) -> None:
        up = self.switches[a]
        rx = self.rx[node]
        # A traffic receptor consumes one flit per cycle and never
        # backpressures, hence infinite credits on ejection ports
        # (whose links consequently never schedule a credit return).
        up.connect_output(out_port, link.send, credits=None, link=link)
        self.links.append(link)
        link.rx = rx
        self.link_upstream[link] = (up, up._outputs[out_port])
        self._flit_sinks.append(partial(self._eject, rx))

    def _eject(self, rx: ReassemblyBuffer, flit: Flit, now: int) -> None:
        """Hand a flit to reassembly, retiring it from the in-flight count."""
        self._in_flight_flits -= 1
        rx.receive(flit, now)

    def _add_injection(
        self, link: Link, node: int, switch: int, in_port: int
    ) -> None:
        ni = self.nis[node]
        down = self.switches[switch]
        ni.connect(link, credits=down.inputs[in_port].capacity)
        self.links.append(link)
        self._pending_credit_hooks.append(
            (down, in_port, link, (None, ni))
        )
        link.dst = (down, in_port, down.inputs[in_port])
        self.link_upstream[link] = (None, ni)
        self._input_feed[(switch, in_port)] = link
        self._flit_sinks.append(partial(down.receive, in_port))

    # ------------------------------------------------------------------
    # Per-cycle dataflow
    # ------------------------------------------------------------------
    def step(self) -> int:
        """Advance the fabric by one clock cycle; return flits moved.

        Phase order within the cycle:

        1. credits complete their upstream return trip,
        2. switches arbitrate and move flits onto links,
        3. links deliver flits that finished their flight,
        4. network interfaces inject queued flits.

        A flit delivered in phase 3 therefore traverses its next switch
        no earlier than the following cycle, giving the registered
        one-cycle-per-hop behaviour of the hardware switches.

        Each phase visits only components with *actionable* work:
        switches/NIs from the active lists, delivery-wheel slots for
        the wire traffic.  Iteration order within a phase is free —
        components of one phase never interact with each other inside
        a cycle (sends land on links, never directly on another
        switch).  Retirement is deferred and lazy: a component found
        workless is dropped during the phase's in-place compaction.

        Blocking is handled at *input* granularity: an input whose
        head cannot move parks inside the switch (see
        :meth:`~repro.noc.switch.Switch.traverse`) and is woken only
        by the event that can change its outcome — a credit return on
        its starved output port, the release of the wormhole channel
        it waits on, a flit into its empty buffer, or an arrival
        completing its store-and-forward packet — with its per-cycle
        stall statistics settled in bulk on wake-up.  A switch whose
        scan list empties leaves the network's active list entirely;
        an NI whose inject stalled on credits parks the same way.
        Parked inputs cost zero Python per cycle, and a *partially*
        blocked switch keeps streaming its movable inputs without
        rescanning the blocked ones — at saturation this is the
        headroom activity-proportional scheduling alone cannot reach.
        """
        now = self.cycle
        size = self._wheel_size
        slot = self._credit_wheel[now % size]
        if slot:
            for out, target in slot:
                if out is not None:
                    # Inter-switch link: settle the return straight
                    # into the upstream output port's counter.
                    out.credits += 1
                    if out.credit_waiters:
                        target._credit_wake_port(out, now)
                else:
                    # Injection link: the NI's credit counter.
                    target._credits += 1
                    if target._parked:
                        target._credit_unpark()
            del slot[:]
        moved = 0
        active = self._active_switches
        if active:
            # One fused loop over every switch with movable inputs; a
            # switch whose scan list empties (idle, or every input
            # parked on its unblocking event) retires from the list.
            moved, retire = traverse_all(
                active, now, self._credit_wheel, self._flit_wheel, size
            )
            if retire:
                active[:] = [sw for sw in active if sw._active]
        slot = self._flit_wheel[now % size]
        if slot and self._tracer is not None:
            self._deliver_traced(slot, now)
        elif slot:
            # Fused delivery: links feeding a switch input push the
            # flit straight into the buffer (Switch.receive inlined —
            # keep the two in lockstep), activating the input and
            # waking the switch as needed; ejection links and custom
            # sinks go through the bound ``sink``.
            active = self._active_switches
            for link, flit in slot:
                link.wire_count -= 1
                dst = link.dst
                if dst is None:
                    rx = link.rx
                    if rx is None:
                        link.sink(flit, now)
                    else:
                        # Ejection: hand the flit to reassembly,
                        # retiring it from the in-flight count.
                        self._in_flight_flits -= 1
                        rx.receive(flit, now)
                    continue
                sw, port, buf = dst
                fifo = buf._fifo
                if len(fifo) >= buf.capacity:
                    raise BufferFullError(
                        f"push into full buffer {buf.name or id(buf)} "
                        f"(capacity {buf.capacity})"
                    )
                fifo.append(flit)
                counts = buf._pid_counts
                if counts is not None:
                    pid = flit.packet.pid
                    counts[pid] = counts.get(pid, 0) + 1
                buf.total_pushes += 1
                depth = len(fifo)
                if depth > buf.peak_occupancy:
                    buf.peak_occupancy = depth
                sw._buffered += 1
                if depth == 1:
                    # Previously empty input: a new head to route.
                    if not sw._in_listed[port]:
                        sw._in_listed[port] = True
                        sw._in_active[port] = True
                        sw._scan.append(sw._in_tuples[port])
                    if not sw._active:
                        sw._active = True
                        active.append(sw)
                elif (
                    sw._sf_mode
                    and sw._in_parked[port]
                    and sw._in_park_head[port] is None
                ):
                    # Store-and-forward: the arrival may complete the
                    # waiting head packet.
                    sw._unpark_input(port)
            del slot[:]
        active = self._active_nis
        if active and self._tracer is not None:
            self._inject_traced(active, now)
        elif active:
            # NetworkInterface.inject inlined (keep the two in
            # lockstep): one flit on the wire per NI per cycle is a
            # hot path at saturation.  NIs on the active list are
            # never parked, and network-wired injection links always
            # share the global flit wheel.
            fwheel = self._flit_wheel
            retire = False
            for ni in active:
                flits = ni._flits
                if not flits:
                    ni._active = False
                    retire = True
                    continue
                if ni._credits <= 0:
                    # Credit-starved: stall, then park until the
                    # injection link returns a credit (or a fresh
                    # offer arrives).
                    ni._stall_cycles += 1
                    flits[0].stall_cycles += 1
                    ni._active = False
                    ni._park(now)
                    retire = True
                    continue
                flit = flits.popleft()
                if flit.is_head:
                    flit.packet.wire_entry_cycle = now
                link = ni._link
                if link._last_send_cycle == now:
                    link.send(flit, now)  # raises the protocol error
                link._last_send_cycle = now
                fwheel[(now + link.delay) % size].append((link, flit))
                link.wire_count += 1
                link.flits_carried += 1
                ni._credits -= 1
                ni.injected_flits += 1
                if flit.is_tail:
                    ni.injected_packets += 1
                level = ni._drain_level
                if level is not None and len(flits) == level - 1:
                    # The source queue just dropped below the
                    # generator's backpressure limit: fire the
                    # one-shot drain watch.
                    callback = ni._on_drain
                    ni._drain_level = None
                    ni._on_drain = None
                    callback(now)
                if not flits:
                    ni._active = False
                    retire = True
            if retire:
                active[:] = [ni for ni in active if ni._active]
        if self.sample_buffers:
            for switch in self.switches:
                switch.sample_buffers()
        self.cycle = now + 1
        return moved

    def step_reference(self) -> int:
        """One cycle via the original scan-everything dataflow.

        Kept as the parity oracle for :meth:`step`: it visits every
        switch and NI each cycle regardless of activity, so it is
        size-proportional but trivially correct.  The wake-up hooks and
        the in-flight counter are maintained by the components
        themselves, and state parked by the event-driven path
        self-heals — :meth:`~repro.noc.switch.Switch.traverse_reference`
        settles and re-arms every parked input before its full scan,
        and a parked NI settles inside ``inject`` — so the bookkeeping
        stays consistent even when the two paths alternate on one
        fabric.
        """
        now = self.cycle
        self._drain_credit_slot(now)
        moved = 0
        active = self._active_switches
        compact = False
        for switch in self.switches:
            moved += switch.traverse_reference(now)
            if switch._scan:
                if not switch._active:
                    switch._active = True
                    active.append(switch)
            elif switch._active:
                switch._active = False
                compact = True
        if compact:
            active[:] = [sw for sw in active if sw._active]
        self._drain_flit_slot(now)
        active_nis = self._active_nis
        compact = False
        tracer = self._tracer
        for ni in self.nis:
            if ni._flits:
                if tracer is None:
                    ni.inject(now)
                else:
                    head = ni._flits[0]
                    if ni.inject(now):
                        tracer.inject(now, ni, head)
            if ni._flits:
                if not ni._active:
                    ni._active = True
                    active_nis.append(ni)
            elif ni._active:
                ni._active = False
                compact = True
        if compact:
            active_nis[:] = [ni for ni in active_nis if ni._active]
        if self.sample_buffers:
            for switch in self.switches:
                switch.sample_buffers()
        self.cycle = now + 1
        return moved

    def _drain_credit_slot(self, now: int) -> None:
        """Deliver the credits arriving at ``now`` (reference path).

        Same semantics as the block inlined in :meth:`step` — keep the
        two in lockstep: the parked-wake conditions here are what the
        parity suites compare against.
        """
        slot = self._credit_wheel[now % self._wheel_size]
        if slot:
            for out, target in slot:
                if out is not None:
                    out.credits += 1
                    if out.credit_waiters:
                        target._credit_wake_port(out, now)
                else:
                    target._credits += 1
                    if target._parked:
                        target._credit_unpark()
            del slot[:]

    def _drain_flit_slot(self, now: int) -> None:
        """Deliver the flits arriving at ``now`` (reference path)."""
        slot = self._flit_wheel[now % self._wheel_size]
        if slot:
            if self._tracer is not None:
                self._deliver_traced(slot, now)
                return
            for link, flit in slot:
                link.wire_count -= 1
                link.sink(flit, now)
            del slot[:]

    # ------------------------------------------------------------------
    # Flit tracing (see repro.telemetry.trace)
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Route flit delivery/injection through ``tracer`` hooks.

        Both step paths report the same events; the tracer buffers one
        cycle at a time and flushes it in a canonical order, so the
        event streams of the two kernels are bit-identical even though
        their intra-cycle iteration orders differ.
        """
        if self._tracer is not None:
            raise RuntimeError("a tracer is already attached")
        self._tracer = tracer

    def detach_tracer(self):
        """Remove and return the attached tracer (None if none)."""
        tracer = self._tracer
        self._tracer = None
        return tracer

    def _deliver_traced(self, slot: list, now: int) -> None:
        """Traced twin of the fused delivery loop in :meth:`step`.

        Identical state effects (``Switch.receive`` is the out-of-line
        form of the inlined buffer push; the ejection branch mirrors
        :meth:`_eject`), plus one tracer event per flit: ``hop`` into a
        switch input, ``eject`` + possibly ``packet`` at reassembly.
        """
        tracer = self._tracer
        for link, flit in slot:
            link.wire_count -= 1
            dst = link.dst
            if dst is None:
                rx = link.rx
                if rx is None:
                    link.sink(flit, now)
                    continue
                self._in_flight_flits -= 1
                tracer.eject(now, link, flit)
                if rx.receive(flit, now) is not None:
                    tracer.packet_done(now, rx, flit.packet)
                continue
            tracer.hop(now, link, flit)
            dst[0].receive(dst[1], flit, now)
        del slot[:]

    def _inject_traced(
        self, active: List[NetworkInterface], now: int
    ) -> None:
        """Traced twin of the inlined NI phase in :meth:`step`.

        Keep in lockstep with both that block and
        ``NetworkInterface.inject`` — same credit/parking/drain-watch
        semantics, plus an ``inject`` event per flit put on the wire.
        """
        tracer = self._tracer
        fwheel = self._flit_wheel
        size = self._wheel_size
        retire = False
        for ni in active:
            flits = ni._flits
            if not flits:
                ni._active = False
                retire = True
                continue
            if ni._credits <= 0:
                ni._stall_cycles += 1
                flits[0].stall_cycles += 1
                ni._active = False
                ni._park(now)
                retire = True
                continue
            flit = flits.popleft()
            if flit.is_head:
                flit.packet.wire_entry_cycle = now
            link = ni._link
            if link._last_send_cycle == now:
                link.send(flit, now)  # raises the protocol error
            link._last_send_cycle = now
            fwheel[(now + link.delay) % size].append((link, flit))
            link.wire_count += 1
            link.flits_carried += 1
            ni._credits -= 1
            ni.injected_flits += 1
            if flit.is_tail:
                ni.injected_packets += 1
            tracer.inject(now, ni, flit)
            level = ni._drain_level
            if level is not None and len(flits) == level - 1:
                callback = ni._on_drain
                ni._drain_level = None
                ni._on_drain = None
                callback(now)
            if not flits:
                ni._active = False
                retire = True
        if retire:
            active[:] = [ni for ni in active if ni._active]

    def run(self, cycles: int) -> None:
        """Advance the fabric by ``cycles`` clock cycles."""
        for _ in range(cycles):
            self.step()

    # ------------------------------------------------------------------
    # Injection/ejection conveniences and drain detection
    # ------------------------------------------------------------------
    def offer(self, packet: Packet) -> None:
        """Queue a packet at the NI of its source node."""
        self.nis[packet.src].offer(packet)

    @property
    def in_flight_flits(self) -> int:
        """Flits anywhere between an NI queue and reassembly (O(1))."""
        return self._in_flight_flits

    def scan_in_flight_flits(self) -> int:
        """The in-flight count recomputed by scanning every component.

        Parity oracle for the incremental counter; equal to
        :attr:`in_flight_flits` unless the bookkeeping has a bug.
        """
        total = sum(ni.pending_flits for ni in self.nis)
        total += sum(len(buf) for sw in self.switches for buf in sw.inputs)
        total += sum(link.occupancy for link in self.links)
        return total

    def _flush_credits_until(self, target: int) -> None:
        """Deliver every credit arriving in ``(cycle, target]`` now.

        Idle fast-forward helper: with the fabric quiescent nothing
        can observe a credit counter until the next flit moves (at or
        after ``target``), so early delivery is invisible — and with
        no flit buffered anywhere no input or NI is parked, so no
        wake-up is due.
        Credits scheduled beyond ``target`` stay in their wheel slots,
        which remain correctly indexed after the jump (every pending
        arrival lies within one wheel revolution of the clock).

        Offset 0 matters: a credit can be due exactly at the current
        (not yet processed) cycle, whose slot only the skipped-over
        step would have drained.
        """
        size = self._wheel_size
        now = self.cycle
        wheel = self._credit_wheel
        for offset in range(size):
            if now + offset > target:
                break
            slot = wheel[(now + offset) % size]
            if slot:
                for out, target_obj in slot:
                    if out is not None:
                        out.credits += 1
                    else:
                        target_obj._credits += 1
                del slot[:]

    @property
    def quiescent(self) -> bool:
        """True when no flit is queued, buffered or on a wire.

        Credits may still be returning upstream; they carry no
        observable state change until the next flit moves, so a
        quiescent fabric can fast-forward over idle cycles.
        """
        return self._in_flight_flits == 0

    @property
    def is_drained(self) -> bool:
        """True when no flit is queued, buffered, in flight or partial."""
        if self._in_flight_flits:
            return False
        return all(rx.partial_packets == 0 for rx in self.rx)

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Step until drained; return cycles spent.  Raises on timeout."""
        start = self.cycle
        while not self.is_drained:
            if self.cycle - start > max_cycles:
                raise RuntimeError(
                    f"network failed to drain within {max_cycles} cycles"
                    f" ({self.in_flight_flits} flits in flight —"
                    f" possible deadlock);"
                    f" {format_parked_report(self.parked_report())}"
                )
            self.step()
        return self.cycle - start

    # ------------------------------------------------------------------
    # Fault support
    # ------------------------------------------------------------------
    def abort_packets(self, pids, now: int):
        """Remove every trace of the packets in ``pids`` from the fabric.

        Shared abort path of the fault injector, called between cycles
        (before the credit phase of cycle ``now``) by whichever kernel
        drives the fabric — the same code runs under :meth:`step` and
        :meth:`step_reference`, which is what keeps the two
        bit-identical under faults.  The abort models a reconfiguration
        master flushing state out of the fabric, so freed buffer slots
        refund their upstream credit instantly (the cycle-accurate
        credit wire only carries credits of normally-popped flits);
        flits dropped from a wire refund theirs too unless the carrying
        or feeding link is itself down, in which case ``link_up``
        re-baselines the credit counter wholesale.

        Returns ``(dropped_flits, per_link_drops, affected_pids)``:
        flits removed from queues/buffers/wires, wire drops keyed by
        link name, and the pids that actually lost state.
        """
        dropped = 0
        per_link: Dict[str, int] = {}
        affected = set()

        # 1. Release wormhole channels held by aborted packets: their
        # tails can no longer arrive, so waiters would starve forever.
        for sw in self.switches:
            route_outs = sw._input_out
            for out in sw._outputs:
                pid = out.lock_pid
                if pid is None or pid not in pids:
                    continue
                affected.add(pid)
                holder = out.lock
                out.lock = None
                out.lock_pid = None
                if holder is not None:
                    sw._input_route[holder] = None
                    route_outs[holder] = None
                lw = out.lock_waiters
                if lw:
                    parked = sw._in_parked
                    for j in lw:
                        if parked[j]:
                            sw._wake_input(j, now - 1)
                    del lw[:]

        # 2. Purge switch input buffers, waking parked inputs (their
        # awaited event may never fire now) and refunding the freed
        # slots upstream.  Purges are not pops: ``total_pops`` and the
        # credit wire stay untouched.
        for sw in self.switches:
            inputs = sw.inputs
            for i in range(len(inputs)):
                buf = inputs[i]
                fifo = buf._fifo
                if not fifo:
                    continue
                keep = [f for f in fifo if f.packet.pid not in pids]
                n = len(fifo) - len(keep)
                if not n:
                    continue
                for f in fifo:
                    if f.packet.pid in pids:
                        affected.add(f.packet.pid)
                head_purged = fifo[0].packet.pid in pids
                fifo.clear()
                fifo.extend(keep)
                counts = buf._pid_counts
                if counts is not None:
                    for pid in [p for p in counts if p in pids]:
                        del counts[pid]
                sw._buffered -= n
                self._in_flight_flits -= n
                dropped += n
                if sw._in_parked[i]:
                    sw._wake_input(i, now - 1)
                if head_purged:
                    sw._input_route[i] = None
                    sw._input_out[i] = None
                feed = self._input_feed.get((sw.switch_id, i))
                if feed is not None and not feed.down:
                    up, target = self.link_upstream[feed]
                    if up is not None:
                        target.credits += n
                        if target.credit_waiters:
                            up._credit_wake_port(target, now)
                    else:
                        target._credits += n
                        if target._parked:
                            target._credit_unpark()

        # 3. Drop in-flight wire flits from every wheel slot.
        for slot in self._flit_wheel:
            if not slot:
                continue
            keep = []
            for entry in slot:
                link, flit = entry
                pid = flit.packet.pid
                if pid not in pids:
                    keep.append(entry)
                    continue
                affected.add(pid)
                link.wire_count -= 1
                link.flits_dropped += 1
                name = link.name or repr(link)
                per_link[name] = per_link.get(name, 0) + 1
                self._in_flight_flits -= 1
                dropped += 1
                if not link.down:
                    up, target = self.link_upstream[link]
                    if up is not None:
                        if not target.infinite_credits:
                            target.credits += 1
                            if target.credit_waiters:
                                up._credit_wake_port(target, now)
                    else:
                        target._credits += 1
                        if target._parked:
                            target._credit_unpark()
            if len(keep) != len(slot):
                slot[:] = keep

        # 4. NI source queues.
        for ni in self.nis:
            for f in ni._flits:
                if f.packet.pid in pids:
                    affected.add(f.packet.pid)
            n = ni.purge_pids(pids, now)
            if n:
                self._in_flight_flits -= n
                dropped += n

        # 5. Partially reassembled packets (their already-ejected flits
        # were retired from the in-flight count on ejection).
        for rx in self.rx:
            affected.update(rx.abort_packets(pids))

        tracer = self._tracer
        if tracer is not None:
            # Sorted for canonical event order: the affected set is
            # accumulated in fabric-walk order, which differs between
            # kernels.
            for pid in sorted(affected):
                tracer.abort(now, pid)
        return dropped, per_link, affected

    def parked_report(self) -> List[dict]:
        """Snapshot of every parked input/NI and its awaited event.

        Diagnostic companion of the parking machinery: stagnation and
        drain-timeout errors embed this so a never-woken parked input
        is attributable instead of a silent hang.  ``since`` is the
        cycle the parked stretch last settled through.
        """
        entries: List[dict] = []
        for sw in self.switches:
            parked = sw._in_parked
            for i, is_parked in enumerate(parked):
                if not is_parked:
                    continue
                if sw._in_park_head[i] is None:
                    reason = "sf_partial"
                elif sw._in_park_credit[i]:
                    reason = "credit"
                else:
                    reason = "lock"
                out = sw._input_out[i]
                link = out.link if out is not None else None
                fifo = sw.inputs[i]._fifo
                entries.append(
                    {
                        "kind": "switch_input",
                        "switch": sw.switch_id,
                        "input": i,
                        "reason": reason,
                        "output": getattr(link, "name", None),
                        "since": sw._in_park_cycle[i],
                        "pid": fifo[0].packet.pid if fifo else None,
                    }
                )
        for ni in self.nis:
            if ni._parked:
                entries.append(
                    {
                        "kind": "ni",
                        "node": ni.node,
                        "reason": "credit",
                        "output": getattr(ni._link, "name", None),
                        "since": ni._park_cycle,
                        "pid": (
                            ni._flits[0].packet.pid
                            if ni._flits
                            else None
                        ),
                    }
                )
        return entries

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def link_between(self, a: int, b: int) -> Link:
        """The (first) inter-switch link ``a -> b``."""
        try:
            return self.switch_links[(a, b)][0]
        except (KeyError, IndexError):
            raise KeyError(f"no link between switches {a} and {b}") from None

    def link_loads(self) -> Dict[Tuple[int, int], float]:
        """Utilisation of every inter-switch link over its stats window.

        The window runs from the link's last :meth:`reset_stats` (cycle
        0 if never reset) to the current cycle, so mid-run statistics
        resets yield the post-reset utilisation rather than diluting
        ``busy_cycles`` over the whole run.
        """
        loads: Dict[Tuple[int, int], float] = {}
        for pair, links in self.switch_links.items():
            for link in links:
                elapsed = max(1, self.cycle - link.stats_since)
                loads[pair] = max(
                    loads.get(pair, 0.0), link.utilization(elapsed)
                )
        return loads

    @property
    def total_blocked_flit_cycles(self) -> int:
        """Network-wide head-of-line blocking events (congestion input)."""
        return sum(sw.blocked_flit_cycles for sw in self.switches)

    def reset_stats(self) -> None:
        for sw in self.switches:
            sw.reset_stats()
        for link in self.links:
            link.reset_stats(now=self.cycle)
        for ni in self.nis:
            ni.reset_stats()
        for rx in self.rx:
            rx.reset_stats()
