"""Network assembly and the per-cycle dataflow.

A :class:`Network` elaborates a :class:`~repro.noc.topology.Topology`
into concrete switches, links and network interfaces, wires the credit
paths, and exposes a single :meth:`Network.step` that advances the whole
fabric by one clock cycle.  This is the "network of switches [that] can
emulate any NoC packet-switching intercommunication scheme" at the heart
of the hardware platform (Slide 13); the emulation engine in
``repro.core`` drives it together with the traffic devices.

:meth:`Network.step` is *event-driven*: the network keeps a set of
switches with buffered flits, a set of network interfaces with queued
flits, and one armed set per link queue kind (flit deliveries, credit
returns), so a cycle costs time proportional to the components with
work rather than to the fabric size.  Components feed these structures
through wake-up hooks: a switch notifies on its empty -> busy
:meth:`~repro.noc.switch.Switch.receive` transition, a link arms
itself when :meth:`~repro.noc.link.Link.send` or
:meth:`~repro.noc.link.Link.return_credit` starts a flight, and an NI
notifies on :meth:`~repro.noc.ni.NetworkInterface.offer`.  Link queues
are FIFOs with constant delay, so each queue head *is* its earliest
arrival time: the armed sets are a flattened event heap whose per-link
minima pop in O(1), without the heap churn a delay-1 link would cause
by re-keying every cycle.  The original scan-everything dataflow
survives as :meth:`Network.step_reference`; both paths produce
bit-identical cycle behaviour (see
``tests/integration/test_kernel_parity.py``).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.noc.flit import Flit, Packet
from repro.noc.link import Link
from repro.noc.ni import NetworkInterface, ReassemblyBuffer
from repro.noc.routing import RoutingFunction
from repro.noc.switch import Switch, SwitchConfig, SwitchingMode
from repro.noc.topology import Topology


class Network:
    """An elaborated NoC: switches + links + network interfaces.

    Parameters
    ----------
    topology:
        Switch graph and NI attachment points.
    routing:
        Routing function shared by all switches (table-based in the
        hardware platform).
    buffer_depth:
        Per-input FIFO depth of every switch, in flits.
    arbitration:
        Arbitration policy name (see ``repro.noc.arbiter``).
    mode:
        Wormhole (default) or store-and-forward switching.
    sample_buffers:
        When True, every input buffer records its occupancy each cycle
        (needed by buffer-utilisation reports; costs simulation speed).
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingFunction,
        buffer_depth: int = 4,
        arbitration: str = "round_robin",
        mode: SwitchingMode = SwitchingMode.WORMHOLE,
        sample_buffers: bool = False,
    ) -> None:
        topology.validate()
        self.topology = topology
        self.routing = routing
        self.sample_buffers = sample_buffers
        self.switches: List[Switch] = [
            Switch(
                s,
                SwitchConfig(
                    n_inputs=topology.n_inputs(s),
                    n_outputs=topology.n_outputs(s),
                    buffer_depth=buffer_depth,
                    arbitration=arbitration,
                    mode=mode,
                ),
                routing,
            )
            for s in range(topology.n_switches)
        ]
        self.nis: List[NetworkInterface] = [
            NetworkInterface(node) for node in range(topology.n_nodes)
        ]
        self.rx: List[ReassemblyBuffer] = [
            ReassemblyBuffer(node) for node in range(topology.n_nodes)
        ]
        self.links: List[Link] = []
        #: Map from a directed switch pair (a, b) to the links carrying
        #: a -> b traffic, for link-load monitoring (Slide 19's 90% links).
        self.switch_links: Dict[Tuple[int, int], List[Link]] = {}
        # Per-link upstream credit sink: called with the credit count.
        self._credit_sinks: List[Callable[[int], None]] = []
        # Per-link downstream flit sink: called with (flit, now).
        self._flit_sinks: List[Callable[[Flit, int], None]] = []
        # Event-driven scheduling state.  The active sets hold the ids
        # of switches/NIs with buffered flits; the armed sets hold the
        # indices of links with a non-empty flit/credit queue.  All
        # four are fed by component wake-up hooks, so they stay
        # consistent no matter which step path (event-driven or
        # reference) drives the fabric.  ``_in_flight_flits`` counts
        # every flit between an NI queue and reassembly, incremented on
        # offer and decremented on ejection.
        self._active_switches: Set[int] = set()
        self._active_nis: Set[int] = set()
        self._armed_flit_links: Set[int] = set()
        self._armed_credit_links: Set[int] = set()
        self._in_flight_flits = 0
        self._wire()
        # Pre-zipped scan lists so the per-cycle loops touch each
        # link's queues without repeated attribute lookups.
        self._credit_scan = [
            (link._credits_in_flight, link, sink)
            for link, sink in zip(self.links, self._credit_sinks)
        ]
        self._flit_scan = [
            (link._in_flight, link, sink)
            for link, sink in zip(self.links, self._flit_sinks)
        ]
        for switch in self.switches:
            switch._wake = self._make_wake_hook(
                self._active_switches, switch.switch_id
            )
        for idx, link in enumerate(self.links):
            link.on_flit_scheduled = self._make_arm_hook(
                self._armed_flit_links, idx
            )
            link.on_credit_scheduled = self._make_arm_hook(
                self._armed_credit_links, idx
            )
        for node, ni in enumerate(self.nis):
            ni._notify_offer = self._make_offer_hook(node)
        self.cycle = 0

    @staticmethod
    def _make_wake_hook(active: Set[int], member: int) -> Callable[[], None]:
        def wake() -> None:
            active.add(member)

        return wake

    @staticmethod
    def _make_arm_hook(
        armed: Set[int], idx: int
    ) -> Callable[[int], None]:
        def arm(arrival: int) -> None:
            armed.add(idx)

        return arm

    def _make_offer_hook(self, node: int) -> Callable[[int], None]:
        active = self._active_nis

        def offered(n_flits: int) -> None:
            self._in_flight_flits += n_flits
            active.add(node)

        return offered

    # ------------------------------------------------------------------
    # Elaboration
    # ------------------------------------------------------------------
    def _wire(self) -> None:
        topo = self.topology
        # Pair each switch->switch output endpoint with the matching
        # input port on the target switch, in registration order (the
        # k-th "from a" input source on b pairs with the k-th "to b"
        # output endpoint on a).
        input_cursor: Dict[Tuple[int, int], int] = {}

        def next_input_port(a: int, b: int) -> int:
            """Input port index on ``b`` fed by the next ``a -> b`` edge."""
            start = input_cursor.get((a, b), 0)
            seen = 0
            for port, src in enumerate(topo.switch_inputs[b]):
                if src.kind == "switch" and src.source == a:
                    if seen == start:
                        input_cursor[(a, b)] = start + 1
                        return port
                    seen += 1
            raise RuntimeError(
                f"no unpaired input port on switch {b} for link"
                f" {a} -> {b}"
            )

        for a in range(topo.n_switches):
            for out_port, ep in enumerate(topo.switch_outputs[a]):
                if ep.kind == "switch":
                    b = ep.target
                    in_port = next_input_port(a, b)
                    link = Link(
                        delay=ep.delay,
                        name=f"sw{a}:out{out_port}->sw{b}:in{in_port}",
                    )
                    self._add_switch_to_switch(
                        link, a, out_port, b, in_port
                    )
                    self.switch_links.setdefault((a, b), []).append(link)
                else:
                    node = ep.target
                    link = Link(
                        delay=ep.delay,
                        name=f"sw{a}:out{out_port}->node{node}",
                    )
                    self._add_ejection(link, a, out_port, node)

        for node, sw in enumerate(topo.node_switch):
            in_port = self._node_input_port(sw, node)
            link = Link(delay=1, name=f"node{node}->sw{sw}:in{in_port}")
            self._add_injection(link, node, sw, in_port)

        for switch in self.switches:
            switch.check_wired()

    def _node_input_port(self, switch: int, node: int) -> int:
        for port, src in enumerate(self.topology.switch_inputs[switch]):
            if src.kind == "node" and src.source == node:
                return port
        raise RuntimeError(
            f"node {node} has no input port on switch {switch}"
        )

    def _add_switch_to_switch(
        self, link: Link, a: int, out_port: int, b: int, in_port: int
    ) -> None:
        up, down = self.switches[a], self.switches[b]
        up.connect_output(
            out_port,
            link.send,
            credits=down.inputs[in_port].capacity,
            link=link,
        )
        down.connect_input_hook(in_port, link.return_credit)
        self.links.append(link)
        # partial() binds are C-level: no extra Python frame per event.
        self._credit_sinks.append(partial(up.credit, out_port))
        self._flit_sinks.append(partial(down.receive, in_port))

    def _add_ejection(
        self, link: Link, a: int, out_port: int, node: int
    ) -> None:
        up = self.switches[a]
        rx = self.rx[node]
        # A traffic receptor consumes one flit per cycle and never
        # backpressures, hence infinite credits on ejection ports.
        up.connect_output(out_port, link.send, credits=None, link=link)
        self.links.append(link)
        self._credit_sinks.append(lambda n: None)
        self._flit_sinks.append(partial(self._eject, rx))

    def _eject(self, rx: ReassemblyBuffer, flit: Flit, now: int) -> None:
        """Hand a flit to reassembly, retiring it from the in-flight count."""
        self._in_flight_flits -= 1
        rx.receive(flit, now)

    def _add_injection(
        self, link: Link, node: int, switch: int, in_port: int
    ) -> None:
        ni = self.nis[node]
        down = self.switches[switch]
        ni.connect(link, credits=down.inputs[in_port].capacity)
        down.connect_input_hook(in_port, link.return_credit)
        self.links.append(link)
        self._credit_sinks.append(ni.credit)
        self._flit_sinks.append(partial(down.receive, in_port))

    # ------------------------------------------------------------------
    # Per-cycle dataflow
    # ------------------------------------------------------------------
    def step(self) -> int:
        """Advance the fabric by one clock cycle; return flits moved.

        Phase order within the cycle:

        1. credits complete their upstream return trip,
        2. switches arbitrate and move flits onto links,
        3. links deliver flits that finished their flight,
        4. network interfaces inject queued flits.

        A flit delivered in phase 3 therefore traverses its next switch
        no earlier than the following cycle, giving the registered
        one-cycle-per-hop behaviour of the hardware switches.

        Each phase visits only components with work: armed links,
        then switches/NIs from the active sets.  Iteration order
        within a phase is free — components of one phase never
        interact with each other inside a cycle (sends land on links,
        never directly on another switch).  Retirement is deferred and
        lazy: a link whose queue is found empty is retired on the next
        visit, so sustained traffic arms each link exactly once instead
        of churning the sets every cycle.
        """
        now = self.cycle
        armed = self._armed_credit_links
        if armed:
            scan = self._credit_scan
            retire = None
            for idx in armed:
                queue, link, sink = scan[idx]
                if not queue:
                    if retire is None:
                        retire = [idx]
                    else:
                        retire.append(idx)
                elif queue[0][0] <= now:
                    total = 0
                    pop = queue.popleft
                    while queue and queue[0][0] <= now:
                        total += pop()[1]
                    sink(total)
            if retire is not None:
                for idx in retire:
                    armed.discard(idx)
                    scan[idx][1].credit_armed = False
        moved = 0
        active = self._active_switches
        if active:
            switches = self.switches
            retire = None
            for sid in active:
                switch = switches[sid]
                moved += switch.traverse(now)
                if not switch._buffered:
                    if retire is None:
                        retire = [sid]
                    else:
                        retire.append(sid)
            if retire is not None:
                active.difference_update(retire)
        armed = self._armed_flit_links
        if armed:
            scan = self._flit_scan
            retire = None
            for idx in armed:
                queue, link, sink = scan[idx]
                if not queue:
                    if retire is None:
                        retire = [idx]
                    else:
                        retire.append(idx)
                elif queue[0][0] <= now:
                    pop = queue.popleft
                    while queue and queue[0][0] <= now:
                        sink(pop()[1], now)
            if retire is not None:
                for idx in retire:
                    armed.discard(idx)
                    scan[idx][1].flit_armed = False
        active_nis = self._active_nis
        if active_nis:
            nis = self.nis
            retire = None
            for node in active_nis:
                ni = nis[node]
                ni.inject(now)
                if not ni._flits:
                    if retire is None:
                        retire = [node]
                    else:
                        retire.append(node)
            if retire is not None:
                active_nis.difference_update(retire)
        if self.sample_buffers:
            for switch in self.switches:
                switch.sample_buffers()
        self.cycle = now + 1
        return moved

    def step_reference(self) -> int:
        """One cycle via the original scan-everything dataflow.

        Kept as the parity oracle for :meth:`step`: it visits every
        link, switch and NI each cycle regardless of activity, so it is
        size-proportional but trivially correct.  The wake-up hooks and
        the in-flight counter are maintained by the components
        themselves, so the event-driven bookkeeping stays consistent
        even when this path drives the fabric.
        """
        now = self.cycle
        for queue, link, sink in self._credit_scan:
            if queue and queue[0][0] <= now:
                sink(link.collect_credits(now))
        moved = 0
        active = self._active_switches
        for switch in self.switches:
            moved += switch.traverse(now)
            if not switch._buffered:
                active.discard(switch.switch_id)
        for queue, link, sink in self._flit_scan:
            if queue and queue[0][0] <= now:
                for flit in link.deliver(now):
                    sink(flit, now)
        active_nis = self._active_nis
        for ni in self.nis:
            if ni._flits:
                ni.inject(now)
            if not ni._flits:
                active_nis.discard(ni.node)
        if self.sample_buffers:
            for switch in self.switches:
                switch.sample_buffers()
        self.cycle = now + 1
        return moved

    def run(self, cycles: int) -> None:
        """Advance the fabric by ``cycles`` clock cycles."""
        for _ in range(cycles):
            self.step()

    # ------------------------------------------------------------------
    # Injection/ejection conveniences and drain detection
    # ------------------------------------------------------------------
    def offer(self, packet: Packet) -> None:
        """Queue a packet at the NI of its source node."""
        self.nis[packet.src].offer(packet)

    @property
    def in_flight_flits(self) -> int:
        """Flits anywhere between an NI queue and reassembly (O(1))."""
        return self._in_flight_flits

    def scan_in_flight_flits(self) -> int:
        """The in-flight count recomputed by scanning every component.

        Parity oracle for the incremental counter; equal to
        :attr:`in_flight_flits` unless the bookkeeping has a bug.
        """
        total = sum(ni.pending_flits for ni in self.nis)
        total += sum(len(buf) for sw in self.switches for buf in sw.inputs)
        total += sum(link.occupancy for link in self.links)
        return total

    @property
    def quiescent(self) -> bool:
        """True when no flit is queued, buffered or on a wire.

        Credits may still be returning upstream; they carry no
        observable state change until the next flit moves, so a
        quiescent fabric can fast-forward over idle cycles.
        """
        return self._in_flight_flits == 0

    @property
    def is_drained(self) -> bool:
        """True when no flit is queued, buffered, in flight or partial."""
        if self._in_flight_flits:
            return False
        return all(rx.partial_packets == 0 for rx in self.rx)

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Step until drained; return cycles spent.  Raises on timeout."""
        start = self.cycle
        while not self.is_drained:
            if self.cycle - start > max_cycles:
                raise RuntimeError(
                    f"network failed to drain within {max_cycles} cycles"
                    f" ({self.in_flight_flits} flits in flight —"
                    f" possible deadlock)"
                )
            self.step()
        return self.cycle - start

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def link_between(self, a: int, b: int) -> Link:
        """The (first) inter-switch link ``a -> b``."""
        try:
            return self.switch_links[(a, b)][0]
        except (KeyError, IndexError):
            raise KeyError(f"no link between switches {a} and {b}") from None

    def link_loads(self) -> Dict[Tuple[int, int], float]:
        """Utilisation of every inter-switch link over its stats window.

        The window runs from the link's last :meth:`reset_stats` (cycle
        0 if never reset) to the current cycle, so mid-run statistics
        resets yield the post-reset utilisation rather than diluting
        ``busy_cycles`` over the whole run.
        """
        loads: Dict[Tuple[int, int], float] = {}
        for pair, links in self.switch_links.items():
            for link in links:
                elapsed = max(1, self.cycle - link.stats_since)
                loads[pair] = max(
                    loads.get(pair, 0.0), link.utilization(elapsed)
                )
        return loads

    @property
    def total_blocked_flit_cycles(self) -> int:
        """Network-wide head-of-line blocking events (congestion input)."""
        return sum(sw.blocked_flit_cycles for sw in self.switches)

    def reset_stats(self) -> None:
        for sw in self.switches:
            sw.reset_stats()
        for link in self.links:
            link.reset_stats(now=self.cycle)
        for ni in self.nis:
            ni.reset_stats()
        for rx in self.rx:
            rx.reset_stats()
