"""Routing functions.

The emulated switches route per packet: when a HEAD flit reaches the
head of an input buffer, the switch consults its routing function to
pick an output port; BODY and TAIL flits follow the wormhole channel the
head opened.  Routing is table-based in the hardware platform (the
processor writes the tables through the configuration bus), so the
primary implementations here are :class:`TableRouting` and its
multi-path variant, plus builders that fill tables from a topology
(shortest path, equal-cost multi-path) and the explicit route cases of
the paper's experimental setup (:func:`paper_routing`).
"""

from __future__ import annotations

from collections import deque
from typing import (
    AbstractSet,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.noc.flit import Flit
from repro.noc.topology import (
    PAPER_FLOWS,
    Topology,
    TopologyError,
    paper_flow_pairs,
)


class RoutingError(RuntimeError):
    """Raised when no route exists for a (switch, destination) pair."""


def compile_dense_route_table(
    routing: "RoutingFunction", switch_id: int, n_nodes: int
) -> Optional[List[Optional[int]]]:
    """Compile one switch's routes into a dense ``dst -> port`` array.

    The per-hop routing decision of a table-based function is two dict
    lookups plus exception handling; the network compiles it once at
    platform build into a plain list the traverse indexes directly.
    Entries stay ``None`` — falling back to
    :meth:`RoutingFunction.output_port` per head flit — when the
    decision is not a single static port: multipath candidates (the
    per-packet hash must keep choosing) and missing destinations (the
    fallback raises the proper :class:`RoutingError`).  Routing
    functions that cannot enumerate their ports (no ``ports_for``)
    compile to ``None``: the switch then routes every head through the
    function, exactly as before compilation.
    """
    try:
        table: List[Optional[int]] = [None] * n_nodes
        for dst in range(n_nodes):
            ports = routing.ports_for(switch_id, dst)
            if len(ports) == 1:
                table[dst] = ports[0]
        return table
    except NotImplementedError:
        return None


def _mix(value: int) -> int:
    """A small integer hash (splitmix-style) for per-packet path choice."""
    value = (value ^ (value >> 16)) * 0x45D9F3B & 0xFFFFFFFF
    value = (value ^ (value >> 16)) * 0x45D9F3B & 0xFFFFFFFF
    return (value ^ (value >> 16)) & 0xFFFFFFFF


class RoutingFunction:
    """Base class: map (switch, head flit) to an output port index."""

    def output_port(self, switch: int, flit: Flit) -> int:
        raise NotImplementedError

    def ports_for(self, switch: int, dst: int) -> List[int]:
        """All output ports this function may pick for ``dst`` at ``switch``.

        Used by validation and by the FPGA cost model (routing-table
        width).  The base implementation reports a single port obtained
        from a probe flit, which subclasses override when they hold real
        tables.
        """
        raise NotImplementedError


class TableRouting(RoutingFunction):
    """Deterministic table-based routing.

    ``tables[switch][dst_node]`` is the output port index to take at
    ``switch`` for packets addressed to node ``dst_node``.
    """

    def __init__(self, tables: Mapping[int, Mapping[int, int]]) -> None:
        self.tables: Dict[int, Dict[int, int]] = {
            s: dict(t) for s, t in tables.items()
        }

    def output_port(self, switch: int, flit: Flit) -> int:
        try:
            return self.tables[switch][flit.dst]
        except KeyError:
            raise RoutingError(
                f"no route at switch {switch} for destination node"
                f" {flit.dst}"
            ) from None

    def ports_for(self, switch: int, dst: int) -> List[int]:
        try:
            return [self.tables[switch][dst]]
        except KeyError:
            return []

    def entries(self) -> int:
        """Total number of table entries (FPGA cost model input)."""
        return sum(len(t) for t in self.tables.values())


class MultiPathTableRouting(RoutingFunction):
    """Table routing with several candidate ports per destination.

    ``tables[switch][dst_node]`` is a non-empty list of output ports;
    the port for a given packet is chosen by hashing the packet id, so
    all flits of one packet take the same path (wormhole-safe) while
    successive packets of a flow spread over the candidates.  This
    models the paper's "two routing possibilities" when the candidate
    lists have length two.
    """

    def __init__(
        self,
        tables: Mapping[int, Mapping[int, Sequence[int]]],
        salt: int = 0,
    ) -> None:
        self.tables: Dict[int, Dict[int, List[int]]] = {}
        for s, t in tables.items():
            self.tables[s] = {}
            for dst, ports in t.items():
                if not ports:
                    raise RoutingError(
                        f"empty candidate port list at switch {s} for"
                        f" destination {dst}"
                    )
                self.tables[s][dst] = list(ports)
        self.salt = salt

    def output_port(self, switch: int, flit: Flit) -> int:
        try:
            ports = self.tables[switch][flit.dst]
        except KeyError:
            raise RoutingError(
                f"no route at switch {switch} for destination node"
                f" {flit.dst}"
            ) from None
        if len(ports) == 1:
            return ports[0]
        return ports[_mix(flit.packet.pid + self.salt) % len(ports)]

    def ports_for(self, switch: int, dst: int) -> List[int]:
        return list(self.tables.get(switch, {}).get(dst, []))

    def entries(self) -> int:
        return sum(
            len(ports)
            for t in self.tables.values()
            for ports in t.values()
        )


class XYRouting(RoutingFunction):
    """Dimension-ordered routing for 2D meshes (X first, then Y).

    Deadlock-free on meshes and used as the deterministic baseline in
    the routing ablation.  Requires the mesh dimensions because switch
    ids encode grid coordinates as ``id = y * width + x``.
    """

    def __init__(self, topology: Topology, width: int, height: int) -> None:
        if width * height != topology.n_switches:
            raise RoutingError(
                f"grid {width}x{height} does not match"
                f" {topology.n_switches} switches"
            )
        self.topology = topology
        self.width = width
        self.height = height

    def _next_switch(self, switch: int, dst_switch: int) -> int:
        x, y = switch % self.width, switch // self.width
        dx, dy = dst_switch % self.width, dst_switch // self.width
        if x != dx:
            return y * self.width + (x + 1 if dx > x else x - 1)
        return (y + 1 if dy > y else y - 1) * self.width + x

    def output_port(self, switch: int, flit: Flit) -> int:
        dst_switch = self.topology.switch_of_node(flit.dst)
        if dst_switch == switch:
            return self.topology.output_port_to_node(switch, flit.dst)
        nxt = self._next_switch(switch, dst_switch)
        try:
            return self.topology.output_port_to_switch(switch, nxt)
        except TopologyError:
            raise RoutingError(
                f"XY routing needs link {switch} -> {nxt}, which the"
                f" topology lacks"
            ) from None

    def ports_for(self, switch: int, dst: int) -> List[int]:
        dst_switch = self.topology.switch_of_node(dst)
        if dst_switch == switch:
            return [self.topology.output_port_to_node(switch, dst)]
        nxt = self._next_switch(switch, dst_switch)
        try:
            return [self.topology.output_port_to_switch(switch, nxt)]
        except TopologyError:
            return []


# ----------------------------------------------------------------------
# Table builders
# ----------------------------------------------------------------------
def _reverse_bfs_distances(
    topo: Topology,
    dst_switch: int,
    avoid_links: Optional[AbstractSet[Tuple[int, int]]] = None,
) -> List[int]:
    """Hop distance from every switch to ``dst_switch`` (-1 = unreachable).

    ``avoid_links`` excludes directed switch pairs — the fault-repair
    path of the platform: when a board link fails, the initialisation
    step rebuilds the tables around it without re-synthesis.
    """
    # Build reverse adjacency once per call; topologies are small.
    preds: List[List[int]] = [[] for _ in range(topo.n_switches)]
    for a, b, _delay in topo.switch_edges():
        if avoid_links and (a, b) in avoid_links:
            continue
        preds[b].append(a)
    dist = [-1] * topo.n_switches
    dist[dst_switch] = 0
    frontier = deque([dst_switch])
    while frontier:
        s = frontier.popleft()
        for p in preds[s]:
            if dist[p] < 0:
                dist[p] = dist[s] + 1
                frontier.append(p)
    return dist


def build_shortest_path_tables(
    topo: Topology,
    destinations: Optional[Sequence[int]] = None,
    avoid_links: Optional[AbstractSet[Tuple[int, int]]] = None,
) -> TableRouting:
    """Deterministic shortest-path tables for the given destination nodes.

    Ties are broken toward the lowest-indexed output port, which makes
    the tables reproducible across runs (the platform initialisation
    step writes them verbatim into the switches).  ``avoid_links``
    routes around failed or reserved directed links ``(a, b)``.
    """
    if destinations is None:
        destinations = range(topo.n_nodes)
    avoid = frozenset(avoid_links or ())
    tables: Dict[int, Dict[int, int]] = {
        s: {} for s in range(topo.n_switches)
    }
    for dst in destinations:
        dst_switch = topo.switch_of_node(dst)
        dist = _reverse_bfs_distances(topo, dst_switch, avoid)
        for s in range(topo.n_switches):
            if s == dst_switch:
                tables[s][dst] = topo.output_port_to_node(s, dst)
                continue
            if dist[s] < 0:
                continue  # unreachable: leave no entry, routing will raise
            best_port = None
            for port, ep in enumerate(topo.switch_outputs[s]):
                if ep.kind != "switch":
                    continue
                if (s, ep.target) in avoid:
                    continue
                if dist[ep.target] == dist[s] - 1:
                    best_port = port
                    break
            if best_port is None:
                raise RoutingError(
                    f"inconsistent BFS distances at switch {s} toward"
                    f" node {dst}"
                )
            tables[s][dst] = best_port
    return TableRouting(tables)


def build_multipath_tables(
    topo: Topology,
    destinations: Optional[Sequence[int]] = None,
    max_paths: int = 2,
    salt: int = 0,
    avoid_links: Optional[AbstractSet[Tuple[int, int]]] = None,
) -> MultiPathTableRouting:
    """Equal-cost multi-path tables: all minimal next hops, truncated.

    With ``max_paths=2`` this realises the paper's "two routing
    possibilities" on any topology that offers at least two minimal
    next hops.  ``avoid_links`` routes around failed directed links.
    """
    if max_paths < 1:
        raise RoutingError("max_paths must be >= 1")
    if destinations is None:
        destinations = range(topo.n_nodes)
    avoid = frozenset(avoid_links or ())
    tables: Dict[int, Dict[int, List[int]]] = {
        s: {} for s in range(topo.n_switches)
    }
    for dst in destinations:
        dst_switch = topo.switch_of_node(dst)
        dist = _reverse_bfs_distances(topo, dst_switch, avoid)
        for s in range(topo.n_switches):
            if s == dst_switch:
                tables[s][dst] = [topo.output_port_to_node(s, dst)]
                continue
            if dist[s] < 0:
                continue
            ports = [
                port
                for port, ep in enumerate(topo.switch_outputs[s])
                if ep.kind == "switch"
                and (s, ep.target) not in avoid
                and dist[ep.target] == dist[s] - 1
            ]
            if not ports:
                raise RoutingError(
                    f"inconsistent BFS distances at switch {s} toward"
                    f" node {dst}"
                )
            tables[s][dst] = ports[:max_paths]
    return MultiPathTableRouting(tables, salt=salt)


def build_updown_tables(
    topo: Topology,
    destinations: Optional[Sequence[int]] = None,
    root: int = 0,
    avoid_links: Optional[AbstractSet[Tuple[int, int]]] = None,
) -> TableRouting:
    """Deadlock-free up*/down* tables for any connected topology.

    BFS shortest-path tables can wormhole-deadlock on fabrics whose
    links close a cycle — a bidirectional ring's clockwise channels
    form a full channel-dependency cycle as soon as every link carries
    some flow, and the platform has no virtual channels to break it
    (the spidergon's native routing assumes them).  Up*/down* (Autonet)
    needs neither: switches are ranked by ``(BFS level from root, id)``,
    every link is *up* (toward lower rank) or *down*, and a legal route
    is up-hops followed by down-hops.  Down-after-up can never close a
    channel cycle, because any cycle would need an up edge after a down
    edge.

    The tables realise the discipline statelessly: at each switch a
    packet descends along a shortest down-only path when its
    destination is down-reachable, and otherwise climbs to the cheapest
    up neighbour.  Once a packet starts descending every later switch
    is still down-reachable (a suffix of a down-only path), so the
    realised route never turns back up.  Routes can be longer than
    graph-shortest — that is the price of deadlock freedom on ring-like
    fabrics; on meshes and trees the root-anchored ranking keeps most
    routes minimal.

    ``avoid_links`` routes around failed directed links.  Ranking,
    descent, and climbing all skip avoided edges, so the discipline
    (and hence deadlock freedom) holds on the surviving fabric.  When
    avoidance disconnects the graph, switches outside the root's
    component — and destinations hosted there — simply get no table
    entries (the router raises on use), mirroring the degraded
    behaviour of :func:`build_shortest_path_tables`.
    """
    if not 0 <= root < topo.n_switches:
        raise RoutingError(
            f"up*/down* root {root} out of range"
            f" [0, {topo.n_switches})"
        )
    if destinations is None:
        destinations = range(topo.n_nodes)
    avoid = frozenset(avoid_links or ())
    n = topo.n_switches
    # Rank switches by (BFS level from the root, id); "up" edges point
    # toward strictly lower rank.
    level = {root: 0}
    frontier = deque([root])
    while frontier:
        s = frontier.popleft()
        for ep in topo.switch_outputs[s]:
            if (
                ep.kind == "switch"
                and ep.target not in level
                and (s, ep.target) not in avoid
            ):
                level[ep.target] = level[s] + 1
                frontier.append(ep.target)
    if len(level) < n and not avoid:
        raise RoutingError(
            f"topology is not connected from switch {root}:"
            f" {n - len(level)} switches unreachable"
        )
    rank = {s: (level[s], s) for s in level}
    by_rank = sorted(level, key=lambda s: rank[s])

    tables: Dict[int, Dict[int, int]] = {s: {} for s in range(n)}
    for dst in destinations:
        dst_switch = topo.switch_of_node(dst)
        if dst_switch not in rank:
            continue  # severed from the root's component
        # Down-only hop distance to dst_switch (reverse BFS over down
        # edges), plus the port of a deterministic shortest down step.
        down_dist = [-1] * n
        down_dist[dst_switch] = 0
        frontier = deque([dst_switch])
        while frontier:
            s = frontier.popleft()
            for ep in topo.switch_inputs[s]:
                if (
                    ep.kind == "switch"
                    and ep.source in rank
                    and rank[ep.source] < rank[s]
                    and down_dist[ep.source] < 0
                    and (ep.source, s) not in avoid
                ):
                    down_dist[ep.source] = down_dist[s] + 1
                    frontier.append(ep.source)
        # Total route cost: descend when possible, else climb one up
        # hop.  Up edges strictly decrease rank, so sweeping switches
        # in rank order resolves the climb recurrence in one pass.
        cost = [-1] * n
        for s in by_rank:
            if down_dist[s] >= 0:
                cost[s] = down_dist[s]
                continue
            best = -1
            for ep in topo.switch_outputs[s]:
                if (
                    ep.kind != "switch"
                    or ep.target not in rank
                    or rank[ep.target] >= rank[s]
                    or (s, ep.target) in avoid
                ):
                    continue
                c = cost[ep.target]
                if c >= 0 and (best < 0 or c + 1 < best):
                    best = c + 1
            if best < 0:
                if avoid:
                    continue  # unreachable on the faulted fabric
                raise RoutingError(
                    f"switch {s} has no up link toward the root and"
                    f" cannot reach node {dst} downward; up*/down*"
                    f" needs bidirectional links"
                )
            cost[s] = best
        for s in range(n):
            if s == dst_switch:
                tables[s][dst] = topo.output_port_to_node(s, dst)
                continue
            if s not in rank or cost[s] < 0:
                continue  # severed or unreachable under avoidance
            best_port = None
            best_cost = None
            for port, ep in enumerate(topo.switch_outputs[s]):
                if ep.kind != "switch":
                    continue
                t = ep.target
                if t not in rank or (s, t) in avoid:
                    continue
                if down_dist[s] >= 0:
                    # Committed to descending: shortest down step only.
                    ok = (
                        rank[t] > rank[s]
                        and down_dist[t] == down_dist[s] - 1
                    )
                    c = down_dist[s] - 1 if ok else None
                else:
                    ok = rank[t] < rank[s] and cost[t] >= 0
                    c = cost[t] if ok else None
                if ok and (best_cost is None or c < best_cost):
                    best_port = port
                    best_cost = c
            if best_port is None:
                if avoid:
                    continue
                raise RoutingError(
                    f"inconsistent up*/down* state at switch {s}"
                    f" toward node {dst}"
                )
            tables[s][dst] = best_port
    return TableRouting(tables)


def build_tables_from_paths(
    topo: Topology,
    paths: Mapping[Tuple[int, int], Sequence[int]],
) -> TableRouting:
    """Deterministic tables from explicit switch paths per flow.

    ``paths[(src_node, dst_node)]`` is the switch sequence the flow
    follows, starting at the source node's switch and ending at the
    destination node's switch.  Conflicting entries (two flows to the
    same destination demanding different ports at one switch) raise.
    """
    tables: Dict[int, Dict[int, int]] = {}
    for (src, dst), sw_path in paths.items():
        if not sw_path:
            raise RoutingError(f"empty path for flow {src}->{dst}")
        if sw_path[0] != topo.switch_of_node(src):
            raise RoutingError(
                f"path for flow {src}->{dst} starts at switch"
                f" {sw_path[0]}, but node {src} sits on switch"
                f" {topo.switch_of_node(src)}"
            )
        if sw_path[-1] != topo.switch_of_node(dst):
            raise RoutingError(
                f"path for flow {src}->{dst} ends at switch"
                f" {sw_path[-1]}, but node {dst} sits on switch"
                f" {topo.switch_of_node(dst)}"
            )
        hops = list(zip(sw_path, sw_path[1:]))
        for a, b in hops:
            port = topo.output_port_to_switch(a, b)
            existing = tables.setdefault(a, {}).get(dst)
            if existing is not None and existing != port:
                raise RoutingError(
                    f"conflicting routes at switch {a} for destination"
                    f" {dst}: ports {existing} and {port}"
                )
            tables[a][dst] = port
        last = sw_path[-1]
        tables.setdefault(last, {})[dst] = topo.output_port_to_node(
            last, dst
        )
    return TableRouting(tables)


# ----------------------------------------------------------------------
# The paper's route cases (Slide 19)
# ----------------------------------------------------------------------
#: Switch paths of the *overlapping* case: all four diagonal flows
#: funnel through the middle column, so links 1->4 and 4->1 each carry
#: two 45% flows = 90% load.
_PAPER_PATHS_OVERLAP: Dict[Tuple[int, int], Tuple[int, ...]] = {
    (0, 7): (0, 1, 4, 5),
    (1, 6): (2, 1, 4, 3),
    (2, 5): (3, 4, 1, 2),
    (3, 4): (5, 4, 1, 0),
}

#: Switch paths of the *disjoint* case (dimension-ordered, X first):
#: no link carries more than one flow, so the maximum link load is 45%.
_PAPER_PATHS_DISJOINT: Dict[Tuple[int, int], Tuple[int, ...]] = {
    (0, 7): (0, 1, 2, 5),
    (1, 6): (2, 1, 0, 3),
    (2, 5): (3, 4, 5, 2),
    (3, 4): (5, 4, 3, 0),
}


def paper_routing(topo: Topology, case: str = "overlap") -> RoutingFunction:
    """Routing tables for the paper's experimental setup.

    ``case`` selects among the two routing possibilities of each flow:

    ``"overlap"``
        All flows share the middle-column links (the 90%-load case the
        congestion and latency figures are measured in).
    ``"disjoint"``
        Dimension-ordered routes; no shared links (the uncongested
        reference case).
    ``"split"``
        A multi-path table holding *both* possibilities; each packet
        picks one by id hash, halving the load on the shared links.
    """
    if case == "overlap":
        return build_tables_from_paths(topo, _PAPER_PATHS_OVERLAP)
    if case == "disjoint":
        return build_tables_from_paths(topo, _PAPER_PATHS_DISJOINT)
    if case == "split":
        overlap = build_tables_from_paths(topo, _PAPER_PATHS_OVERLAP)
        disjoint = build_tables_from_paths(topo, _PAPER_PATHS_DISJOINT)
        merged: Dict[int, Dict[int, List[int]]] = {}
        for table in (overlap, disjoint):
            for s, entries in table.tables.items():
                for dst, port in entries.items():
                    ports = merged.setdefault(s, {}).setdefault(dst, [])
                    if port not in ports:
                        ports.append(port)
        return MultiPathTableRouting(merged)
    raise RoutingError(
        f"unknown paper routing case {case!r}; expected 'overlap',"
        f" 'disjoint' or 'split'"
    )
