"""Switch topologies.

The emulation platform instantiates a *network of switches* whose
topology is a platform-compilation parameter (Slide 6: "switch
topology").  A :class:`Topology` is a directed multigraph of switches
plus the attachment points of network interfaces (traffic generators and
receptors are nodes hanging off switches).

Factories are provided for the standard NoC fabrics (mesh, torus, ring,
star, fully connected, spidergon) and for the paper's 6-switch
experimental platform (:func:`paper_topology`).  The paper's figure is
not reproduced in the available text, so the 6-switch arrangement is a
documented reconstruction: a 2x3 mesh whose four corner switches host
one traffic generator and one traffic receptor each, which yields
exactly the properties Slide 19 describes — each flow has two routing
possibilities, and with the "overlapping" route case two inter-switch
links (the middle-column links) carry two 45% flows each, i.e. 90% load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


class TopologyError(ValueError):
    """Raised for inconsistent topology construction or queries."""


@dataclass(frozen=True)
class OutputEndpoint:
    """What a switch output port drives: another switch or a local node."""

    kind: str  # "switch" | "node"
    target: int  # switch id or node id
    delay: int = 1


@dataclass(frozen=True)
class InputSource:
    """What feeds a switch input port: another switch or a local node."""

    kind: str  # "switch" | "node"
    source: int  # switch id or node id
    delay: int = 1


class Topology:
    """A directed graph of switches with node (NI) attachment points.

    Ports are allocated implicitly in registration order: every
    ``add_edge`` consumes one output port on the source switch and one
    input port on the destination switch; every ``attach`` consumes one
    input port (node injects) and one output port (node ejects) on its
    switch.  This mirrors the platform-compilation step that fixes the
    "number of inputs / number of outputs" switch parameters.
    """

    def __init__(self, n_switches: int, name: str = "") -> None:
        if n_switches < 1:
            raise TopologyError(
                f"topology needs >= 1 switch, got {n_switches}"
            )
        self.n_switches = n_switches
        self.name = name
        self.switch_outputs: List[List[OutputEndpoint]] = [
            [] for _ in range(n_switches)
        ]
        self.switch_inputs: List[List[InputSource]] = [
            [] for _ in range(n_switches)
        ]
        self.node_switch: List[int] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _check_switch(self, s: int) -> None:
        if not 0 <= s < self.n_switches:
            raise TopologyError(
                f"switch {s} out of range [0, {self.n_switches})"
            )

    def add_edge(
        self, a: int, b: int, delay: int = 1, bidirectional: bool = False
    ) -> None:
        """Add a directed link ``a -> b`` (and ``b -> a`` if bidirectional)."""
        self._check_switch(a)
        self._check_switch(b)
        if a == b:
            raise TopologyError(f"self-loop on switch {a} is not allowed")
        self.switch_outputs[a].append(OutputEndpoint("switch", b, delay))
        self.switch_inputs[b].append(InputSource("switch", a, delay))
        if bidirectional:
            self.switch_outputs[b].append(OutputEndpoint("switch", a, delay))
            self.switch_inputs[a].append(InputSource("switch", b, delay))

    def attach(self, switch: int, delay: int = 1) -> int:
        """Attach a new node (NI endpoint) to ``switch``; return node id."""
        self._check_switch(switch)
        node = len(self.node_switch)
        self.node_switch.append(switch)
        self.switch_inputs[switch].append(InputSource("node", node, delay))
        self.switch_outputs[switch].append(OutputEndpoint("node", node, delay))
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.node_switch)

    def n_inputs(self, switch: int) -> int:
        self._check_switch(switch)
        return len(self.switch_inputs[switch])

    def n_outputs(self, switch: int) -> int:
        self._check_switch(switch)
        return len(self.switch_outputs[switch])

    def switch_of_node(self, node: int) -> int:
        if not 0 <= node < self.n_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.n_nodes})")
        return self.node_switch[node]

    def output_port_to_switch(self, a: int, b: int) -> int:
        """Output port index on ``a`` of the (first) link ``a -> b``."""
        self._check_switch(a)
        for port, ep in enumerate(self.switch_outputs[a]):
            if ep.kind == "switch" and ep.target == b:
                return port
        raise TopologyError(f"no link {a} -> {b}")

    def output_port_to_node(self, switch: int, node: int) -> int:
        """Output port index on ``switch`` driving local node ``node``."""
        self._check_switch(switch)
        for port, ep in enumerate(self.switch_outputs[switch]):
            if ep.kind == "node" and ep.target == node:
                return port
        raise TopologyError(f"node {node} is not attached to switch {switch}")

    def neighbors(self, switch: int) -> List[int]:
        """Downstream switches reachable in one hop (with duplicates)."""
        self._check_switch(switch)
        return [
            ep.target
            for ep in self.switch_outputs[switch]
            if ep.kind == "switch"
        ]

    def switch_edges(self) -> List[Tuple[int, int, int]]:
        """All directed switch-to-switch links as ``(a, b, delay)``."""
        edges = []
        for a in range(self.n_switches):
            for ep in self.switch_outputs[a]:
                if ep.kind == "switch":
                    edges.append((a, ep.target, ep.delay))
        return edges

    def nodes_on_switch(self, switch: int) -> List[int]:
        self._check_switch(switch)
        return [
            node
            for node, sw in enumerate(self.node_switch)
            if sw == switch
        ]

    def validate(self) -> None:
        """Check every switch has at least one input and one output."""
        for s in range(self.n_switches):
            if not self.switch_inputs[s]:
                raise TopologyError(f"switch {s} has no inputs")
            if not self.switch_outputs[s]:
                raise TopologyError(f"switch {s} has no outputs")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Topology({self.name!r}, switches={self.n_switches},"
            f" nodes={self.n_nodes})"
        )


# ----------------------------------------------------------------------
# Standard fabric factories
# ----------------------------------------------------------------------
def mesh(
    width: int, height: int, nodes_per_switch: int = 1, link_delay: int = 1
) -> Topology:
    """A ``width x height`` 2D mesh; switch ``(x, y)`` has id ``y*width+x``."""
    if width < 1 or height < 1:
        raise TopologyError("mesh dimensions must be >= 1")
    topo = Topology(width * height, name=f"mesh{width}x{height}")
    for y in range(height):
        for x in range(width):
            s = y * width + x
            if x + 1 < width:
                topo.add_edge(s, s + 1, delay=link_delay, bidirectional=True)
            if y + 1 < height:
                topo.add_edge(
                    s, s + width, delay=link_delay, bidirectional=True
                )
    for s in range(width * height):
        for _ in range(nodes_per_switch):
            topo.attach(s)
    return topo


def torus(
    width: int, height: int, nodes_per_switch: int = 1, link_delay: int = 1
) -> Topology:
    """A 2D torus (mesh with wrap-around links)."""
    if width < 3 or height < 3:
        raise TopologyError(
            "torus dimensions must be >= 3 to avoid duplicate links"
        )
    topo = Topology(width * height, name=f"torus{width}x{height}")
    for y in range(height):
        for x in range(width):
            s = y * width + x
            right = y * width + (x + 1) % width
            down = ((y + 1) % height) * width + x
            topo.add_edge(s, right, delay=link_delay, bidirectional=True)
            topo.add_edge(s, down, delay=link_delay, bidirectional=True)
    for s in range(width * height):
        for _ in range(nodes_per_switch):
            topo.attach(s)
    return topo


def ring(n: int, nodes_per_switch: int = 1, link_delay: int = 1) -> Topology:
    """A bidirectional ring of ``n`` switches."""
    if n < 3:
        raise TopologyError("ring needs >= 3 switches")
    topo = Topology(n, name=f"ring{n}")
    for s in range(n):
        topo.add_edge(s, (s + 1) % n, delay=link_delay, bidirectional=True)
    for s in range(n):
        for _ in range(nodes_per_switch):
            topo.attach(s)
    return topo


def star(n_leaves: int, link_delay: int = 1) -> Topology:
    """One hub switch (id 0) with ``n_leaves`` leaf switches around it."""
    if n_leaves < 1:
        raise TopologyError("star needs >= 1 leaf")
    topo = Topology(n_leaves + 1, name=f"star{n_leaves}")
    for leaf in range(1, n_leaves + 1):
        topo.add_edge(0, leaf, delay=link_delay, bidirectional=True)
    for leaf in range(1, n_leaves + 1):
        topo.attach(leaf)
    return topo


def fully_connected(
    n: int, nodes_per_switch: int = 1, link_delay: int = 1
) -> Topology:
    """All-to-all switch graph (every ordered pair linked)."""
    if n < 2:
        raise TopologyError("fully connected graph needs >= 2 switches")
    topo = Topology(n, name=f"full{n}")
    for a in range(n):
        for b in range(n):
            if a != b:
                topo.add_edge(a, b, delay=link_delay)
    for s in range(n):
        for _ in range(nodes_per_switch):
            topo.attach(s)
    return topo


def tree(arity: int, depth: int, link_delay: int = 1) -> Topology:
    """A complete switch tree with nodes on the leaves.

    ``depth`` counts switch levels (>= 1); the root is switch 0,
    children of switch ``s`` are ``s * arity + 1 .. s * arity + arity``
    in level order.  Leaf switches carry one node each.  Trees model
    the hierarchical interconnects SoC bridges produce and give the
    routing builders a topology with a single path per pair (useful to
    contrast against the multi-path mesh cases).
    """
    if arity < 2:
        raise TopologyError("tree arity must be >= 2")
    if depth < 1:
        raise TopologyError("tree depth must be >= 1")
    n_switches = (arity**depth - 1) // (arity - 1)
    topo = Topology(n_switches, name=f"tree{arity}x{depth}")
    first_leaf = (arity ** (depth - 1) - 1) // (arity - 1)
    for s in range(first_leaf):
        for child in range(s * arity + 1, s * arity + arity + 1):
            topo.add_edge(s, child, delay=link_delay, bidirectional=True)
    for s in range(first_leaf, n_switches):
        topo.attach(s)
    return topo


def spidergon(n: int, link_delay: int = 1) -> Topology:
    """Spidergon: even-sized ring plus cross links to the antipode."""
    if n < 4 or n % 2:
        raise TopologyError("spidergon needs an even switch count >= 4")
    topo = Topology(n, name=f"spidergon{n}")
    for s in range(n):
        topo.add_edge(s, (s + 1) % n, delay=link_delay, bidirectional=True)
    half = n // 2
    for s in range(half):
        topo.add_edge(s, s + half, delay=link_delay, bidirectional=True)
    for s in range(n):
        topo.attach(s)
    return topo


# ----------------------------------------------------------------------
# The paper's experimental platform (Slide 19)
# ----------------------------------------------------------------------
#: Switch grid of the reconstructed paper platform::
#:
#:     0 -- 1 -- 2        corner switches 0, 2, 3, 5 each host one
#:     |    |    |        traffic generator and one traffic receptor
#:     3 -- 4 -- 5
PAPER_GRID = (3, 2)

#: The four flows of the experimental setup: each traffic generator
#: sends to the receptor on the diagonally opposite corner (3 hops),
#: given as (tg_index, tr_index) pairs.
PAPER_FLOWS: Tuple[Tuple[int, int], ...] = ((0, 3), (1, 2), (2, 1), (3, 0))

#: Injection load per generator as a fraction of link bandwidth.
PAPER_TG_LOAD = 0.45

#: Target load on the two shared middle-column links in the
#: "overlapping routes" case: two 45% flows each.
PAPER_HOT_LINK_LOAD = 0.90


def paper_topology(
    buffer_hint: Optional[int] = None, link_delay: int = 1
) -> Topology:
    """The 6-switch, 4-TG, 4-TR platform of the paper's evaluation.

    Returns a 2x3 mesh with eight attached nodes.  Nodes 0-3 are the
    traffic-generator endpoints on corner switches (0, 2, 3, 5 in grid
    order) and nodes 4-7 are the traffic-receptor endpoints on the same
    corners; :data:`PAPER_FLOWS` gives the generator-to-receptor pairing
    as (tg_index, tr_index) offsets into those two groups.  Every flow
    crosses the mesh diagonally (3 hops); the platform routing tables
    expose two routing possibilities per flow (see
    ``repro.noc.routing.paper_routing``): an *overlapping* case where
    all four flows funnel through the middle-column links 1<->4, loading
    those two links to 2 x 45% = 90% exactly as Slide 19 states, and a
    *disjoint* dimension-ordered case where no link carries more than
    one flow.

    ``buffer_hint`` is accepted for signature compatibility with the
    platform builder and ignored here (buffer depth is a switch
    parameter, not a topology property).
    """
    del buffer_hint  # topology does not own buffer sizing
    width, height = PAPER_GRID
    topo = Topology(width * height, name="paper6")
    for y in range(height):
        for x in range(width):
            s = y * width + x
            if x + 1 < width:
                topo.add_edge(s, s + 1, delay=link_delay, bidirectional=True)
            if y + 1 < height:
                topo.add_edge(
                    s, s + width, delay=link_delay, bidirectional=True
                )
    corners = [0, 2, 3, 5]
    for corner in corners:  # nodes 0..3: TG endpoints
        topo.attach(corner)
    for corner in corners:  # nodes 4..7: TR endpoints
        topo.attach(corner)
    return topo


def paper_flow_pairs() -> List[Tuple[int, int]]:
    """(source node, destination node) pairs of the four paper flows."""
    return [(tg, 4 + tr) for tg, tr in PAPER_FLOWS]


def paper_hot_links() -> List[Tuple[int, int]]:
    """The two middle-column links that reach 90% load (Slide 19)."""
    return [(1, 4), (4, 1)]
