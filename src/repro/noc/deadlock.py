"""Routing deadlock analysis.

Wormhole switching deadlocks when the *channel dependency graph* (CDG)
of a routing function contains a cycle (Dally & Seitz): a packet
holding channel A while waiting for channel B creates the dependency
A -> B, and a cyclic chain of such dependencies can stall forever.

The emulation platform loads routing tables at initialisation time
(software!), so a bad table can deadlock the emulated NoC without any
hardware bug.  This module builds the CDG of any
:class:`~repro.noc.routing.RoutingFunction` over a topology and checks
it for cycles, so the platform-initialisation step can refuse unsafe
tables before a multi-hour emulation hangs.

A *channel* here is a directed inter-switch link ``(a, b)``; injection
and ejection channels cannot participate in cycles (sources hold
nothing upstream, sinks always drain) and are excluded.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.noc.routing import RoutingFunction
from repro.noc.topology import Topology

Channel = Tuple[int, int]  # directed switch pair (a, b)


class DeadlockError(RuntimeError):
    """Raised by :func:`assert_deadlock_free` when a cycle exists."""


def channel_dependency_graph(
    topology: Topology,
    routing: RoutingFunction,
    destinations: Optional[Sequence[int]] = None,
) -> Dict[Channel, Set[Channel]]:
    """All channel dependencies the routing function can create.

    For every destination and every switch, each input channel that a
    packet toward that destination can occupy depends on every output
    channel the routing function may pick next.  Multi-path functions
    contribute all their candidate ports.
    """
    if destinations is None:
        destinations = range(topology.n_nodes)
    graph: Dict[Channel, Set[Channel]] = {}
    for dst in destinations:
        # Walk backwards: for every switch, the outgoing channels a
        # packet to `dst` may use.
        next_channels: Dict[int, List[Channel]] = {}
        for s in range(topology.n_switches):
            channels: List[Channel] = []
            for port in routing.ports_for(s, dst):
                ep = topology.switch_outputs[s][port]
                if ep.kind == "switch":
                    channels.append((s, ep.target))
                # Ejection ports terminate the chain: no dependency.
            next_channels[s] = channels
        for s in range(topology.n_switches):
            for incoming in next_channels[s]:
                __, b = incoming
                for outgoing in next_channels.get(b, ()):
                    graph.setdefault(incoming, set()).add(outgoing)
    return graph


def find_dependency_cycle(
    graph: Dict[Channel, Set[Channel]]
) -> Optional[List[Channel]]:
    """One cycle of the dependency graph, or ``None`` if acyclic.

    Iterative DFS with colouring; returns the cycle as a channel list
    ``[c0, c1, ..., c0]`` for diagnostics.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Channel, int] = {c: WHITE for c in graph}
    parent: Dict[Channel, Optional[Channel]] = {}

    for root in graph:
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[Channel, Iterable[Channel]]] = [
            (root, iter(graph.get(root, ())))
        ]
        colour[root] = GREY
        parent[root] = None
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child not in colour:
                    colour[child] = WHITE
                if colour[child] == WHITE:
                    colour[child] = GREY
                    parent[child] = node
                    stack.append((child, iter(graph.get(child, ()))))
                    advanced = True
                    break
                if colour[child] == GREY:
                    # Found a back edge: unwind the cycle.
                    if child == node:  # self-dependency
                        return [node, node]
                    cycle = [child, node]
                    walk = parent[node]
                    while walk is not None and walk != child:
                        cycle.append(walk)
                        walk = parent[walk]
                    cycle.append(child)
                    cycle.reverse()
                    return cycle
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def is_deadlock_free(
    topology: Topology,
    routing: RoutingFunction,
    destinations: Optional[Sequence[int]] = None,
) -> bool:
    """True when the routing function's CDG is acyclic."""
    graph = channel_dependency_graph(topology, routing, destinations)
    return find_dependency_cycle(graph) is None


def assert_deadlock_free(
    topology: Topology,
    routing: RoutingFunction,
    destinations: Optional[Sequence[int]] = None,
) -> None:
    """Raise :class:`DeadlockError` naming a cycle if one exists."""
    graph = channel_dependency_graph(topology, routing, destinations)
    cycle = find_dependency_cycle(graph)
    if cycle is not None:
        pretty = " -> ".join(f"{a}->{b}" for a, b in cycle)
        raise DeadlockError(
            f"routing can deadlock: channel dependency cycle"
            f" [{pretty}]"
        )
