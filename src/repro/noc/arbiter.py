"""Output-port arbitration policies.

When several input ports of a switch request the same output port in the
same cycle, an arbiter picks the winner.  The hardware platform uses
round-robin arbitration; fixed-priority and matrix arbiters are provided
for the ablation study on arbitration fairness under the paper's
90%-loaded links (DESIGN.md §5).
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class Arbiter:
    """Base class: pick one requester among ``n_requesters`` candidates."""

    def __init__(self, n_requesters: int) -> None:
        if n_requesters < 1:
            raise ValueError("arbiter needs at least one requester")
        self.n_requesters = n_requesters  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        self.grants = 0
        self.grant_counts = [0] * n_requesters

    def grant(self, requests: Sequence[int]) -> Optional[int]:
        """Return the granted requester index, or ``None`` if no requests.

        ``requests`` is the list of requesting input-port indices (each
        in ``range(n_requesters)``); duplicates are not allowed.
        """
        if not requests:
            return None
        winner = self._select(requests)
        self.grants += 1
        self.grant_counts[winner] += 1
        return winner

    def grant_single(self, winner: int) -> int:
        """Uncontended grant: identical statistics and policy state to
        ``grant([winner])`` without the selection scan (the switch's
        grant loop calls this on the common single-requester case)."""
        self.grants += 1
        self.grant_counts[winner] += 1
        self._won(winner)
        return winner

    def _select(self, requests: Sequence[int]) -> int:
        raise NotImplementedError

    def _won(self, winner: int) -> None:
        """Advance policy state after ``winner`` took the grant."""

    def reset(self) -> None:
        self.grants = 0
        self.grant_counts = [0] * self.n_requesters


class FixedPriorityArbiter(Arbiter):
    """Always grants the lowest-indexed requester.

    Simple and cheap in hardware but unfair: under sustained contention
    the highest-index input can starve, which the ablation bench makes
    visible on the 90%-loaded links.
    """

    def _select(self, requests: Sequence[int]) -> int:
        return min(requests)


class RoundRobinArbiter(Arbiter):
    """Grants requesters in rotating order, starting after the last winner.

    This is the policy of the emulated switch: the pointer advances to
    one past the winner so that repeated contention shares the output
    port equally among the contenders.
    """

    def __init__(self, n_requesters: int) -> None:
        super().__init__(n_requesters)
        self._pointer = 0

    def _won(self, winner: int) -> None:
        # The pointer advances past the winner, exactly as the
        # rotating search would set it.
        self._pointer = (winner + 1) % self.n_requesters

    def grant_single(self, winner: int) -> int:
        # Base implementation with ``_won`` folded in: the platform
        # default arbiter takes this on every uncontended grant.
        self.grants += 1
        self.grant_counts[winner] += 1
        self._pointer = (winner + 1) % self.n_requesters
        return winner

    def _select(self, requests: Sequence[int]) -> int:
        if len(requests) == 1:
            # Uncontended grant: same pointer advance as a search win.
            candidate = requests[0]
            self._pointer = (candidate + 1) % self.n_requesters
            return candidate
        request_set = set(requests)
        for offset in range(self.n_requesters):
            candidate = (self._pointer + offset) % self.n_requesters
            if candidate in request_set:
                self._pointer = (candidate + 1) % self.n_requesters
                return candidate
        raise AssertionError("unreachable: requests was non-empty")

    def reset(self) -> None:
        super().reset()
        self._pointer = 0


class MatrixArbiter(Arbiter):
    """Least-recently-served arbitration via a priority matrix.

    Keeps a matrix ``w[i][j]`` meaning "i beats j"; the winner's row is
    cleared and its column set, so the most recent winner becomes the
    lowest priority.  This is the classical hardware matrix arbiter and
    gives strong fairness (LRU order) at a quadratic register cost, which
    the FPGA cost model charges accordingly.
    """

    def __init__(self, n_requesters: int) -> None:
        super().__init__(n_requesters)
        n = n_requesters
        # Upper triangle set: initial priority order 0 > 1 > ... > n-1.
        self._beats: List[List[bool]] = [
            [j > i for j in range(n)] for i in range(n)
        ]

    def _won(self, winner: int) -> None:
        # Even an uncontended winner becomes the least-recently-served.
        self._update(winner)

    def _select(self, requests: Sequence[int]) -> int:
        request_set = set(requests)
        for i in request_set:
            if all(
                self._beats[i][j] for j in request_set if j != i
            ):
                self._update(i)
                return i
        # The matrix invariant (total order) guarantees a winner exists.
        raise AssertionError("matrix arbiter found no winner")

    def _update(self, winner: int) -> None:
        for j in range(self.n_requesters):
            if j != winner:
                self._beats[winner][j] = False
                self._beats[j][winner] = True

    def reset(self) -> None:
        super().reset()
        n = self.n_requesters
        self._beats = [[j > i for j in range(n)] for i in range(n)]


_ARBITERS = {
    "round_robin": RoundRobinArbiter,
    "fixed_priority": FixedPriorityArbiter,
    "matrix": MatrixArbiter,
}


def make_arbiter(policy: str, n_requesters: int) -> Arbiter:
    """Instantiate an arbiter by policy name.

    Recognised policies: ``round_robin`` (the platform default),
    ``fixed_priority`` and ``matrix``.
    """
    try:
        cls = _ARBITERS[policy]
    except KeyError:
        raise ValueError(
            f"unknown arbitration policy {policy!r}; "
            f"expected one of {sorted(_ARBITERS)}"
        ) from None
    return cls(n_requesters)
