"""Cycle-level Network-on-Chip substrate.

This package implements the packet-switched network the emulation
platform of Genko et al. (DATE 2005) is built around: flits and packets,
bounded flit buffers with credit-based flow control, parameterisable
switches (number of inputs, number of outputs, buffer size — the three
switch parameters the paper emulates), links, arbitration policies,
routing (including the paper's "two routing possibilities" multi-path
scheme) and topology construction, tied together by a cycle engine.
"""

from repro.noc.arbiter import (
    Arbiter,
    FixedPriorityArbiter,
    MatrixArbiter,
    RoundRobinArbiter,
    make_arbiter,
)
from repro.noc.buffer import FlitBuffer
from repro.noc.deadlock import (
    DeadlockError,
    assert_deadlock_free,
    channel_dependency_graph,
    is_deadlock_free,
)
from repro.noc.flit import Flit, FlitType, Packet
from repro.noc.link import Link
from repro.noc.network import Network
from repro.noc.ni import NetworkInterface, ReassemblyBuffer
from repro.noc.routing import (
    MultiPathTableRouting,
    RoutingError,
    RoutingFunction,
    TableRouting,
    XYRouting,
    build_multipath_tables,
    build_shortest_path_tables,
)
from repro.noc.switch import Switch, SwitchConfig, SwitchingMode
from repro.noc.topology import Topology, TopologyError, paper_topology

__all__ = [
    "Arbiter",
    "DeadlockError",
    "assert_deadlock_free",
    "channel_dependency_graph",
    "is_deadlock_free",
    "FixedPriorityArbiter",
    "Flit",
    "FlitBuffer",
    "FlitType",
    "Link",
    "MatrixArbiter",
    "MultiPathTableRouting",
    "Network",
    "NetworkInterface",
    "Packet",
    "ReassemblyBuffer",
    "RoundRobinArbiter",
    "RoutingError",
    "RoutingFunction",
    "Switch",
    "SwitchConfig",
    "SwitchingMode",
    "TableRouting",
    "Topology",
    "TopologyError",
    "XYRouting",
    "build_multipath_tables",
    "build_shortest_path_tables",
    "make_arbiter",
    "paper_topology",
]
