"""The parameterisable switch.

The hardware platform emulates "any NoC packet-switching
intercommunication scheme" by instantiating a network of switches whose
three parameters the paper calls out on Slide 6: **number of inputs**,
**number of outputs** and **size of buffers**.  This module models one
such switch at cycle granularity:

* one bounded flit FIFO per input port (input-buffered switch),
* per-output arbitration (round-robin by default),
* credit-based flow control toward each downstream buffer,
* wormhole switching (a HEAD flit locks an output port for its packet
  until the TAIL passes) or store-and-forward switching (a packet only
  moves once fully buffered) for the switching-mode ablation.

Scheduling is *input-granular*: every input port is idle (empty
buffer, not scanned), movable (on the scan list the per-cycle traverse
examines) or parked (blocked head with frozen per-cycle stall deltas,
re-armed only by the event that can unblock it — a credit return on
its target output, the release of the wormhole channel it waits on, or
a new arrival completing a store-and-forward packet).  A switch whose
scan list is empty costs zero Python per cycle; a *partially* blocked
switch keeps streaming its movable inputs without rescanning the
blocked ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.noc.arbiter import Arbiter, make_arbiter
from repro.noc.buffer import BufferFullError, FlitBuffer
from repro.noc.flit import Flit
from repro.noc.routing import RoutingFunction, compile_dense_route_table


class SwitchingMode(enum.Enum):
    """Packet-switching discipline of the emulated switch."""

    WORMHOLE = "wormhole"
    STORE_AND_FORWARD = "store_and_forward"


@dataclass
class SwitchConfig:
    """Parameters of one switch (the Slide 6 parameter set).

    ``buffer_depth`` is the per-input FIFO capacity in flits.
    ``arbitration`` names a policy understood by
    :func:`repro.noc.arbiter.make_arbiter`.
    """

    n_inputs: int
    n_outputs: int
    buffer_depth: int = 4
    arbitration: str = "round_robin"
    mode: SwitchingMode = SwitchingMode.WORMHOLE

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError("switch needs >= 1 input port")
        if self.n_outputs < 1:
            raise ValueError("switch needs >= 1 output port")
        if self.buffer_depth < 1:
            raise ValueError("buffer depth must be >= 1 flit")
        if isinstance(self.mode, str):
            self.mode = SwitchingMode(self.mode)


@dataclass(slots=True)
class _OutputPort:
    """Book-keeping for one output port, wired up by the network.

    Besides the flow-control state, the port carries the persistent
    per-output scheduling lists: ``requests`` (input indices requesting
    this port in the current traverse — replaces the per-cycle request
    dict rebuild), ``credit_waiters`` (parked inputs whose head starves
    for this port's credits) and ``lock_waiters`` (parked inputs whose
    head waits for this port's wormhole channel).  Waiter entries may
    be stale — an input woken through another path skips them on
    processing — so appends never need a membership check.
    """

    send: Callable[[Flit, int], None]  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
    credits: int  # remaining downstream buffer slots (None -> infinite)
    infinite_credits: bool = False  # repro: allow[state-coverage] construction config from the topology
    lock: Optional[int] = None  # input index holding the wormhole channel
    #: Packet id of the wormhole holding the lock (fault accounting:
    #: lets the injector identify the packet whose tail can no longer
    #: arrive when a link dies mid-wormhole).  Maintained in lockstep
    #: with ``lock`` at head-grant and tail-release.
    lock_pid: Optional[int] = None
    flits_sent: int = 0
    #: The Link behind ``send`` when the sink is a plain link, letting
    #: the traverse fast path inline the send; None for custom sinks.
    link: Optional[object] = None  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
    #: The arbiter of this output port (the switch's per-output list
    #: entry, cached here so the grant loop needs no index lookup).
    arbiter: Optional[Arbiter] = None  # repro: allow[state-coverage] same object as Switch.arbiters[port], captured there
    requests: List[int] = field(default_factory=list)  # repro: allow[state-coverage] per-cycle arbitration scratch; asserted empty at checkpoint boundary
    credit_waiters: List[int] = field(default_factory=list)
    lock_waiters: List[int] = field(default_factory=list)


class Switch:
    """One input-buffered switch of the emulation platform.

    The network drives the switch with :meth:`receive` (flit arrival
    from a link or a network interface), :meth:`credit` (flow-control
    credit returned by a downstream buffer) and :meth:`traverse` (one
    cycle of arbitration and flit movement).
    """

    __slots__ = (
        "switch_id",
        "config",  # repro: allow[state-coverage] construction config; rebuilt from the spec on restore
        "routing",  # repro: allow[state-coverage] structural; re-compiled by _compile_routes on restore
        "inputs",
        "arbiters",
        "_outputs",
        "_input_pop_hooks",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "_input_credit",
        "_input_route",
        "_input_out",  # repro: allow[state-coverage] structural output map; rebuilt by Network wiring
        "_route_dense",  # repro: allow[state-coverage] compiled route cache; re-compiled on restore
        "_buffered",
        "_wake",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "_clock",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "_active",
        "_sf_mode",  # repro: allow[state-coverage] derived from config.mode at construction
        "_scan",
        "_in_tuples",  # repro: allow[state-coverage] scan-list scratch; rebuilt from the restored parked flags
        "_in_active",
        "_in_listed",
        "_in_parked",
        "_in_park_cycle",
        "_in_park_head",
        "_in_park_credit",
        "_parked_count",
        "_req_ports",  # repro: allow[state-coverage] per-cycle arbitration scratch; asserted empty at checkpoint boundary
        "_cwheel",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "_cwheel_size",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "_fwheel",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "_fwheel_size",  # repro: allow[state-coverage] wiring; re-installed by Network construction on restore
        "flits_forwarded",
        "_blocked_flit_cycles",
        "_credit_stall_cycles",
    )

    def __init__(
        self,
        switch_id: int,
        config: SwitchConfig,
        routing: RoutingFunction,
    ) -> None:
        self.switch_id = switch_id
        self.config = config
        self.routing = routing
        self.inputs: List[FlitBuffer] = [
            FlitBuffer(
                config.buffer_depth,
                name=f"sw{switch_id}.in{i}",
                track_packets=config.mode is SwitchingMode.STORE_AND_FORWARD,
            )
            for i in range(config.n_inputs)
        ]
        self.arbiters: List[Arbiter] = [
            make_arbiter(config.arbitration, config.n_inputs)
            for _ in range(config.n_outputs)
        ]
        self._outputs: List[Optional[_OutputPort]] = [
            None
        ] * config.n_outputs
        # Upstream credit scheduling per input, one of two forms: the
        # fused ``(delay, wheel entry)`` pair the network installs (the
        # hop appends the entry straight into the credit wheel — no
        # callback frame), or a plain hook for standalone switches.
        self._input_pop_hooks: List[Optional[Callable[[int], None]]] = [
            None
        ] * config.n_inputs
        self._input_credit: List[Optional[Tuple[int, tuple]]] = [
            None
        ] * config.n_inputs
        # Cached route of the packet currently at the head of each input
        # (set when its HEAD flit is routed, cleared when TAIL leaves):
        # the output port index, and the _OutputPort object itself so
        # the scan dereferences one list instead of two.
        self._input_route: List[Optional[int]] = [None] * config.n_inputs
        self._input_out: List[Optional[_OutputPort]] = [
            None
        ] * config.n_inputs
        # Dense routing array ``dst -> output port`` compiled by the
        # network at build (None before compilation, and None entries
        # fall back to the routing function: multipath choice or a
        # proper RoutingError for missing destinations).
        self._route_dense: Optional[List[Optional[int]]] = None
        # Incremental flit count across all input buffers, and the
        # network's wake-up hook fired whenever the switch needs to
        # (re)join the active set.  ``_clock`` reads the network cycle
        # and gates parking: without it (standalone switches in unit
        # tests) no input ever parks and every blocked head re-ticks
        # per cycle, the seed behaviour.
        self._buffered = 0
        self._wake: Optional[Callable[[], None]] = None
        self._clock: Optional[Callable[[], int]] = None
        self._active = False
        self._sf_mode = config.mode is SwitchingMode.STORE_AND_FORWARD
        # Input-granular scheduling state.  ``_scan`` holds the
        # (index, buffer, fifo) tuples of the movable inputs; the
        # per-input flags track list membership (``_in_listed``,
        # physical presence until the next compaction) and liveness
        # (``_in_active``).  A parked input freezes the blocked head
        # of its parking cycle plus whether it stalled purely on
        # credits; the per-cycle stall statistics of the parked
        # stretch are settled in bulk on wake-up (see
        # ``_settle_input``), so a parked input costs zero Python per
        # cycle.
        n_in = config.n_inputs
        self._in_tuples: List[tuple] = [
            (i, buf, buf._fifo) for i, buf in enumerate(self.inputs)
        ]
        self._scan: List[tuple] = []
        self._in_active: List[bool] = [False] * n_in
        self._in_listed: List[bool] = [False] * n_in
        self._in_parked: List[bool] = [False] * n_in
        self._in_park_cycle: List[int] = [0] * n_in
        self._in_park_head: List[Optional[Flit]] = [None] * n_in
        self._in_park_credit: List[bool] = [False] * n_in
        self._parked_count = 0
        # Scratch list of output ports with pending requests this
        # traverse (reused across calls; the per-output ``requests``
        # lists live on the ports themselves).
        self._req_ports: List[_OutputPort] = []
        # Delivery-wheel wiring for the fused hop (set by the
        # network; every network link shares the two global wheels, so
        # the hop indexes them directly instead of dereferencing the
        # link's copy).
        self._cwheel: Optional[List[list]] = None
        self._cwheel_size = 1
        self._fwheel: Optional[List[list]] = None
        self._fwheel_size = 1
        # Statistics.
        self.flits_forwarded = 0
        self._blocked_flit_cycles = 0  # head wanted to move, couldn't
        self._credit_stall_cycles = 0  # subset blocked purely on credits

    # ------------------------------------------------------------------
    # Wiring (done once by the network)
    # ------------------------------------------------------------------
    def connect_output(
        self,
        port: int,
        send: Callable[[Flit, int], None],
        credits: Optional[int],
        link: Optional[object] = None,
    ) -> None:
        """Attach output ``port`` to a sink.

        ``credits`` is the downstream buffer capacity, or ``None`` for a
        sink that always accepts (a traffic receptor consuming one flit
        per cycle never backpressures the switch).  ``link`` names the
        :class:`~repro.noc.link.Link` behind ``send`` when there is
        one, enabling the inlined send fast path.
        """
        if self._outputs[port] is not None:
            raise RuntimeError(
                f"output port {port} of switch {self.switch_id} is"
                f" already connected"
            )
        infinite = credits is None
        self._outputs[port] = _OutputPort(
            send=send,
            credits=0 if infinite else credits,
            infinite_credits=infinite,
            link=link,
            arbiter=self.arbiters[port],
        )

    def connect_input_hook(
        self, port: int, hook: Callable[[int], None]
    ) -> None:
        """Register a credit-return callback for input ``port``.

        Standalone path: the network wires its switches through
        :meth:`_connect_input_credit` instead, which fuses the credit
        schedule into the hop itself.
        """
        if (
            self._input_pop_hooks[port] is not None
            or self._input_credit[port] is not None
        ):
            raise RuntimeError(
                f"input port {port} of switch {self.switch_id} already"
                f" has a credit hook"
            )
        self._input_pop_hooks[port] = hook

    def _connect_input_credit(
        self, port: int, delay: int, entry: tuple
    ) -> None:
        """Fused credit return for input ``port``: every pop appends
        ``entry`` to the network credit wheel ``delay`` cycles out, as
        one list append on the hop itself (no callback frame)."""
        if (
            self._input_pop_hooks[port] is not None
            or self._input_credit[port] is not None
        ):
            raise RuntimeError(
                f"input port {port} of switch {self.switch_id} already"
                f" has a credit hook"
            )
        self._input_credit[port] = (delay, entry)

    def check_wired(self) -> None:
        for port, out in enumerate(self._outputs):
            if out is None:
                raise RuntimeError(
                    f"output port {port} of switch {self.switch_id} is"
                    f" not connected"
                )

    def _compile_routes(self, n_nodes: int) -> None:
        """Compile the routing function into a dense per-destination
        array (called by the network once the platform is wired)."""
        self._route_dense = compile_dense_route_table(
            self.routing, self.switch_id, n_nodes
        )

    # ------------------------------------------------------------------
    # Per-cycle interface
    # ------------------------------------------------------------------
    def receive(self, port: int, flit: Flit, now: int = 0) -> None:
        """A flit arrives on input ``port`` (from a link or an NI).

        ``now`` is accepted (and ignored) so the network can bind this
        method directly as a link delivery sink via ``partial``.  The
        body is :meth:`FlitBuffer.push` inlined — this is one of the
        two per-flit-hop hot spots of the whole simulator.
        """
        buf = self.inputs[port]
        fifo = buf._fifo
        if len(fifo) >= buf.capacity:
            raise BufferFullError(
                f"push into full buffer {buf.name or id(buf)} "
                f"(capacity {buf.capacity})"
            )
        fifo.append(flit)
        counts = buf._pid_counts
        if counts is not None:
            pid = flit.packet.pid
            counts[pid] = counts.get(pid, 0) + 1
        buf.total_pushes += 1
        if len(fifo) > buf.peak_occupancy:
            buf.peak_occupancy = len(fifo)
        self._buffered += 1
        if len(fifo) == 1:
            # Previously empty input: a new head to route.  (An input
            # with an empty buffer is never parked, so this is purely
            # a scan-list activation.)
            if not self._in_listed[port]:
                self._in_listed[port] = True
                self._in_active[port] = True
                self._scan.append(self._in_tuples[port])
            if not self._active and self._wake is not None:
                self._wake()
        elif (
            self._sf_mode
            and self._in_parked[port]
            and self._in_park_head[port] is None
        ):
            # Store-and-forward input waiting on a partial packet: this
            # arrival may complete it — re-examine next traverse.  (A
            # flit landing behind a credit- or lock-blocked head, in
            # either switching mode, changes nothing: stay parked.)
            self._unpark_input(port)

    def credit(self, port: int, count: int = 1) -> None:
        """Downstream freed ``count`` buffer slots behind output ``port``."""
        out = self._outputs[port]
        assert out is not None
        if not out.infinite_credits:
            out.credits += count
        if out.credit_waiters:
            self._credit_wake_port(out)

    def _credit_wake_port(
        self, out: _OutputPort, now: Optional[int] = None
    ) -> None:
        """A credit returned on a port with parked waiters.  Credits
        land in the network's first phase, before this cycle's
        traverse, so settlement stops at the previous cycle and the
        inputs re-enter the scan in time to move this cycle.  Stale
        entries (inputs woken through another path since they
        registered) are skipped.  ``now`` is the delivery cycle when
        the caller knows it (the network's credit drain); otherwise
        the switch clock provides it."""
        until = (self._clock() if now is None else now) - 1
        parked = self._in_parked
        waiters = out.credit_waiters
        for i in waiters:
            if parked[i]:
                self._wake_input(i, until)
        del waiters[:]

    def _route_head(self, head: Flit, buf: FlitBuffer) -> Optional[int]:
        """Route an unrouted head flit (slow/store-and-forward path).

        Returns ``None`` when a store-and-forward packet must keep
        waiting for the rest of its flits.
        """
        # Only HEAD flits may be unrouted; a BODY flit at the head of a
        # buffer with no cached route indicates a protocol bug.
        if not head.is_head:
            raise RuntimeError(
                f"non-head flit {head!r} at head of an input of"
                f" sw{self.switch_id} without a route"
            )
        if self._sf_mode:
            length = head.packet.length
            if length > buf.capacity:
                raise RuntimeError(
                    f"store-and-forward switch {self.switch_id} has"
                    f" {buf.capacity}-flit buffers but received a"
                    f" {length}-flit packet"
                )
            if buf.packet_flit_count(head.packet.pid) < length:
                return None  # wait for the full packet
        dense = self._route_dense
        if dense is not None:
            port = dense[head.dst]
            if port is not None:
                return port
        return self.routing.output_port(self.switch_id, head)

    def traverse(self, now: int) -> int:
        """One cycle of arbitration and switch traversal.

        Returns the number of flits forwarded this cycle.  At most one
        flit leaves per output port and at most one flit leaves per
        input port.  Only the movable inputs are examined: an input
        whose head is blocked parks individually (when a network clock
        is attached) and is re-armed by the event that can unblock it,
        while the remaining inputs keep streaming.
        """
        scan = self._scan
        if not scan:
            return 0
        route_outs = self._input_out
        actives = self._in_active
        credit_entries = self._input_credit
        cwheel = self._cwheel
        csize = self._cwheel_size
        fwheel = self._fwheel
        fsize = self._fwheel_size
        can_park = self._clock is not None
        req_ports = self._req_ports
        if req_ports:
            # A previous traverse aborted mid-scan (a protocol error
            # surfaced in a unit test): drop its stale requests.
            for out in req_ports:
                del out.requests[:]
            del req_ports[:]
        moved = 0
        compact = False
        for entry in scan:
            i, buf, fifo = entry
            if not fifo:
                # Drained since it last moved: back to idle.
                actives[i] = False
                compact = True
                continue
            out = route_outs[i]
            if out is None:
                head = fifo[0]
                route_dense = self._route_dense
                if (
                    route_dense is not None
                    and not self._sf_mode
                    and head.is_head
                ):
                    desired = route_dense[head.dst]
                    if desired is None:
                        desired = self.routing.output_port(
                            self.switch_id, head
                        )
                else:
                    desired = self._route_head(head, buf)
                    if desired is None:
                        # Store-and-forward packet still arriving: only
                        # a flit into this input can change that.
                        if can_park:
                            self._park_input(i, now, None, False)
                            compact = True
                        continue
                self._input_route[i] = desired
                out = route_outs[i] = self._outputs[desired]
            lock = out.lock
            if lock == i:
                flit = fifo[0]
                if not flit.is_tail:
                    # Streaming fast path: a mid-packet flit on its
                    # exclusively locked channel cannot face
                    # arbitration, and moving it changes no state any
                    # other input's scan decision depends on.  (Tail
                    # flits release the lock, which must stay visible
                    # only after the scan, so they take the slow path.)
                    if out.infinite_credits:
                        pass
                    elif out.credits > 0:
                        out.credits -= 1
                    else:
                        flit.stall_cycles += 1
                        self._blocked_flit_cycles += 1
                        self._credit_stall_cycles += 1
                        if can_park:
                            self._park_input(i, now, flit, True)
                            out.credit_waiters.append(i)
                            compact = True
                        continue
                    # Fused hop: FlitBuffer.pop, the upstream credit
                    # schedule and Link.send inlined (the per-flit-hop
                    # hot spots); the buffer is non-empty by
                    # construction.
                    fifo.popleft()
                    buf.total_pops += 1
                    counts = buf._pid_counts
                    if counts is not None:
                        pid = flit.packet.pid
                        remaining = counts[pid] - 1
                        if remaining:
                            counts[pid] = remaining
                        else:
                            del counts[pid]
                    self._buffered -= 1
                    ce = credit_entries[i]
                    if ce is not None:
                        cwheel[(now + ce[0]) % csize].append(ce[1])
                    else:
                        hook = self._input_pop_hooks[i]
                        if hook is not None:
                            hook(now)
                    link = out.link
                    if link is None or fwheel is None:
                        out.send(flit, now)
                    else:
                        if link._last_send_cycle == now:
                            out.send(flit, now)  # raises the protocol error
                        link._last_send_cycle = now
                        fwheel[(now + link.delay) % fsize].append(
                            (link, flit)
                        )
                        link.wire_count += 1
                        link.flits_carried += 1
                    out.flits_sent += 1
                    moved += 1
                    continue
            elif lock is not None:
                # Channel held by another packet's wormhole: only the
                # tail of that packet can release it.
                head = fifo[0]
                head.stall_cycles += 1
                self._blocked_flit_cycles += 1
                if can_park:
                    self._park_input(i, now, head, False)
                    out.lock_waiters.append(i)
                    compact = True
                continue
            if not out.infinite_credits and out.credits <= 0:
                head = fifo[0]
                head.stall_cycles += 1
                self._blocked_flit_cycles += 1
                self._credit_stall_cycles += 1
                if can_park:
                    self._park_input(i, now, head, True)
                    out.credit_waiters.append(i)
                    compact = True
                continue
            reqs = out.requests
            if not reqs:
                req_ports.append(out)
            reqs.append(i)

        if req_ports:
            inputs = self.inputs
            for out in req_ports:
                reqs = out.requests
                lock = out.lock
                if lock is not None:
                    # The locked input has exclusive use of this
                    # channel (every other contender is lock-blocked),
                    # so ``reqs`` is exactly ``[lock]``.
                    winner = lock
                elif len(reqs) == 1:
                    winner = out.arbiter.grant_single(reqs[0])
                else:
                    winner = out.arbiter.grant(reqs)
                # The fused hop again (head/tail flits come through
                # here).
                buf = inputs[winner]
                fifo = buf._fifo
                flit = fifo.popleft()
                buf.total_pops += 1
                counts = buf._pid_counts
                if counts is not None:
                    pid = flit.packet.pid
                    remaining = counts[pid] - 1
                    if remaining:
                        counts[pid] = remaining
                    else:
                        del counts[pid]
                self._buffered -= 1
                ce = credit_entries[winner]
                if ce is not None:
                    cwheel[(now + ce[0]) % csize].append(ce[1])
                else:
                    hook = self._input_pop_hooks[winner]
                    if hook is not None:
                        hook(now)
                link = out.link
                if link is None or fwheel is None:
                    out.send(flit, now)
                else:
                    if link._last_send_cycle == now:
                        out.send(flit, now)  # raises the protocol error
                    link._last_send_cycle = now
                    fwheel[(now + link.delay) % fsize].append(
                        (link, flit)
                    )
                    link.wire_count += 1
                    link.flits_carried += 1
                out.flits_sent += 1
                if not out.infinite_credits:
                    out.credits -= 1
                moved += 1
                # Wormhole channel state.
                if flit.is_tail:
                    out.lock = None
                    out.lock_pid = None
                    self._input_route[winner] = None
                    route_outs[winner] = None
                    lw = out.lock_waiters
                    if lw:
                        # The channel the waiters starved for is free:
                        # they were blocked through this cycle (the
                        # release is post-scan), so settlement includes
                        # it and the scan re-examines them next cycle.
                        parked = self._in_parked
                        for j in lw:
                            if parked[j]:
                                self._wake_input(j, now)
                        del lw[:]
                elif flit.is_head:
                    out.lock = winner
                    out.lock_pid = flit.packet.pid
                # Losers of this arbitration stalled (they may win the
                # very next cycle, so they stay on the scan list).
                n_reqs = len(reqs)
                if n_reqs > 1:
                    for loser in reqs:
                        if loser != winner:
                            inputs[loser]._fifo[0].stall_cycles += 1
                    self._blocked_flit_cycles += n_reqs - 1
                del reqs[:]
            del req_ports[:]

        if compact:
            listed = self._in_listed
            keep = []
            for entry in scan:
                if actives[entry[0]]:
                    keep.append(entry)
                else:
                    listed[entry[0]] = False
            scan[:] = keep
        self.flits_forwarded += moved
        return moved

    def traverse_reference(self, now: int) -> int:
        """One cycle via the scan-everything discipline (parity oracle).

        Self-heals the input-granular parked state first: every parked
        input settles its stretch and rejoins the scan, so this path
        re-examines the whole switch each cycle exactly as the seed
        dataflow did (blocked inputs then re-park with zero elapsed
        cycles, which keeps mixed stepping coherent).  The waiter
        registrations of the woken inputs become stale and are purged
        wholesale.
        """
        if self._parked_count:
            until = now - 1
            parked = self._in_parked
            for i in range(len(parked)):
                if parked[i]:
                    self._wake_input(i, until)
            for out in self._outputs:
                if out.credit_waiters:
                    del out.credit_waiters[:]
                if out.lock_waiters:
                    del out.lock_waiters[:]
        return self.traverse(now)

    # ------------------------------------------------------------------
    # Input-granular parking
    # ------------------------------------------------------------------
    def _park_input(
        self, i: int, now: int, head: Optional[Flit], credit: bool
    ) -> None:
        """Freeze input ``i`` after its blocked examination at ``now``.

        The traverse already ticked this cycle's stall, so settlement
        starts at ``now + 1``.  ``head`` is the blocked flit charged
        one stall per parked cycle (None for a store-and-forward input
        waiting on a partial packet, which stalls nothing); ``credit``
        marks the stall as purely credit-bound.
        """
        self._in_active[i] = False
        self._in_parked[i] = True
        self._in_park_cycle[i] = now
        self._in_park_head[i] = head
        self._in_park_credit[i] = credit
        self._parked_count += 1

    def _settle_input(self, i: int, until: int) -> None:
        """Account the stalls of parked cycles ``park_cycle+1..until``.

        Equivalent to running ``traverse`` for each of those cycles:
        the frozen blocked head stalls once per cycle and the switch
        counters advance by the same per-cycle deltas the parking
        examination produced.
        """
        elapsed = until - self._in_park_cycle[i]
        if elapsed <= 0:
            return
        self._in_park_cycle[i] = until
        head = self._in_park_head[i]
        if head is not None:
            head.stall_cycles += elapsed
            self._blocked_flit_cycles += elapsed
            if self._in_park_credit[i]:
                self._credit_stall_cycles += elapsed

    def _unpark_input(self, i: int) -> None:
        """Re-arm input ``i``: back on the scan list, switch woken."""
        self._in_parked[i] = False
        self._in_park_head[i] = None
        self._parked_count -= 1
        self._in_active[i] = True
        if not self._in_listed[i]:
            self._in_listed[i] = True
            self._scan.append(self._in_tuples[i])
        if not self._active and self._wake is not None:
            self._wake()

    def _wake_input(self, i: int, until: int) -> None:
        """Settle input ``i`` through ``until`` and re-arm it.

        ``_settle_input`` + ``_unpark_input`` fused into one frame:
        credit-return and lock-release wakes are the churn path of the
        saturation regime.
        """
        elapsed = until - self._in_park_cycle[i]
        if elapsed > 0:
            self._in_park_cycle[i] = until
            head = self._in_park_head[i]
            if head is not None:
                head.stall_cycles += elapsed
                self._blocked_flit_cycles += elapsed
                if self._in_park_credit[i]:
                    self._credit_stall_cycles += elapsed
        self._in_parked[i] = False
        self._in_park_head[i] = None
        self._parked_count -= 1
        self._in_active[i] = True
        if not self._in_listed[i]:
            self._in_listed[i] = True
            self._scan.append(self._in_tuples[i])
        if not self._active and self._wake is not None:
            self._wake()

    @property
    def parked_inputs(self) -> Tuple[int, ...]:
        """Indices of the currently parked input ports (test hook)."""
        return tuple(
            i for i, parked in enumerate(self._in_parked) if parked
        )

    def _pending_stall_deltas(self) -> Tuple[int, int]:
        """(blocked, credit) stalls of parked cycles not yet settled."""
        if not self._parked_count or self._clock is None:
            return 0, 0
        until = self._clock() - 1
        blocked = credit = 0
        parked = self._in_parked
        heads = self._in_park_head
        cycles = self._in_park_cycle
        credit_flags = self._in_park_credit
        for i in range(len(parked)):
            if parked[i] and heads[i] is not None:
                pending = until - cycles[i]
                if pending > 0:
                    blocked += pending
                    if credit_flags[i]:
                        credit += pending
        return blocked, credit

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def sample_buffers(self) -> None:
        """Record one cycle of buffer occupancy on every input FIFO."""
        for buf in self.inputs:
            buf.sample()

    @property
    def buffered_flits(self) -> int:
        """Flits currently sitting in this switch's input buffers."""
        return self._buffered

    @property
    def blocked_flit_cycles(self) -> int:
        """Head-of-line blocking events (settled through the last
        emulated cycle, including any still-parked inputs)."""
        pending, _ = self._pending_stall_deltas()
        return self._blocked_flit_cycles + pending

    @property
    def credit_stall_cycles(self) -> int:
        """Subset of blocking events stalled purely on credits."""
        _, pending = self._pending_stall_deltas()
        return self._credit_stall_cycles + pending

    def stats_snapshot(self) -> Tuple[int, int, int]:
        """``(forwarded, blocked, credit_stalls)`` settled through the
        last emulated cycle.

        One reading of the three settle-on-read counters with a single
        parked-input walk — the windowed-telemetry snapshot path, where
        the separate properties would walk the parked inputs twice.
        """
        blocked, credit = self._pending_stall_deltas()
        return (
            self.flits_forwarded,
            self._blocked_flit_cycles + blocked,
            self._credit_stall_cycles + credit,
        )

    def output_credits(self, port: int) -> Optional[int]:
        """Remaining credits of output ``port`` (None = infinite)."""
        out = self._outputs[port]
        assert out is not None
        return None if out.infinite_credits else out.credits

    def reset_stats(self) -> None:
        if self._parked_count and self._clock is not None:
            # Reset-while-parked: per-flit stall counters survive a
            # statistics reset, so each parked stretch up to the reset
            # must settle into them first; the switch counters are
            # then zeroed and the (still valid) parked inputs keep
            # accumulating into the fresh window.
            until = self._clock() - 1
            parked = self._in_parked
            for i in range(len(parked)):
                if parked[i]:
                    self._settle_input(i, until)
        self.flits_forwarded = 0
        self._blocked_flit_cycles = 0
        self._credit_stall_cycles = 0
        for buf in self.inputs:
            buf.reset_stats()
        for arb in self.arbiters:
            arb.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Switch({self.switch_id}, in={self.config.n_inputs},"
            f" out={self.config.n_outputs},"
            f" depth={self.config.buffer_depth})"
        )


def traverse_all(
    active: List[Switch],
    now: int,
    cwheel: List[list],
    fwheel: List[list],
    wheel_size: int,
) -> Tuple[int, bool]:
    """One cycle of arbitration and traversal over the active switches.

    The event kernel's switch phase fused into a single loop: with
    input-granular parking a switch's scan is typically one or two
    entries, so the Python frame and prologue of a per-switch
    :meth:`Switch.traverse` call are a measurable share of the whole
    phase.  This is that method's body applied to each switch in turn
    — semantically identical, keep the two in lockstep — with the
    parking gate constant-folded (network-wired switches always have
    a clock) and the network's shared delivery wheels hoisted to
    arguments.  Returns ``(flits moved, any switch left without
    movable inputs)``.
    """
    csize = fsize = wheel_size
    total_moved = 0
    retire = False
    for sw in active:
        scan = sw._scan
        if not scan:
            sw._active = False
            retire = True
            continue
        route_outs = sw._input_out
        actives = sw._in_active
        credit_entries = sw._input_credit
        req_ports = sw._req_ports
        if req_ports:
            for out in req_ports:
                del out.requests[:]
            del req_ports[:]
        moved = 0
        compact = False
        for entry in scan:
            i, buf, fifo = entry
            if not fifo:
                actives[i] = False
                compact = True
                continue
            out = route_outs[i]
            if out is None:
                head = fifo[0]
                route_dense = sw._route_dense
                if (
                    route_dense is not None
                    and not sw._sf_mode
                    and head.is_head
                ):
                    desired = route_dense[head.dst]
                    if desired is None:
                        desired = sw.routing.output_port(
                            sw.switch_id, head
                        )
                else:
                    desired = sw._route_head(head, buf)
                    if desired is None:
                        sw._park_input(i, now, None, False)
                        compact = True
                        continue
                sw._input_route[i] = desired
                out = route_outs[i] = sw._outputs[desired]
            lock = out.lock
            if lock == i:
                flit = fifo[0]
                if not flit.is_tail:
                    if out.infinite_credits:
                        pass
                    elif out.credits > 0:
                        out.credits -= 1
                    else:
                        flit.stall_cycles += 1
                        sw._blocked_flit_cycles += 1
                        sw._credit_stall_cycles += 1
                        sw._park_input(i, now, flit, True)
                        out.credit_waiters.append(i)
                        compact = True
                        continue
                    fifo.popleft()
                    buf.total_pops += 1
                    counts = buf._pid_counts
                    if counts is not None:
                        pid = flit.packet.pid
                        remaining = counts[pid] - 1
                        if remaining:
                            counts[pid] = remaining
                        else:
                            del counts[pid]
                    sw._buffered -= 1
                    ce = credit_entries[i]
                    if ce is not None:
                        cwheel[(now + ce[0]) % csize].append(ce[1])
                    else:
                        hook = sw._input_pop_hooks[i]
                        if hook is not None:
                            hook(now)
                    link = out.link
                    if link is None:
                        out.send(flit, now)
                    else:
                        if link._last_send_cycle == now:
                            out.send(flit, now)
                        link._last_send_cycle = now
                        fwheel[(now + link.delay) % fsize].append(
                            (link, flit)
                        )
                        link.wire_count += 1
                        link.flits_carried += 1
                    out.flits_sent += 1
                    moved += 1
                    continue
            elif lock is not None:
                head = fifo[0]
                head.stall_cycles += 1
                sw._blocked_flit_cycles += 1
                sw._park_input(i, now, head, False)
                out.lock_waiters.append(i)
                compact = True
                continue
            if not out.infinite_credits and out.credits <= 0:
                head = fifo[0]
                head.stall_cycles += 1
                sw._blocked_flit_cycles += 1
                sw._credit_stall_cycles += 1
                sw._park_input(i, now, head, True)
                out.credit_waiters.append(i)
                compact = True
                continue
            reqs = out.requests
            if not reqs:
                req_ports.append(out)
            reqs.append(i)

        if req_ports:
            inputs = sw.inputs
            for out in req_ports:
                reqs = out.requests
                lock = out.lock
                if lock is not None:
                    winner = lock
                elif len(reqs) == 1:
                    winner = out.arbiter.grant_single(reqs[0])
                else:
                    winner = out.arbiter.grant(reqs)
                buf = inputs[winner]
                fifo = buf._fifo
                flit = fifo.popleft()
                buf.total_pops += 1
                counts = buf._pid_counts
                if counts is not None:
                    pid = flit.packet.pid
                    remaining = counts[pid] - 1
                    if remaining:
                        counts[pid] = remaining
                    else:
                        del counts[pid]
                sw._buffered -= 1
                ce = credit_entries[winner]
                if ce is not None:
                    cwheel[(now + ce[0]) % csize].append(ce[1])
                else:
                    hook = sw._input_pop_hooks[winner]
                    if hook is not None:
                        hook(now)
                link = out.link
                if link is None:
                    out.send(flit, now)
                else:
                    if link._last_send_cycle == now:
                        out.send(flit, now)
                    link._last_send_cycle = now
                    fwheel[(now + link.delay) % fsize].append(
                        (link, flit)
                    )
                    link.wire_count += 1
                    link.flits_carried += 1
                out.flits_sent += 1
                if not out.infinite_credits:
                    out.credits -= 1
                moved += 1
                if flit.is_tail:
                    out.lock = None
                    out.lock_pid = None
                    sw._input_route[winner] = None
                    route_outs[winner] = None
                    lw = out.lock_waiters
                    if lw:
                        parked = sw._in_parked
                        for j in lw:
                            if parked[j]:
                                sw._wake_input(j, now)
                        del lw[:]
                elif flit.is_head:
                    out.lock = winner
                    out.lock_pid = flit.packet.pid
                n_reqs = len(reqs)
                if n_reqs > 1:
                    for loser in reqs:
                        if loser != winner:
                            inputs[loser]._fifo[0].stall_cycles += 1
                    sw._blocked_flit_cycles += n_reqs - 1
                del reqs[:]
            del req_ports[:]

        if compact:
            listed = sw._in_listed
            keep = []
            for entry in scan:
                if actives[entry[0]]:
                    keep.append(entry)
                else:
                    listed[entry[0]] = False
            scan[:] = keep
        sw.flits_forwarded += moved
        total_moved += moved
        if not scan:
            sw._active = False
            retire = True
    return total_moved, retire
